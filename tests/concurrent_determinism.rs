//! Cross-thread determinism suite.
//!
//! One `Arc<PreparedGraph>` (with its shared augmentation cache) is hammered
//! by several threads running repeated, interleaved session scenarios —
//! plain drains, `raise_k` resumptions and `answers_until` interleavings —
//! and every result must be **bit-identical** (cost bits, element sets,
//! canonical query strings, answer rows) to a single-threaded run on a
//! fresh, *cache-disabled* preparation. This is the proof obligation of the
//! concurrent serving architecture: sharing the read path and memoizing
//! augmentations may change timings, never results.
//!
//! CI runs this suite twice — with `--test-threads=1` and with the default
//! parallelism — so the scenarios are exercised both as the only load on the
//! process and racing against each other.

use std::sync::Arc;
use std::thread;

use searchwebdb::core::serve::SearchRequest;
use searchwebdb::core::shard::{partition, ShardedService};
use searchwebdb::core::{DeltaBatch, LiveGraph, PreparedGraph, SearchConfig, SearchSession};
use searchwebdb::datagen::workload::dblp_performance_queries;
use searchwebdb::datagen::DblpDataset;
use searchwebdb::rdf::fixtures::figure1_graph;
use searchwebdb::rdf::{DataGraph, Triple};

/// Worker threads sharing one preparation.
const THREADS: usize = 4;
/// Scenario repetitions per thread.
const REPEATS: usize = 3;

/// The bit-identity fingerprint of one emitted query.
type QueryKey = (u64, String, Vec<String>);

/// The full fingerprint of one scenario run: emitted queries in order, plus
/// the answer rows of an `answers_until` phase when the scenario ran one.
type ScenarioKey = (Vec<QueryKey>, Vec<String>);

fn query_key(ranked: &searchwebdb::core::RankedQuery) -> QueryKey {
    let mut elements: Vec<String> = ranked
        .subgraph
        .elements()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    elements.sort_unstable();
    (
        ranked.cost.to_bits(),
        ranked.query.canonicalized().to_string(),
        elements,
    )
}

/// The three interleaved session shapes the suite exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Scenario {
    /// Drain a session at the default k.
    Drain,
    /// Drain at k = 2, then `raise_k` to the default k and drain the rest.
    RaiseK,
    /// Run `answers_until(3)`, then drain the remainder.
    AnswersUntil,
}

const SCENARIOS: [Scenario; 3] = [Scenario::Drain, Scenario::RaiseK, Scenario::AnswersUntil];

fn run_scenario(prepared: &PreparedGraph, scenario: Scenario, keywords: &[String]) -> ScenarioKey {
    let full = SearchConfig::default();
    let collect = |session: &mut SearchSession<'_>| {
        let mut queries = Vec::new();
        while let Some(ranked) = session.next_query() {
            queries.push(query_key(&ranked));
        }
        queries
    };
    match scenario {
        Scenario::Drain => {
            let mut session = prepared.session(keywords, full).unwrap();
            (collect(&mut session), Vec::new())
        }
        Scenario::RaiseK => {
            let mut session = prepared.session(keywords, SearchConfig::with_k(2)).unwrap();
            let mut queries = collect(&mut session);
            session.raise_k(full.k);
            queries.extend(collect(&mut session));
            (queries, Vec::new())
        }
        Scenario::AnswersUntil => {
            let mut session = prepared.session(keywords, full).unwrap();
            let phase = session.answers_until(3);
            let mut answers: Vec<String> = phase
                .answers
                .iter()
                .flat_map(|set| set.rows().iter().map(|row| format!("{row:?}")))
                .collect();
            answers.sort_unstable();
            // The queries the answer phase consumed, then the drained rest.
            let mut queries: Vec<QueryKey> = session.queries().iter().map(query_key).collect();
            queries.extend(collect(&mut session));
            (queries, answers)
        }
    }
}

/// Single-threaded reference: every (scenario, keyword set) run on a fresh,
/// cache-disabled preparation — no sharing, no memoization, no concurrency.
fn reference_runs(graph: &DataGraph, workload: &[Vec<String>]) -> Vec<ScenarioKey> {
    // A disabled cache means the preparation holds no per-query state at
    // all, so one pristine instance serves every reference run.
    let pristine = PreparedGraph::index_with(graph.clone(), Default::default(), 0);
    let mut runs = Vec::new();
    for keywords in workload {
        for scenario in SCENARIOS {
            runs.push(run_scenario(&pristine, scenario, keywords));
        }
    }
    runs
}

/// The suite body: N threads × M repeats of all scenarios against one
/// shared, cache-enabled preparation, all compared bit-for-bit against the
/// single-threaded cache-disabled reference.
fn assert_concurrent_runs_match_reference(graph: DataGraph, workload: Vec<Vec<String>>) {
    let shared = Arc::new(PreparedGraph::index(graph.clone()));
    assert_shared_runs_match_reference(shared, &graph, workload);
}

/// The same proof obligation, for an arbitrary shared preparation (freshly
/// indexed or loaded from a snapshot) over `graph`.
fn assert_shared_runs_match_reference(
    shared: Arc<PreparedGraph>,
    graph: &DataGraph,
    workload: Vec<Vec<String>>,
) {
    let reference = reference_runs(graph, &workload);

    thread::scope(|scope| {
        for thread_id in 0..THREADS {
            let shared = Arc::clone(&shared);
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                for repeat in 0..REPEATS {
                    // Stagger the starting offset per (thread, repeat) so
                    // cache hits, misses and racing inserts interleave
                    // differently on every pass.
                    let offset = (thread_id + repeat) % workload.len();
                    for step in 0..workload.len() {
                        let kw_index = (offset + step) % workload.len();
                        let keywords = &workload[kw_index];
                        for (s, scenario) in SCENARIOS.into_iter().enumerate() {
                            let got = run_scenario(&shared, scenario, keywords);
                            let want = &reference[kw_index * SCENARIOS.len() + s];
                            assert_eq!(
                                &got, want,
                                "thread {thread_id}, repeat {repeat}: {scenario:?} over \
                                 {keywords:?} diverged from the single-threaded reference"
                            );
                        }
                    }
                }
            });
        }
    });

    let stats = shared.augmentation_cache().stats();
    assert!(
        stats.hits > 0,
        "the repeated workload must exercise cache hits: {stats:?}"
    );
}

#[test]
fn figure1_scenarios_are_bit_identical_across_threads() {
    let workload = vec![
        vec!["2006".into(), "cimiano".into(), "aifb".into()],
        vec!["cimiano".into(), "publication".into()],
        vec!["publications".into()],
    ];
    assert_concurrent_runs_match_reference(figure1_graph(), workload);
}

#[test]
fn snapshot_loaded_scenarios_are_bit_identical_across_threads() {
    // The concurrency contract must hold for a preparation *loaded from a
    // snapshot* exactly as for a freshly indexed one: the loaded graph
    // keeps its adjacency in the frozen CSR form, and its augmentation
    // cache starts empty, so this also races cache fills on the CSR read
    // path against each other.
    let graph = figure1_graph();
    let workload = vec![
        vec!["2006".into(), "cimiano".into(), "aifb".into()],
        vec!["cimiano".into(), "publication".into()],
        vec!["publications".into()],
    ];
    let built = PreparedGraph::index(graph.clone());
    let mut bytes = Vec::new();
    built.save(&mut bytes).expect("in-memory save");
    let loaded = PreparedGraph::load(bytes.as_slice()).expect("load own snapshot");
    assert_shared_runs_match_reference(Arc::new(loaded), &graph, workload);
}

/// The sharded analogue of the suite's proof obligation: N threads hammering
/// one `Arc<ShardedService>` (scatter, per-shard exploration, streaming
/// merge) must return streams bit-identical to single-threaded unsharded
/// sessions on a fresh, cache-disabled preparation.
#[test]
fn sharded_scatter_gather_is_bit_identical_across_threads() {
    let graph = figure1_graph();
    let workload: Vec<Vec<String>> = vec![
        vec!["2006".into(), "cimiano".into(), "aifb".into()],
        vec!["cimiano".into(), "publication".into()],
        vec!["publications".into()],
    ];

    let pristine = PreparedGraph::index_with(graph.clone(), Default::default(), 0);
    let reference: Vec<Vec<QueryKey>> = workload
        .iter()
        .map(|keywords| {
            let mut session = pristine
                .session(keywords, SearchConfig::default())
                .expect("workload keywords always match");
            let mut queries = Vec::new();
            while let Some(ranked) = session.next_query() {
                queries.push(query_key(&ranked));
            }
            queries
        })
        .collect();

    let plan = partition(&graph, 3);
    let shards = plan.prepare_shards(&graph, Default::default());
    let service = Arc::new(ShardedService::start(
        shards,
        SearchConfig::default(),
        Default::default(),
    ));
    thread::scope(|scope| {
        for thread_id in 0..THREADS {
            let service = Arc::clone(&service);
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                for repeat in 0..REPEATS {
                    let offset = (thread_id + repeat) % workload.len();
                    for step in 0..workload.len() {
                        let kw_index = (offset + step) % workload.len();
                        let keywords = &workload[kw_index];
                        let outcome = service
                            .search(SearchRequest::new(keywords.iter()))
                            .expect("workload keywords always match");
                        let got: Vec<QueryKey> = outcome.queries.iter().map(query_key).collect();
                        assert_eq!(
                            &got, &reference[kw_index],
                            "thread {thread_id}, repeat {repeat}: the sharded merge \
                             over {keywords:?} diverged from the unsharded reference"
                        );
                        let ranks: Vec<usize> = outcome.queries.iter().map(|q| q.rank).collect();
                        assert_eq!(
                            ranks,
                            (1..=outcome.queries.len()).collect::<Vec<_>>(),
                            "merged ranks must stay dense"
                        );
                    }
                }
            });
        }
    });
}

/// Read-during-write determinism: reader threads hammer a [`LiveGraph`]
/// while a writer thread applies a stream of delta batches. Every snapshot
/// a reader takes is pinned to some write epoch, and its results must be
/// **bit-identical** to a single-threaded, cache-disabled preparation
/// indexed from scratch over exactly that epoch's merged triples — the
/// overlay read path, the shared epoch-keyed cache, and concurrent epoch
/// advances may change timings, never results.
#[test]
fn reads_during_writes_are_bit_identical_per_epoch() {
    let graph = figure1_graph();
    // Round-trip the base through the snapshot path so the live overlays
    // ride on the frozen CSR adjacency, as in production.
    let mut bytes = Vec::new();
    PreparedGraph::index(graph.clone())
        .save(&mut bytes)
        .expect("in-memory save");
    let live = Arc::new(LiveGraph::new(
        PreparedGraph::load(bytes.as_slice()).expect("load own snapshot"),
    ));

    // The write stream: each batch introduces at least one new edge, so
    // each apply advances the epoch by exactly one. The first batch is
    // attribute-only (existing value, existing label) to also drive the
    // cache-promotion path under concurrency.
    let addition_stream: Vec<Vec<Triple>> = vec![
        vec![Triple::attribute("pub1URI", "year", "2008")],
        vec![
            Triple::typed("pub3URI", "Publication"),
            Triple::attribute("pub3URI", "title", "Streaming RDF Joins"),
        ],
        vec![Triple::relation("pub3URI", "author", "re2URI")],
        vec![Triple::attribute("inst2URI", "name", "IPE")],
    ];
    let final_epoch = addition_stream.len() as u64;

    // Keywords that match at every epoch, so every snapshot can run the
    // full scenario set no matter which write it observed.
    let workload: Vec<Vec<String>> = vec![
        vec!["2006".into(), "cimiano".into(), "aifb".into()],
        vec!["cimiano".into(), "publication".into()],
    ];

    // One single-threaded reference per epoch, each indexed from scratch
    // over the base plus the prefix of the write stream visible there.
    let mut references = Vec::new();
    let mut merged = graph.clone();
    references.push(reference_runs(&merged, &workload));
    for additions in &addition_stream {
        for t in additions {
            merged
                .insert_triple(t)
                .expect("write stream is well-formed");
        }
        references.push(reference_runs(&merged, &workload));
    }

    thread::scope(|scope| {
        {
            let live = Arc::clone(&live);
            scope.spawn(move || {
                for additions in addition_stream {
                    let mut batch = DeltaBatch::new();
                    for t in additions {
                        batch = batch.add(t);
                    }
                    live.apply(&batch).expect("write stream is well-formed");
                    // Give the readers a chance to observe this epoch
                    // before the next write lands.
                    thread::yield_now();
                }
            });
        }
        for thread_id in 0..THREADS {
            let live = Arc::clone(&live);
            let workload = &workload;
            let references = &references;
            scope.spawn(move || {
                let mut loops = 0usize;
                loop {
                    let snapshot = live.snapshot();
                    let epoch = snapshot.write_epoch();
                    for (kw_index, keywords) in workload.iter().enumerate() {
                        for (s, scenario) in SCENARIOS.into_iter().enumerate() {
                            let got = run_scenario(&snapshot, scenario, keywords);
                            let want = &references[epoch as usize][kw_index * SCENARIOS.len() + s];
                            assert_eq!(
                                &got, want,
                                "thread {thread_id}: {scenario:?} over {keywords:?} at \
                                 epoch {epoch} diverged from its single-threaded reference"
                            );
                        }
                    }
                    loops += 1;
                    if epoch == final_epoch {
                        break;
                    }
                    assert!(
                        loops < 10_000,
                        "writer never reached epoch {final_epoch} (stuck at {epoch})"
                    );
                }
            });
        }
    });

    // Read-your-writes: the final snapshot sees every batch, including the
    // keywords the write stream introduced.
    let settled = live.snapshot();
    assert_eq!(settled.write_epoch(), final_epoch);
    let fresh = PreparedGraph::index_with(merged, Default::default(), 0);
    for keywords in [
        vec!["streaming".to_string(), "cimiano".to_string()],
        vec!["ipe".to_string()],
    ] {
        for scenario in SCENARIOS {
            let got = run_scenario(&settled, scenario, &keywords);
            let want = run_scenario(&fresh, scenario, &keywords);
            assert_eq!(
                got, want,
                "{scenario:?} over the write-introduced {keywords:?} diverged"
            );
        }
    }
    let stats = settled.augmentation_cache().stats();
    assert!(
        stats.hits > 0,
        "the repeated per-epoch workload must exercise cache hits: {stats:?}"
    );
}

#[test]
fn dblp_scenarios_are_bit_identical_across_threads() {
    let dataset = DblpDataset::small();
    let workload: Vec<Vec<String>> = dblp_performance_queries(&dataset)
        .into_iter()
        .take(3)
        .map(|q| q.keywords)
        .collect();
    assert!(!workload.is_empty());
    assert_concurrent_runs_match_reference(dataset.graph.clone(), workload);
}
