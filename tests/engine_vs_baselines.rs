//! Cross-crate comparison tests: the summary-graph engine and the
//! data-graph baselines must agree on whether keywords are connectable, and
//! the engine must explore far fewer elements than the baselines visit.

use searchwebdb::baselines::{
    backward_search, bfs_search, bidirectional_search, match_keywords, partition_graph,
    partitioned_search,
};
use searchwebdb::datagen::DblpDataset;
use searchwebdb::prelude::*;
use searchwebdb::rdf::fixtures;

#[test]
fn both_approaches_interpret_the_running_example() {
    let graph = fixtures::figure1_graph();
    let engine = KeywordSearchEngine::builder(graph.clone()).build();
    let keywords = ["2006", "Cimiano", "AIFB"];

    let outcome = engine.search(&keywords).unwrap();
    assert!(!outcome.queries.is_empty(), "our approach finds queries");

    let groups = match_keywords(&graph, &keywords);
    for (name, result) in [
        ("backward", backward_search(&graph, &groups, 10, 8)),
        (
            "bidirectional",
            bidirectional_search(&graph, &groups, 10, 8),
        ),
        ("bfs", bfs_search(&graph, &groups, 10, 8)),
    ] {
        assert!(!result.is_empty(), "{name} search finds answer trees");
        let best = result.best().unwrap();
        assert_eq!(best.paths.len(), 3, "{name}: one path per keyword");
    }
}

#[test]
fn summary_exploration_touches_fewer_elements_than_data_graph_search() {
    // The core efficiency claim of the paper: exploration runs on the
    // summary graph, which is orders of magnitude smaller than the data
    // graph the baselines have to search.
    let dataset = DblpDataset::small();
    let engine = KeywordSearchEngine::builder(dataset.graph.clone()).build();
    let keywords = vec![dataset.author_names[0].clone(), dataset.years[0].clone()];

    let outcome = engine.search(&keywords).unwrap();
    assert!(!outcome.queries.is_empty());

    let groups = match_keywords(&dataset.graph, &keywords);
    let baseline = bidirectional_search(&dataset.graph, &groups, 10, 6);

    assert!(
        outcome.augmented_elements * 10 < dataset.graph.vertex_count() + dataset.graph.edge_count(),
        "the augmented summary graph must be much smaller than the data graph"
    );
    assert!(
        outcome.exploration.elements_visited < baseline.visited.max(1) * 2,
        "summary exploration should not visit more elements than the baseline visits vertices \
         (ours: {}, baseline: {})",
        outcome.exploration.elements_visited,
        baseline.visited
    );
}

#[test]
fn partitioned_baseline_matches_full_search_results_on_small_graphs() {
    let graph = fixtures::figure1_graph();
    let keywords = ["2006", "Cimiano"];
    let groups = match_keywords(&graph, &keywords);

    let full = bidirectional_search(&graph, &groups, 5, 8);
    let partitioning = partition_graph(&graph, 3);
    let partitioned = partitioned_search(&graph, &partitioning, &groups, 5, 8);

    assert!(!full.is_empty());
    assert!(!partitioned.is_empty());
    // The best tree weight cannot be better than the unrestricted search.
    assert!(partitioned.best().unwrap().weight >= full.best().unwrap().weight - 1e-9);
}

#[test]
fn answer_trees_and_query_answers_name_the_same_entities() {
    // The root of a baseline answer tree should appear among the bindings of
    // our generated query for the same keywords (the paper argues queries
    // retrieve *all* answers, a superset of the distinct roots).
    let graph = fixtures::figure1_graph();
    let engine = KeywordSearchEngine::builder(graph.clone()).build();
    let keywords = ["2006", "Cimiano"];

    let groups = match_keywords(&graph, &keywords);
    let trees = backward_search(&graph, &groups, 10, 8);
    let pub1 = graph.entity("pub1URI").unwrap();
    assert!(trees.trees.iter().any(|t| t.root == pub1));

    let outcome = engine.search(&keywords).unwrap();
    let best = outcome.best().unwrap();
    let answers = engine.answers(&best.query, None).unwrap();
    assert!(
        answers.rows().iter().any(|row| row.contains(&pub1)),
        "query answers must include the baseline's answer root"
    );
}
