//! Workspace-level integration tests: the full pipeline from RDF triples to
//! answered conjunctive queries, across all crates.

use searchwebdb::datagen::{DblpDataset, LubmConfig, LubmDataset, TapDataset};
use searchwebdb::prelude::*;
use searchwebdb::rdf::{fixtures, ntriples};

#[test]
fn running_example_from_ntriples_to_answers() {
    // Serialise the running example to the N-Triples-like format, parse it
    // back, index it and run the paper's keyword query.
    let document = ntriples::write_graph(&fixtures::figure1_graph());
    let graph = ntriples::parse_graph(&document).expect("round-trip parses");
    let engine = KeywordSearchEngine::builder(graph).build();

    let outcome = engine.search(&["2006", "cimiano", "aifb"]).unwrap();
    assert!(!outcome.queries.is_empty());
    let best = outcome.best().unwrap();

    // The generated query exhibits the structure of Fig. 1c.
    let predicates = best.query.predicates();
    for expected in ["type", "year", "author", "name", "worksAt"] {
        assert!(
            predicates.contains(expected),
            "missing predicate {expected}"
        );
    }

    // And processing it retrieves pub1URI.
    let answers = engine.answers(&best.query, None).unwrap();
    let pub1 = engine.graph().entity("pub1URI").unwrap();
    assert!(answers.rows().iter().any(|row| row.contains(&pub1)));
}

#[test]
fn generated_bibliographic_dataset_supports_the_full_pipeline() {
    let dataset = DblpDataset::small();
    let engine = KeywordSearchEngine::builder(dataset.graph.clone())
        .k(5)
        .build();

    // Author + year: the classic information need of the paper's user study.
    let author = dataset.author_names[dataset.authorship[0][0]].clone();
    let year = dataset.years[0].clone();
    let (outcome, phase) = engine
        .search_and_answer(&[author.clone(), year], 5)
        .unwrap();

    assert!(!outcome.queries.is_empty(), "queries must be generated");
    assert!(phase.queries_processed >= 1);
    let best = outcome.best().unwrap();
    assert!(best.query.constants().contains(&author));
    // At least publication 0 satisfies the intended interpretation, so the
    // processed queries must return something.
    assert!(phase.total_answers() >= 1, "expected answers for {author}");
}

#[test]
fn scoring_functions_rank_differently_but_all_terminate() {
    let dataset = DblpDataset::small();
    let engine = KeywordSearchEngine::builder(dataset.graph.clone()).build();
    let keywords = vec![dataset.venue_names[0].clone(), dataset.years[3].clone()];
    for scoring in ScoringFunction::all() {
        let config = SearchConfig::with_k(10).scoring(scoring);
        let outcome = engine.search_with(&keywords, &config).unwrap();
        assert!(
            !outcome.queries.is_empty(),
            "no queries under scoring {scoring}"
        );
        for pair in outcome.queries.windows(2) {
            assert!(pair[0].cost <= pair[1].cost + 1e-9);
        }
    }
}

#[test]
fn lubm_and_tap_datasets_are_searchable() {
    let lubm = LubmDataset::generate(LubmConfig::with_universities(1));
    let engine = KeywordSearchEngine::builder(lubm.graph.clone()).build();
    let professor = lubm.professor_names[0].clone();
    let outcome = engine
        .search(&[professor, "department".to_string()])
        .unwrap();
    assert!(!outcome.queries.is_empty());
    let best = outcome.best().unwrap();
    let answers = engine.answers(&best.query, Some(10)).unwrap();
    assert!(
        !answers.is_empty(),
        "best query should be answerable:\n{}",
        best.query
    );

    let tap = TapDataset::small();
    let engine = KeywordSearchEngine::builder(tap.graph.clone()).build();
    let city = tap
        .instances
        .iter()
        .find(|(c, _)| c == "City")
        .map(|(_, l)| l[0].clone())
        .unwrap();
    let outcome = engine.search(&[city, "country".to_string()]).unwrap();
    assert!(!outcome.queries.is_empty());
}

#[test]
fn unmatched_and_empty_keyword_queries_are_handled_gracefully() {
    let engine = KeywordSearchEngine::builder(fixtures::figure1_graph()).build();
    let error = engine.search(&["zzz-no-such-keyword"]).unwrap_err();
    let report = error.keywords();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].position, 0);
    assert_eq!(report[0].keyword, "zzz-no-such-keyword");
    assert!(!report[0].is_matched());

    let outcome = engine.search::<&str>(&[]).unwrap();
    assert!(outcome.queries.is_empty());
    assert!(outcome.keywords.is_empty());
}

#[test]
fn sparql_and_sql_renderings_are_produced_for_every_result() {
    let engine = KeywordSearchEngine::builder(fixtures::figure1_graph()).build();
    let outcome = engine.search(&["cimiano", "publication"]).unwrap();
    for ranked in &outcome.queries {
        let sparql = ranked.sparql();
        assert!(sparql.starts_with("SELECT"));
        assert!(sparql.contains("WHERE"));
        let sql = searchwebdb::query::sql::to_sql(&ranked.query);
        assert!(sql.contains("FROM"));
        assert!(!ranked.description().is_empty());
    }
}

#[test]
fn increasing_k_only_appends_results() {
    let dataset = DblpDataset::small();
    let engine = KeywordSearchEngine::builder(dataset.graph.clone()).build();
    let keywords = vec![dataset.author_names[0].clone(), "publications".to_string()];

    let small = engine
        .search_with(&keywords, &SearchConfig::with_k(2))
        .unwrap();
    let large = engine
        .search_with(&keywords, &SearchConfig::with_k(8))
        .unwrap();
    assert!(large.queries.len() >= small.queries.len());
    // The top results and costs agree (top-k guarantee): the cheaper list is
    // a prefix of the larger one in terms of cost.
    for (a, b) in small.queries.iter().zip(large.queries.iter()) {
        assert!((a.cost - b.cost).abs() < 1e-9);
    }
}
