//! Workspace smoke test.
//!
//! This exists to catch manifest regressions: if any crate's `Cargo.toml`
//! (or a dependency edge between the crates) breaks, this test — which pulls
//! every layer of the stack through the facade — stops compiling, so the
//! tier-1 command (`cargo build --release && cargo test -q`) fails loudly
//! rather than silently skipping the affected crate.
//!
//! It drives the complete pipeline of the paper's running example (Fig. 1):
//! graph construction → indexing (keyword index, summary graph, triple
//! store) → top-k exploration → query ranking → answer computation.

use searchwebdb::prelude::*;

#[test]
fn engine_answers_the_running_example_end_to_end() {
    // Fig. 1a data graph from the kwsearch-rdf fixture.
    let graph = searchwebdb::rdf::fixtures::figure1_graph();
    assert!(graph.vertex_count() > 0, "fixture graph must not be empty");

    // Off-line preprocessing across kwsearch-keyword-index and
    // kwsearch-summary, wired together by kwsearch-core.
    let engine = KeywordSearchEngine::builder(graph).build();
    assert!(engine.summary().node_count() > 0);

    // The paper's keyword query: the 2006 publication by Cimiano at AIFB.
    let outcome = engine.search(&["2006", "cimiano", "aifb"]).unwrap();
    assert!(
        !outcome.queries.is_empty(),
        "the running example must produce at least one query interpretation"
    );

    // Queries come back ranked by non-decreasing cost.
    for pair in outcome.queries.windows(2) {
        assert!(
            pair[0].cost <= pair[1].cost,
            "queries must be sorted by cost: {} > {}",
            pair[0].cost,
            pair[1].cost
        );
    }

    // The best interpretation renders to SPARQL (kwsearch-query) and yields
    // at least one answer over the data graph.
    let best = outcome.best().expect("non-empty outcome has a best query");
    let sparql = best.sparql();
    assert!(
        sparql.contains("SELECT"),
        "SPARQL rendering broken: {sparql}"
    );

    let answers = engine
        .answers(&best.query, None)
        .expect("the best query must evaluate");
    assert!(
        !answers.is_empty(),
        "the running example's best query must have answers"
    );
}

#[test]
fn facade_reexports_every_subcrate() {
    // Touch one symbol from each re-exported sub-crate so a dropped manifest
    // dependency in the facade is a compile error here.
    let _graph: searchwebdb::rdf::DataGraph = searchwebdb::rdf::DataGraph::new();
    let _builder = searchwebdb::query::QueryBuilder::new();
    let _analyzer = searchwebdb::keyword_index::Analyzer::new();
    let _summary = searchwebdb::summary::SummaryGraph::default();
    let _config = searchwebdb::core::SearchConfig::default();
    let _ = searchwebdb::baselines::keyword_match::match_keywords::<&str>;
    let _ = searchwebdb::datagen::DblpConfig::default();
}
