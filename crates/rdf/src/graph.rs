//! The typed RDF data graph of Definition 1.
//!
//! A [`DataGraph`] keeps three disjoint vertex partitions — entities
//! (E-vertices), classes (C-vertices) and values (V-vertices) — and four
//! kinds of labelled, directed edges (relations, attributes, `type`,
//! `subclass`). Vertices are deduplicated per partition by label; edges are
//! deduplicated by `(source, label, target)`.
//!
//! The graph offers the adjacency and classification queries needed by
//! the summary-graph construction, the keyword index, the baselines and the
//! conjunctive-query evaluator.

use std::collections::{HashMap, HashSet};

use crate::error::RdfError;
use crate::interner::{Interner, Symbol};
use crate::snapshot::{SectionDecoder, SectionEncoder, SnapshotError};
use crate::term::Term;
use crate::triple::{EdgeKind, Triple, TripleRef};
use crate::vocab;
use crate::Result;

/// Index of a vertex inside a [`DataGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub(crate) u32);

impl VertexId {
    /// Dense numeric index of this vertex.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a vertex id from its dense index (snapshot loading).
    /// The caller is responsible for the index being in range for the
    /// graph the id is used with.
    #[inline]
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }
}

/// Index of an edge inside a [`DataGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Dense numeric index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an edge id from its dense index. The caller is
    /// responsible for the index being in range for the graph the id is
    /// used with.
    #[inline]
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }
}

/// Index of a distinct edge label inside a [`DataGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeLabelId(pub(crate) u32);

impl EdgeLabelId {
    /// Dense numeric index of this edge label.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an edge-label id from its dense index (snapshot
    /// loading). The caller is responsible for the index being in range.
    #[inline]
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }
}

/// The partition a vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VertexKind {
    /// An E-vertex: an entity identified by an IRI.
    Entity,
    /// A C-vertex: a class.
    Class,
    /// A V-vertex: a data value.
    Value,
}

impl VertexKind {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            VertexKind::Entity => "entity",
            VertexKind::Class => "class",
            VertexKind::Value => "value",
        }
    }
}

/// A vertex of the data graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vertex {
    /// Partition of the vertex.
    pub kind: VertexKind,
    /// Interned label (IRI, class name or literal value).
    pub label: Symbol,
}

/// A distinct edge label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeLabel {
    /// An inter-entity relation label (`L_R`).
    Relation(Symbol),
    /// An entity-to-value attribute label (`L_A`).
    Attribute(Symbol),
    /// The predefined `type` label.
    Type,
    /// The predefined `subclass` label.
    SubClass,
}

impl EdgeLabel {
    /// The [`EdgeKind`] this label belongs to.
    pub fn kind(self) -> EdgeKind {
        match self {
            EdgeLabel::Relation(_) => EdgeKind::Relation,
            EdgeLabel::Attribute(_) => EdgeKind::Attribute,
            EdgeLabel::Type => EdgeKind::Type,
            EdgeLabel::SubClass => EdgeKind::SubClass,
        }
    }

    /// The label symbol for relation/attribute labels.
    pub fn symbol(self) -> Option<Symbol> {
        match self {
            EdgeLabel::Relation(s) | EdgeLabel::Attribute(s) => Some(s),
            EdgeLabel::Type | EdgeLabel::SubClass => None,
        }
    }
}

/// A directed, labelled edge of the data graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Identifier of the edge label.
    pub label: EdgeLabelId,
    /// Source vertex.
    pub from: VertexId,
    /// Target vertex.
    pub to: VertexId,
}

/// The edges of one vertex: a frozen slice plus a (usually empty) live
/// overlay of edges appended after the graph was frozen to CSR form.
///
/// Iteration yields the frozen edges first, then the overlay — exactly the
/// insertion order a never-frozen graph would have, so the two physical
/// forms are observationally identical.
#[derive(Clone, Copy)]
pub struct EdgesRef<'a> {
    base: &'a [EdgeId],
    overlay: &'a [EdgeId],
}

impl<'a> EdgesRef<'a> {
    /// Total number of edges (frozen + overlay).
    pub fn len(&self) -> usize {
        self.base.len() + self.overlay.len()
    }

    /// Whether the vertex has no edges in this direction.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.overlay.is_empty()
    }

    /// Iterates over all edges, frozen before overlay.
    pub fn iter(
        &self,
    ) -> std::iter::Chain<std::slice::Iter<'a, EdgeId>, std::slice::Iter<'a, EdgeId>> {
        self.base.iter().chain(self.overlay.iter())
    }
}

impl<'a> IntoIterator for EdgesRef<'a> {
    type Item = &'a EdgeId;
    type IntoIter = std::iter::Chain<std::slice::Iter<'a, EdgeId>, std::slice::Iter<'a, EdgeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.base.iter().chain(self.overlay.iter())
    }
}

impl PartialEq for EdgesRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for EdgesRef<'_> {}

impl std::fmt::Debug for EdgesRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Per-vertex edge lists in one of two physical forms.
///
/// A graph built by inserts uses the list-of-lists form. A graph loaded
/// from a snapshot keeps the two flat CSR columns it was stored as —
/// re-packing them into lists would cost one small allocation *per
/// vertex*, the single hottest part of a load at 10⁶-edge scale. Later
/// mutations do **not** inflate the frozen columns either: new edges land
/// in a sparse per-vertex overlay (the live-update path appends a small
/// delta to a large loaded base, so rewriting the base would turn an
/// O(delta) write into an O(graph) one). Reads see base-then-overlay via
/// [`EdgesRef`], which is insertion order in both forms.
#[derive(Debug, Clone)]
enum Adjacency {
    /// Append-friendly form: `lists[v]` are the edges of vertex `v`.
    Lists(Vec<Vec<EdgeId>>),
    /// Frozen snapshot form: the edges of vertex `v` are
    /// `flat[offsets[v]..offsets[v + 1]]`, followed by `overlay[v]` (the
    /// overlay is grown lazily and is empty until the first post-load
    /// mutation).
    Csr {
        offsets: Vec<u32>,
        flat: Vec<EdgeId>,
        overlay: Vec<Vec<EdgeId>>,
    },
}

impl Default for Adjacency {
    fn default() -> Self {
        Adjacency::Lists(Vec::new())
    }
}

const NO_EDGES: &[EdgeId] = &[];

impl Adjacency {
    /// The edges of vertex `v`.
    #[inline]
    fn edges(&self, v: usize) -> EdgesRef<'_> {
        match self {
            Adjacency::Lists(lists) => EdgesRef {
                base: &lists[v],
                overlay: NO_EDGES,
            },
            Adjacency::Csr {
                offsets,
                flat,
                overlay,
            } => EdgesRef {
                base: &flat[offsets[v] as usize..offsets[v + 1] as usize],
                overlay: overlay.get(v).map_or(NO_EDGES, |l| l.as_slice()),
            },
        }
    }

    /// Whether any overlay edges have been appended on top of frozen CSR
    /// columns.
    fn has_overlay(&self) -> bool {
        match self {
            Adjacency::Lists(_) => false,
            Adjacency::Csr { overlay, .. } => overlay.iter().any(|l| !l.is_empty()),
        }
    }

    /// Appends an empty edge list for a new vertex.
    fn push_vertex(&mut self) {
        match self {
            Adjacency::Lists(lists) => lists.push(Vec::new()),
            // A new vertex starts with an empty frozen slice; overlay
            // entries are grown on demand by `push_edge`.
            Adjacency::Csr { offsets, .. } => {
                // lint: allow(no-unwrap, reason = "CSR offsets are built with a leading 0 sentinel, so the vector is never empty")
                let end = *offsets.last().expect("CSR offsets start at 0");
                offsets.push(end);
            }
        }
    }

    /// Appends an edge to the list of vertex `v`.
    fn push_edge(&mut self, v: usize, e: EdgeId) {
        match self {
            Adjacency::Lists(lists) => lists[v].push(e),
            Adjacency::Csr { overlay, .. } => {
                if overlay.len() <= v {
                    overlay.resize_with(v + 1, Vec::new);
                }
                overlay[v].push(e);
            }
        }
    }
}

/// The in-memory typed RDF data graph.
#[derive(Debug, Default, Clone)]
pub struct DataGraph {
    interner: Interner,
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    edge_labels: Vec<EdgeLabel>,
    edge_label_ids: HashMap<EdgeLabel, EdgeLabelId>,
    out_adj: Adjacency,
    in_adj: Adjacency,
    entities: HashMap<Symbol, VertexId>,
    classes: HashMap<Symbol, VertexId>,
    values: HashMap<Symbol, VertexId>,
    edge_set: HashSet<(VertexId, EdgeLabelId, VertexId)>,
    /// Set when the graph was loaded from a snapshot: `edge_set` is then
    /// empty and is rebuilt lazily on the first mutation, keeping snapshot
    /// loads O(bytes). `false` (the default) means `edge_set` is in sync.
    edge_set_stale: bool,
}

impl DataGraph {
    /// Creates an empty data graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Labels
    // ------------------------------------------------------------------

    /// Interns a label string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves an interned label back to text.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Looks up an already interned label.
    pub fn symbol(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    /// Shared access to the interner (for size accounting).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    // ------------------------------------------------------------------
    // Vertices
    // ------------------------------------------------------------------

    fn push_vertex(&mut self, kind: VertexKind, label: Symbol) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex { kind, label });
        self.out_adj.push_vertex();
        self.in_adj.push_vertex();
        id
    }

    /// Returns the E-vertex with the given IRI, creating it if necessary.
    pub fn add_entity(&mut self, iri: &str) -> VertexId {
        let label = self.interner.intern(iri);
        if let Some(&v) = self.entities.get(&label) {
            return v;
        }
        let v = self.push_vertex(VertexKind::Entity, label);
        self.entities.insert(label, v);
        v
    }

    /// Returns the C-vertex with the given class name, creating it if necessary.
    pub fn add_class(&mut self, name: &str) -> VertexId {
        let label = self.interner.intern(name);
        if let Some(&v) = self.classes.get(&label) {
            return v;
        }
        let v = self.push_vertex(VertexKind::Class, label);
        self.classes.insert(label, v);
        v
    }

    /// Returns the V-vertex with the given literal value, creating it if necessary.
    pub fn add_value(&mut self, value: &str) -> VertexId {
        let label = self.interner.intern(value);
        if let Some(&v) = self.values.get(&label) {
            return v;
        }
        let v = self.push_vertex(VertexKind::Value, label);
        self.values.insert(label, v);
        v
    }

    /// The vertex record for `v`.
    pub fn vertex(&self, v: VertexId) -> Vertex {
        self.vertices[v.index()]
    }

    /// The partition `v` belongs to.
    pub fn vertex_kind(&self, v: VertexId) -> VertexKind {
        self.vertices[v.index()].kind
    }

    /// The label text of `v`.
    pub fn vertex_label(&self, v: VertexId) -> &str {
        self.interner.resolve(self.vertices[v.index()].label)
    }

    /// The interned label of `v`.
    pub fn vertex_symbol(&self, v: VertexId) -> Symbol {
        self.vertices[v.index()].label
    }

    /// Looks up an entity vertex by IRI.
    pub fn entity(&self, iri: &str) -> Option<VertexId> {
        self.interner
            .get(iri)
            .and_then(|s| self.entities.get(&s).copied())
    }

    /// Looks up a class vertex by name.
    pub fn class(&self, name: &str) -> Option<VertexId> {
        self.interner
            .get(name)
            .and_then(|s| self.classes.get(&s).copied())
    }

    /// Looks up a value vertex by literal text.
    pub fn value(&self, value: &str) -> Option<VertexId> {
        self.interner
            .get(value)
            .and_then(|s| self.values.get(&s).copied())
    }

    /// Looks up a vertex by label in all three partitions (entity, class,
    /// value — in that order).
    pub fn vertex_by_label(&self, label: &str) -> Option<VertexId> {
        self.entity(label)
            .or_else(|| self.class(label))
            .or_else(|| self.value(label))
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of vertices of the given kind.
    pub fn vertex_count_of_kind(&self, kind: VertexKind) -> usize {
        match kind {
            VertexKind::Entity => self.entities.len(),
            VertexKind::Class => self.classes.len(),
            VertexKind::Value => self.values.len(),
        }
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterates over vertices of a given kind.
    pub fn vertices_of_kind(&self, kind: VertexKind) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices()
            .filter(move |&v| self.vertex_kind(v) == kind)
    }

    // ------------------------------------------------------------------
    // Edge labels
    // ------------------------------------------------------------------

    /// Returns the id of `label`, registering it if necessary.
    pub fn ensure_edge_label(&mut self, label: EdgeLabel) -> EdgeLabelId {
        if let Some(&id) = self.edge_label_ids.get(&label) {
            return id;
        }
        let id = EdgeLabelId(self.edge_labels.len() as u32);
        self.edge_labels.push(label);
        self.edge_label_ids.insert(label, id);
        id
    }

    /// Looks up a registered edge label.
    pub fn edge_label_id(&self, label: &EdgeLabel) -> Option<EdgeLabelId> {
        self.edge_label_ids.get(label).copied()
    }

    /// The edge label for an id.
    pub fn edge_label(&self, id: EdgeLabelId) -> EdgeLabel {
        self.edge_labels[id.index()]
    }

    /// The textual name of an edge label (`type`, `subclass` or the
    /// relation/attribute name).
    pub fn edge_label_name(&self, id: EdgeLabelId) -> &str {
        match self.edge_labels[id.index()] {
            EdgeLabel::Relation(s) | EdgeLabel::Attribute(s) => self.interner.resolve(s),
            EdgeLabel::Type => vocab::TYPE,
            EdgeLabel::SubClass => vocab::SUBCLASS,
        }
    }

    /// Number of distinct edge labels.
    pub fn edge_label_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// Iterates over all registered edge labels.
    pub fn edge_labels(&self) -> impl Iterator<Item = (EdgeLabelId, EdgeLabel)> + '_ {
        self.edge_labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (EdgeLabelId(i as u32), l))
    }

    /// Finds the relation and/or attribute labels with the given name.
    pub fn edge_labels_named(&self, name: &str) -> Vec<EdgeLabelId> {
        if name == vocab::TYPE {
            return self.edge_label_id(&EdgeLabel::Type).into_iter().collect();
        }
        if name == vocab::SUBCLASS {
            return self
                .edge_label_id(&EdgeLabel::SubClass)
                .into_iter()
                .collect();
        }
        let Some(sym) = self.interner.get(name) else {
            return Vec::new();
        };
        [EdgeLabel::Relation(sym), EdgeLabel::Attribute(sym)]
            .into_iter()
            .filter_map(|l| self.edge_label_id(&l))
            .collect()
    }

    // ------------------------------------------------------------------
    // Edges
    // ------------------------------------------------------------------

    fn validate_edge(&self, label: EdgeLabel, from: VertexId, to: VertexId) -> Result<()> {
        let from_kind = self.vertex_kind(from);
        let to_kind = self.vertex_kind(to);
        let ok = match label.kind() {
            EdgeKind::Relation => from_kind == VertexKind::Entity && to_kind == VertexKind::Entity,
            EdgeKind::Attribute => from_kind == VertexKind::Entity && to_kind == VertexKind::Value,
            EdgeKind::Type => from_kind == VertexKind::Entity && to_kind == VertexKind::Class,
            EdgeKind::SubClass => from_kind == VertexKind::Class && to_kind == VertexKind::Class,
        };
        if ok {
            Ok(())
        } else {
            Err(RdfError::InvalidEdge {
                reason: format!(
                    "{} edge from {} vertex `{}` to {} vertex `{}` violates Definition 1",
                    label.kind(),
                    from_kind.name(),
                    self.vertex_label(from),
                    to_kind.name(),
                    self.vertex_label(to)
                ),
            })
        }
    }

    /// Adds an edge, validating the vertex kinds against Definition 1.
    ///
    /// Duplicate `(from, label, to)` edges are silently collapsed and the
    /// existing edge id is returned.
    pub fn add_edge(&mut self, from: VertexId, label: EdgeLabel, to: VertexId) -> Result<EdgeId> {
        self.validate_edge(label, from, to)?;
        if self.edge_set_stale {
            self.edge_set = self.edges.iter().map(|e| (e.from, e.label, e.to)).collect();
            self.edge_set_stale = false;
        }
        let label_id = self.ensure_edge_label(label);
        if self.edge_set.contains(&(from, label_id, to)) {
            // Linear scan over the (short) out-adjacency list of `from`.
            for &e in self.out_adj.edges(from.index()) {
                let edge = self.edges[e.index()];
                if edge.label == label_id && edge.to == to {
                    return Ok(e);
                }
            }
            unreachable!("edge_set and adjacency lists out of sync");
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            label: label_id,
            from,
            to,
        });
        self.out_adj.push_edge(from.index(), id);
        self.in_adj.push_edge(to.index(), id);
        self.edge_set.insert((from, label_id, to));
        Ok(id)
    }

    /// Inserts a triple, creating the vertices it refers to.
    pub fn insert_triple(&mut self, triple: &Triple) -> Result<EdgeId> {
        match triple.edge_kind() {
            EdgeKind::Type => {
                if !triple.object.is_iri() {
                    return Err(RdfError::InvalidEdge {
                        reason: format!("`type` triple with literal object {}", triple.object),
                    });
                }
                let s = self.add_entity(triple.subject.value());
                let o = self.add_class(triple.object.value());
                self.add_edge(s, EdgeLabel::Type, o)
            }
            EdgeKind::SubClass => {
                if !triple.object.is_iri() {
                    return Err(RdfError::InvalidEdge {
                        reason: format!("`subclass` triple with literal object {}", triple.object),
                    });
                }
                let s = self.add_class(triple.subject.value());
                let o = self.add_class(triple.object.value());
                self.add_edge(s, EdgeLabel::SubClass, o)
            }
            EdgeKind::Relation => {
                let s = self.add_entity(triple.subject.value());
                let o = self.add_entity(triple.object.value());
                let p = self.interner.intern(&triple.predicate);
                self.add_edge(s, EdgeLabel::Relation(p), o)
            }
            EdgeKind::Attribute => {
                let s = self.add_entity(triple.subject.value());
                let o = self.add_value(triple.object.value());
                let p = self.interner.intern(&triple.predicate);
                self.add_edge(s, EdgeLabel::Attribute(p), o)
            }
        }
    }

    /// Builds the malformed-schema-triple error off the hot ingest path —
    /// the allocation only ever happens on invalid input.
    #[cold]
    fn literal_object_error(kind: &str, value: &str) -> RdfError {
        RdfError::InvalidEdge {
            reason: format!("`{kind}` triple with literal object \"{value}\""),
        }
    }

    /// Inserts a borrowed triple, creating the vertices it refers to.
    ///
    /// This is the streamed-ingest twin of [`Self::insert_triple`]: it
    /// performs the same classification and interning in the same order (so
    /// a graph ingested from a stream is bit-identical to one built from
    /// owned [`Triple`]s) but never allocates an intermediate `String`.
    // lint: hot-path
    pub fn insert_triple_ref(&mut self, triple: &TripleRef<'_>) -> Result<EdgeId> {
        match triple.edge_kind() {
            EdgeKind::Type => {
                if !triple.object.is_iri() {
                    return Err(Self::literal_object_error("type", triple.object.value()));
                }
                let s = self.add_entity(triple.subject);
                let o = self.add_class(triple.object.value());
                self.add_edge(s, EdgeLabel::Type, o)
            }
            EdgeKind::SubClass => {
                if !triple.object.is_iri() {
                    return Err(Self::literal_object_error(
                        "subclass",
                        triple.object.value(),
                    ));
                }
                let s = self.add_class(triple.subject);
                let o = self.add_class(triple.object.value());
                self.add_edge(s, EdgeLabel::SubClass, o)
            }
            EdgeKind::Relation => {
                let s = self.add_entity(triple.subject);
                let o = self.add_entity(triple.object.value());
                let p = self.interner.intern(triple.predicate);
                self.add_edge(s, EdgeLabel::Relation(p), o)
            }
            EdgeKind::Attribute => {
                let s = self.add_entity(triple.subject);
                let o = self.add_value(triple.object.value());
                let p = self.interner.intern(triple.predicate);
                self.add_edge(s, EdgeLabel::Attribute(p), o)
            }
        }
    }

    /// The edge record for `e`.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> EdgesRef<'_> {
        self.out_adj.edges(v.index())
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> EdgesRef<'_> {
        self.in_adj.edges(v.index())
    }

    /// Whether any adjacency overlay edges sit on top of frozen CSR
    /// columns (true only for snapshot-loaded graphs mutated afterwards).
    pub fn has_adjacency_overlay(&self) -> bool {
        self.out_adj.has_overlay() || self.in_adj.has_overlay()
    }

    /// Undirected degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_adj.edges(v.index()).len() + self.in_adj.edges(v.index()).len()
    }

    /// All vertices adjacent to `v` (through incoming or outgoing edges),
    /// together with the connecting edge. Used by the baseline algorithms
    /// that explore the full data graph.
    pub fn neighbors(&self, v: VertexId) -> Vec<(EdgeId, VertexId)> {
        let mut out = Vec::with_capacity(self.degree(v));
        for &e in self.out_adj.edges(v.index()) {
            out.push((e, self.edges[e.index()].to));
        }
        for &e in self.in_adj.edges(v.index()) {
            out.push((e, self.edges[e.index()].from));
        }
        out
    }

    // ------------------------------------------------------------------
    // Class structure helpers
    // ------------------------------------------------------------------

    /// The classes an entity is a direct instance of (targets of its `type`
    /// edges).
    pub fn classes_of(&self, entity: VertexId) -> Vec<VertexId> {
        let mut classes = Vec::new();
        for &e in self.out_adj.edges(entity.index()) {
            let edge = self.edges[e.index()];
            if self.edge_label(edge.label) == EdgeLabel::Type {
                classes.push(edge.to);
            }
        }
        classes
    }

    /// The direct instances of a class (sources of its incoming `type` edges).
    pub fn instances_of(&self, class: VertexId) -> Vec<VertexId> {
        let mut instances = Vec::new();
        for &e in self.in_adj.edges(class.index()) {
            let edge = self.edges[e.index()];
            if self.edge_label(edge.label) == EdgeLabel::Type {
                instances.push(edge.from);
            }
        }
        instances
    }

    /// Direct super-classes of a class.
    pub fn superclasses_of(&self, class: VertexId) -> Vec<VertexId> {
        let mut supers = Vec::new();
        for &e in self.out_adj.edges(class.index()) {
            let edge = self.edges[e.index()];
            if self.edge_label(edge.label) == EdgeLabel::SubClass {
                supers.push(edge.to);
            }
        }
        supers
    }

    /// Direct sub-classes of a class.
    pub fn subclasses_of(&self, class: VertexId) -> Vec<VertexId> {
        let mut subs = Vec::new();
        for &e in self.in_adj.edges(class.index()) {
            let edge = self.edges[e.index()];
            if self.edge_label(edge.label) == EdgeLabel::SubClass {
                subs.push(edge.from);
            }
        }
        subs
    }

    /// Whether an entity has no `type` edge (it is aggregated under `Thing`
    /// in the summary graph).
    pub fn is_untyped_entity(&self, v: VertexId) -> bool {
        self.vertex_kind(v) == VertexKind::Entity && self.classes_of(v).is_empty()
    }

    // ------------------------------------------------------------------
    // Edge-subset views (sharding)
    // ------------------------------------------------------------------

    /// Builds a new graph over the **same id space** as `self` — identical
    /// interner, vertex table, vertex-lookup maps and edge-label table —
    /// containing exactly the edges selected by `keep`.
    ///
    /// This is the construction primitive of graph sharding: every
    /// [`VertexId`], [`Symbol`] and [`EdgeLabelId`] of the original graph
    /// remains valid (and means the same thing) in every subset, so results
    /// computed against different subsets are directly comparable — and
    /// mergeable — without any id translation. Edge ids are re-densified;
    /// kept edges preserve their relative insertion order, which keeps the
    /// per-vertex adjacency order identical to a graph into which only the
    /// kept triples had been inserted.
    ///
    /// Vertices that lose all their edges stay present (as isolated
    /// vertices): dropping them would shift the id space and break
    /// cross-subset comparability.
    pub fn edge_subset(&self, mut keep: impl FnMut(EdgeId, &Edge) -> bool) -> DataGraph {
        let n = self.vertices.len();
        let mut edges = Vec::new();
        let mut out_lists: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut in_lists: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut edge_set = HashSet::new();
        for (i, edge) in self.edges.iter().enumerate() {
            if !keep(EdgeId(i as u32), edge) {
                continue;
            }
            let id = EdgeId(edges.len() as u32);
            edges.push(*edge);
            out_lists[edge.from.index()].push(id);
            in_lists[edge.to.index()].push(id);
            edge_set.insert((edge.from, edge.label, edge.to));
        }
        DataGraph {
            interner: self.interner.clone(),
            vertices: self.vertices.clone(),
            edges,
            edge_labels: self.edge_labels.clone(),
            edge_label_ids: self.edge_label_ids.clone(),
            out_adj: Adjacency::Lists(out_lists),
            in_adj: Adjacency::Lists(in_lists),
            entities: self.entities.clone(),
            classes: self.classes.clone(),
            values: self.values.clone(),
            edge_set,
            edge_set_stale: false,
        }
    }

    // ------------------------------------------------------------------
    // Export
    // ------------------------------------------------------------------

    /// Reconstructs the triples of the graph (used by the serialiser and the
    /// round-trip tests).
    pub fn triples(&self) -> Vec<Triple> {
        self.edges()
            .map(|e| {
                let edge = self.edge(e);
                let subject = Term::iri(self.vertex_label(edge.from));
                match self.edge_label(edge.label) {
                    EdgeLabel::Relation(p) => Triple::new(
                        subject,
                        self.resolve(p),
                        Term::iri(self.vertex_label(edge.to)),
                    ),
                    EdgeLabel::Attribute(p) => Triple::new(
                        subject,
                        self.resolve(p),
                        Term::literal(self.vertex_label(edge.to)),
                    ),
                    EdgeLabel::Type => {
                        Triple::new(subject, vocab::TYPE, Term::iri(self.vertex_label(edge.to)))
                    }
                    EdgeLabel::SubClass => Triple::new(
                        subject,
                        vocab::SUBCLASS,
                        Term::iri(self.vertex_label(edge.to)),
                    ),
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Snapshot
    // ------------------------------------------------------------------

    /// Serialises the graph into a snapshot section as flat buffers:
    /// interner, vertex kind/label columns, edge label table, edge columns
    /// and both adjacency lists in CSR form.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        self.interner.write_snapshot(enc);

        let kinds: Vec<u32> = self
            .vertices
            .iter()
            .map(|v| match v.kind {
                VertexKind::Entity => 0,
                VertexKind::Class => 1,
                VertexKind::Value => 2,
            })
            .collect();
        let labels: Vec<u32> = self.vertices.iter().map(|v| v.label.0).collect();
        enc.put_u32_slice(&kinds);
        enc.put_u32_slice(&labels);

        let mut label_tags = Vec::with_capacity(self.edge_labels.len());
        let mut label_syms = Vec::with_capacity(self.edge_labels.len());
        for label in &self.edge_labels {
            let (tag, sym) = match *label {
                EdgeLabel::Relation(s) => (0, s.0),
                EdgeLabel::Attribute(s) => (1, s.0),
                EdgeLabel::Type => (2, u32::MAX),
                EdgeLabel::SubClass => (3, u32::MAX),
            };
            label_tags.push(tag);
            label_syms.push(sym);
        }
        enc.put_u32_slice(&label_tags);
        enc.put_u32_slice(&label_syms);

        let edge_labels: Vec<u32> = self.edges.iter().map(|e| e.label.0).collect();
        let edge_from: Vec<u32> = self.edges.iter().map(|e| e.from.0).collect();
        let edge_to: Vec<u32> = self.edges.iter().map(|e| e.to.0).collect();
        enc.put_u32_slice(&edge_labels);
        enc.put_u32_slice(&edge_from);
        enc.put_u32_slice(&edge_to);

        write_csr(enc, &self.out_adj);
        write_csr(enc, &self.in_adj);
    }

    /// Rebuilds a graph from [`Self::write_snapshot`] output.
    ///
    /// Flat columns are bulk-loaded; only the small symbol→vertex and edge
    /// label lookup maps are re-derived (cheap `u32`-keyed inserts). The
    /// edge deduplication set is rebuilt lazily on the first mutation.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> std::result::Result<Self, SnapshotError> {
        let interner = Interner::read_snapshot(dec)?;

        let kinds = dec.get_u32_column()?;
        let labels = dec.get_u32_column()?;
        if kinds.len() != labels.len() {
            return Err(dec.corrupt("vertex kind and label columns differ in length"));
        }
        let n_syms = interner.len() as u32;
        let mut vertices = Vec::with_capacity(kinds.len());
        // The partition sizes are derived from bytes that physically exist
        // in the (already checksummed) payload, so reserving them up front
        // is safe and halves the load cost of the largest lookup tables.
        let mut partition_sizes = [0usize; 3];
        for kind in kinds.iter() {
            if let Some(slot) = partition_sizes.get_mut(kind as usize) {
                *slot += 1;
            }
        }
        let mut entities = HashMap::with_capacity(partition_sizes[0]);
        let mut classes = HashMap::with_capacity(partition_sizes[1]);
        let mut values = HashMap::with_capacity(partition_sizes[2]);
        for (i, (kind, label)) in kinds.iter().zip(labels.iter()).enumerate() {
            if label >= n_syms {
                return Err(dec.corrupt(format!("vertex {i} label out of interner range")));
            }
            let kind = match kind {
                0 => VertexKind::Entity,
                1 => VertexKind::Class,
                2 => VertexKind::Value,
                other => return Err(dec.corrupt(format!("vertex {i} has bad kind tag {other}"))),
            };
            let id = VertexId(i as u32);
            let sym = Symbol(label);
            let partition = match kind {
                VertexKind::Entity => &mut entities,
                VertexKind::Class => &mut classes,
                VertexKind::Value => &mut values,
            };
            if partition.insert(sym, id).is_some() {
                return Err(dec.corrupt(format!("duplicate vertex label in partition at {i}")));
            }
            vertices.push(Vertex { kind, label: sym });
        }

        let label_tags = dec.get_u32_vec()?;
        let label_syms = dec.get_u32_vec()?;
        if label_tags.len() != label_syms.len() {
            return Err(dec.corrupt("edge label tag and symbol columns differ in length"));
        }
        let mut edge_labels = Vec::with_capacity(label_tags.len());
        let mut edge_label_ids = HashMap::new();
        for (i, (&tag, &sym)) in label_tags.iter().zip(&label_syms).enumerate() {
            let label = match tag {
                0 | 1 => {
                    if sym >= n_syms {
                        return Err(
                            dec.corrupt(format!("edge label {i} symbol out of interner range"))
                        );
                    }
                    if tag == 0 {
                        EdgeLabel::Relation(Symbol(sym))
                    } else {
                        EdgeLabel::Attribute(Symbol(sym))
                    }
                }
                2 => EdgeLabel::Type,
                3 => EdgeLabel::SubClass,
                other => return Err(dec.corrupt(format!("edge label {i} has bad tag {other}"))),
            };
            if edge_label_ids
                .insert(label, EdgeLabelId(i as u32))
                .is_some()
            {
                return Err(dec.corrupt(format!("duplicate edge label at {i}")));
            }
            edge_labels.push(label);
        }

        let e_labels = dec.get_u32_column()?;
        let e_from = dec.get_u32_column()?;
        let e_to = dec.get_u32_column()?;
        if e_labels.len() != e_from.len() || e_labels.len() != e_to.len() {
            return Err(dec.corrupt("edge columns differ in length"));
        }
        let n_vertices = vertices.len() as u32;
        let n_labels = edge_labels.len() as u32;
        let mut edges = Vec::with_capacity(e_labels.len());
        for (i, ((label, from), to)) in e_labels
            .iter()
            .zip(e_from.iter())
            .zip(e_to.iter())
            .enumerate()
        {
            if label >= n_labels || from >= n_vertices || to >= n_vertices {
                return Err(dec.corrupt(format!("edge {i} refers past the tables")));
            }
            edges.push(Edge {
                label: EdgeLabelId(label),
                from: VertexId(from),
                to: VertexId(to),
            });
        }

        let n_edges = edges.len();
        let out_adj = read_csr(dec, vertices.len(), n_edges, "out-adjacency")?;
        let in_adj = read_csr(dec, vertices.len(), n_edges, "in-adjacency")?;

        Ok(Self {
            interner,
            vertices,
            edges,
            edge_labels,
            edge_label_ids,
            out_adj,
            in_adj,
            entities,
            classes,
            values,
            edge_set: HashSet::new(),
            edge_set_stale: true,
        })
    }
}

/// Writes adjacency as CSR: an offsets column plus one flat column.
///
/// Both physical forms of [`Adjacency`] produce identical bytes — the frozen
/// form is already CSR and is written verbatim, the lists form is flattened
/// — so save/load round trips are byte-stable regardless of how the graph
/// came to be.
fn write_csr(enc: &mut SectionEncoder, adj: &Adjacency) {
    let flatten_lists = |enc: &mut SectionEncoder, n: usize| {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut flat = Vec::new();
        offsets.push(0u32);
        for v in 0..n {
            flat.extend(adj.edges(v).iter().map(|e| e.0));
            offsets.push(flat.len() as u32);
        }
        enc.put_u32_slice(&offsets);
        enc.put_u32_slice(&flat);
    };
    match adj {
        Adjacency::Lists(lists) => flatten_lists(enc, lists.len()),
        Adjacency::Csr {
            offsets,
            flat,
            overlay,
        } => {
            if overlay.iter().any(|l| !l.is_empty()) {
                // A live overlay sits on the frozen columns: flatten the
                // merged view so the bytes are identical to those of a
                // never-frozen graph with the same edges.
                flatten_lists(enc, offsets.len() - 1);
            } else {
                enc.put_u32_slice(offsets);
                let flat: Vec<u32> = flat.iter().map(|e| e.0).collect();
                enc.put_u32_slice(&flat);
            }
        }
    }
}

/// Reads CSR columns back as the frozen [`Adjacency::Csr`] form.
///
/// The two columns are validated and kept as-is — no per-vertex allocation
/// happens on the load path; the list-of-lists shape is only re-inflated if
/// the loaded graph is later mutated.
fn read_csr(
    dec: &mut SectionDecoder<'_>,
    n_lists: usize,
    n_edges: usize,
    what: &str,
) -> std::result::Result<Adjacency, SnapshotError> {
    let offsets = dec.get_u32_vec()?;
    let flat_col = dec.get_u32_column()?;
    if offsets.len() != n_lists + 1 || offsets.first() != Some(&0) {
        return Err(dec.corrupt(format!("{what} CSR offsets have the wrong shape")));
    }
    if *offsets.last().unwrap_or(&0) as usize != flat_col.len() {
        return Err(dec.corrupt(format!("{what} CSR offsets do not cover the edge column")));
    }
    if offsets.windows(2).any(|pair| pair[0] > pair[1]) {
        return Err(dec.corrupt(format!("{what} CSR offsets are not monotone")));
    }
    let n_edges = n_edges as u32;
    let mut flat = Vec::with_capacity(flat_col.len());
    for e in flat_col.iter() {
        if e >= n_edges {
            return Err(dec.corrupt(format!("{what} CSR refers to a nonexistent edge")));
        }
        flat.push(EdgeId(e));
    }
    Ok(Adjacency::Csr {
        offsets,
        flat,
        overlay: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the running-example graph of Fig. 1a in the paper.
    pub(crate) fn example_graph() -> DataGraph {
        let mut g = DataGraph::new();
        let triples = vec![
            Triple::typed("pro2URI", "Project"),
            Triple::typed("pro1URI", "Project"),
            Triple::attribute("pro1URI", "name", "X-Media"),
            Triple::typed("pub1URI", "Publication"),
            Triple::relation("pub1URI", "author", "re1URI"),
            Triple::relation("pub1URI", "author", "re2URI"),
            Triple::attribute("pub1URI", "year", "2006"),
            Triple::typed("pub2URI", "Publication"),
            Triple::typed("re1URI", "Researcher"),
            Triple::attribute("re1URI", "name", "Thanh Tran"),
            Triple::relation("re1URI", "worksAt", "inst1URI"),
            Triple::typed("re2URI", "Researcher"),
            Triple::attribute("re2URI", "name", "P. Cimiano"),
            Triple::relation("re2URI", "worksAt", "inst1URI"),
            Triple::typed("inst1URI", "Institute"),
            Triple::attribute("inst1URI", "name", "AIFB"),
            Triple::typed("inst2URI", "Institute"),
            Triple::subclass("Institute", "Agent"),
            Triple::subclass("Researcher", "Person"),
            Triple::subclass("Person", "Agent"),
            Triple::subclass("Agent", "Thing"),
        ];
        for t in &triples {
            g.insert_triple(t).unwrap();
        }
        g
    }

    #[test]
    fn vertices_are_partitioned_and_deduplicated() {
        let g = example_graph();
        assert_eq!(g.vertex_count_of_kind(VertexKind::Entity), 8);
        // Project, Publication, Researcher, Institute, Agent, Person, Thing
        assert_eq!(g.vertex_count_of_kind(VertexKind::Class), 7);
        // X-Media, 2006, Thanh Tran, P. Cimiano, AIFB
        assert_eq!(g.vertex_count_of_kind(VertexKind::Value), 5);
        assert_eq!(
            g.vertex_count(),
            g.vertex_count_of_kind(VertexKind::Entity)
                + g.vertex_count_of_kind(VertexKind::Class)
                + g.vertex_count_of_kind(VertexKind::Value)
        );
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut g = DataGraph::new();
        let t = Triple::relation("a", "knows", "b");
        let e1 = g.insert_triple(&t).unwrap();
        let e2 = g.insert_triple(&t).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn lookup_by_label_and_kind() {
        let g = example_graph();
        assert!(g.entity("pub1URI").is_some());
        assert!(g.class("Publication").is_some());
        assert!(g.value("2006").is_some());
        assert!(g.entity("Publication").is_none());
        assert!(g.class("pub1URI").is_none());
        assert_eq!(
            g.vertex_by_label("AIFB"),
            g.value("AIFB"),
            "vertex_by_label falls back to values"
        );
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = example_graph();
        let pub1 = g.entity("pub1URI").unwrap();
        // type Publication, author re1, author re2, year 2006
        assert_eq!(g.out_edges(pub1).len(), 4);
        assert_eq!(g.in_edges(pub1).len(), 0);
        let re1 = g.entity("re1URI").unwrap();
        // incoming author edge from pub1
        assert_eq!(g.in_edges(re1).len(), 1);
        assert_eq!(g.degree(re1), 1 + g.out_edges(re1).len());
        let neighbors = g.neighbors(re1);
        assert_eq!(neighbors.len(), g.degree(re1));
    }

    #[test]
    fn class_structure_queries() {
        let g = example_graph();
        let re1 = g.entity("re1URI").unwrap();
        let researcher = g.class("Researcher").unwrap();
        let person = g.class("Person").unwrap();
        assert_eq!(g.classes_of(re1), vec![researcher]);
        assert!(g.instances_of(researcher).contains(&re1));
        assert_eq!(g.superclasses_of(researcher), vec![person]);
        assert!(g.subclasses_of(person).contains(&researcher));
        assert!(!g.is_untyped_entity(re1));
    }

    #[test]
    fn untyped_entities_are_detected() {
        let mut g = DataGraph::new();
        g.insert_triple(&Triple::relation("a", "knows", "b"))
            .unwrap();
        let a = g.entity("a").unwrap();
        assert!(g.is_untyped_entity(a));
    }

    #[test]
    fn edge_kind_restrictions_are_enforced() {
        let mut g = DataGraph::new();
        let e = g.add_entity("e");
        let c = g.add_class("C");
        let v = g.add_value("42");
        let rel = EdgeLabel::Relation(g.intern("knows"));
        let attr = EdgeLabel::Attribute(g.intern("age"));

        // Valid edges.
        assert!(g.add_edge(e, EdgeLabel::Type, c).is_ok());
        assert!(g.add_edge(e, attr, v).is_ok());
        assert!(g.add_edge(c, EdgeLabel::SubClass, c).is_ok());

        // Invalid edges.
        assert!(g.add_edge(e, rel, v).is_err());
        assert!(g.add_edge(c, rel, e).is_err());
        assert!(g.add_edge(v, EdgeLabel::Type, c).is_err());
        assert!(g.add_edge(e, EdgeLabel::SubClass, c).is_err());
    }

    #[test]
    fn malformed_reserved_triples_are_rejected() {
        let mut g = DataGraph::new();
        let bad_type = Triple::new(Term::iri("x"), vocab::TYPE, Term::literal("C"));
        assert!(g.insert_triple(&bad_type).is_err());
        let bad_subclass = Triple::new(Term::iri("C"), vocab::SUBCLASS, Term::literal("D"));
        assert!(g.insert_triple(&bad_subclass).is_err());
    }

    #[test]
    fn edge_labels_named_distinguishes_reserved_labels() {
        let g = example_graph();
        assert_eq!(g.edge_labels_named("type").len(), 1);
        assert_eq!(g.edge_labels_named("subclass").len(), 1);
        assert_eq!(g.edge_labels_named("author").len(), 1);
        assert_eq!(g.edge_labels_named("name").len(), 1);
        assert!(g.edge_labels_named("unknown-label").is_empty());
    }

    #[test]
    fn triples_round_trip_through_export() {
        let g = example_graph();
        let triples = g.triples();
        assert_eq!(triples.len(), g.edge_count());
        let mut g2 = DataGraph::new();
        for t in &triples {
            g2.insert_triple(t).unwrap();
        }
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let mut a = g.triples();
        let mut b = g2.triples();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    fn snapshot_round_trip(g: &DataGraph) -> DataGraph {
        use crate::snapshot::{SnapshotReader, SnapshotWriter};
        let mut enc = SectionEncoder::new();
        g.write_snapshot(&mut enc);
        let mut writer = SnapshotWriter::new();
        writer.add_section(7, enc);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        let reader = SnapshotReader::read_from(bytes.as_slice()).unwrap();
        let mut dec = reader.section(7).unwrap();
        let loaded = DataGraph::read_snapshot(&mut dec).unwrap();
        dec.finish().unwrap();
        loaded
    }

    #[test]
    fn snapshot_preserves_structure_and_lookups() {
        let g = example_graph();
        let loaded = snapshot_round_trip(&g);
        assert_eq!(loaded.vertex_count(), g.vertex_count());
        assert_eq!(loaded.edge_count(), g.edge_count());
        assert_eq!(loaded.edge_label_count(), g.edge_label_count());
        for v in g.vertices() {
            assert_eq!(loaded.vertex(v), g.vertex(v));
            assert_eq!(loaded.vertex_label(v), g.vertex_label(v));
            assert_eq!(loaded.out_edges(v), g.out_edges(v));
            assert_eq!(loaded.in_edges(v), g.in_edges(v));
        }
        for e in g.edges() {
            assert_eq!(loaded.edge(e), g.edge(e));
        }
        assert_eq!(loaded.entity("pub1URI"), g.entity("pub1URI"));
        assert_eq!(loaded.class("Researcher"), g.class("Researcher"));
        assert_eq!(loaded.value("2006"), g.value("2006"));
        let mut a = g.triples();
        let mut b = loaded.triples();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn loaded_graph_still_deduplicates_edges() {
        let g = example_graph();
        let mut loaded = snapshot_round_trip(&g);
        // The lazy edge_set rebuild must kick in on the first mutation.
        let before = loaded.edge_count();
        loaded
            .insert_triple(&Triple::relation("pub1URI", "author", "re1URI"))
            .unwrap();
        assert_eq!(loaded.edge_count(), before);
        loaded
            .insert_triple(&Triple::relation("pub1URI", "cites", "pub2URI"))
            .unwrap();
        assert_eq!(loaded.edge_count(), before + 1);
    }

    #[test]
    fn mutating_a_loaded_graph_overlays_instead_of_inflating() {
        let g = example_graph();
        let mut loaded = snapshot_round_trip(&g);
        assert!(!loaded.has_adjacency_overlay());
        // New edge between existing vertices, a brand-new entity, and a new
        // value — all post-freeze mutations.
        loaded
            .insert_triple(&Triple::relation("pub1URI", "cites", "pub2URI"))
            .unwrap();
        loaded
            .insert_triple(&Triple::relation("pub3URI", "author", "re1URI"))
            .unwrap();
        loaded
            .insert_triple(&Triple::attribute("pub3URI", "year", "2009"))
            .unwrap();
        assert!(
            loaded.has_adjacency_overlay(),
            "live inserts must land in the overlay, not inflate the CSR"
        );

        // The merged view must equal a graph that saw every triple through
        // the plain insert path.
        let mut flat = DataGraph::new();
        for t in loaded.triples() {
            flat.insert_triple(&t).unwrap();
        }
        assert_eq!(flat.vertex_count(), loaded.vertex_count());
        assert_eq!(flat.edge_count(), loaded.edge_count());
        for v in loaded.vertices() {
            assert_eq!(loaded.out_edges(v), flat.out_edges(v));
            assert_eq!(loaded.in_edges(v), flat.in_edges(v));
            assert_eq!(loaded.degree(v), flat.degree(v));
            assert_eq!(loaded.neighbors(v), flat.neighbors(v));
        }

        // Snapshot bytes must not betray which physical form produced them.
        let overlaid_bytes = {
            let mut enc = SectionEncoder::new();
            loaded.write_snapshot(&mut enc);
            enc.into_bytes()
        };
        let flat_bytes = {
            let mut enc = SectionEncoder::new();
            flat.write_snapshot(&mut enc);
            enc.into_bytes()
        };
        assert_eq!(overlaid_bytes, flat_bytes);
    }

    #[test]
    fn insert_triple_ref_matches_insert_triple() {
        use crate::term::TermRef;
        use crate::triple::TripleRef;
        let owned = example_graph();
        let mut streamed = DataGraph::new();
        for t in owned.triples() {
            let object = match &t.object {
                Term::Iri(v) => TermRef::Iri(v),
                Term::Literal(v) => TermRef::Literal(v),
            };
            streamed
                .insert_triple_ref(&TripleRef {
                    subject: t.subject.value(),
                    predicate: &t.predicate,
                    object,
                })
                .unwrap();
        }
        assert_eq!(streamed.vertex_count(), owned.vertex_count());
        assert_eq!(streamed.edge_count(), owned.edge_count());
        for v in owned.vertices() {
            assert_eq!(streamed.vertex(v), owned.vertex(v));
        }
        for e in owned.edges() {
            assert_eq!(streamed.edge(e), owned.edge(e));
        }
    }

    #[test]
    fn edge_subset_preserves_the_id_space() {
        let g = example_graph();
        // Keep every second edge: ids, labels and lookups must keep working.
        let sub = g.edge_subset(|e, _| e.index() % 2 == 0);
        assert_eq!(sub.vertex_count(), g.vertex_count());
        assert_eq!(sub.edge_label_count(), g.edge_label_count());
        assert_eq!(sub.edge_count(), g.edge_count().div_ceil(2));
        for v in g.vertices() {
            assert_eq!(sub.vertex(v), g.vertex(v));
            assert_eq!(sub.vertex_label(v), g.vertex_label(v));
        }
        assert_eq!(sub.entity("pub1URI"), g.entity("pub1URI"));
        assert_eq!(sub.class("Researcher"), g.class("Researcher"));
        assert_eq!(sub.value("2006"), g.value("2006"));
        // Every kept edge carries the original endpoints and label id.
        let kept: Vec<Edge> = g
            .edges()
            .filter(|e| e.index() % 2 == 0)
            .map(|e| g.edge(e))
            .collect();
        let got: Vec<Edge> = sub.edges().map(|e| sub.edge(e)).collect();
        assert_eq!(got, kept, "kept edges preserve order and contents");
    }

    #[test]
    fn edge_subset_matches_a_graph_built_from_the_kept_triples() {
        // Adjacency order of a subset must equal the order of a graph into
        // which only the kept triples were inserted (per-vertex edge lists
        // filtered in place) — sharding depends on this for determinism.
        let g = example_graph();
        let sub = g.edge_subset(|_, edge| g.edge_label(edge.label) != EdgeLabel::SubClass);
        for v in g.vertices() {
            let want_out: Vec<Edge> = g
                .out_edges(v)
                .iter()
                .filter(|&&e| g.edge_label(g.edge(e).label) != EdgeLabel::SubClass)
                .map(|&e| g.edge(e))
                .collect();
            let got_out: Vec<Edge> = sub.out_edges(v).iter().map(|&e| sub.edge(e)).collect();
            assert_eq!(got_out, want_out);
            let want_in: Vec<Edge> = g
                .in_edges(v)
                .iter()
                .filter(|&&e| g.edge_label(g.edge(e).label) != EdgeLabel::SubClass)
                .map(|&e| g.edge(e))
                .collect();
            let got_in: Vec<Edge> = sub.in_edges(v).iter().map(|&e| sub.edge(e)).collect();
            assert_eq!(got_in, want_in);
        }
        // Class-structure queries keep working on the subset.
        let re1 = sub.entity("re1URI").unwrap();
        assert_eq!(sub.classes_of(re1), g.classes_of(re1));
        let researcher = sub.class("Researcher").unwrap();
        assert!(sub.superclasses_of(researcher).is_empty());
    }

    #[test]
    fn edge_subset_still_deduplicates_on_mutation() {
        let g = example_graph();
        let mut sub = g.edge_subset(|_, _| true);
        let before = sub.edge_count();
        sub.insert_triple(&Triple::relation("pub1URI", "author", "re1URI"))
            .unwrap();
        assert_eq!(sub.edge_count(), before, "subset keeps the dedup set");
    }

    #[test]
    fn shared_value_vertices_have_multiple_incoming_edges() {
        let mut g = DataGraph::new();
        g.insert_triple(&Triple::attribute("pub1", "year", "2006"))
            .unwrap();
        g.insert_triple(&Triple::attribute("pub2", "year", "2006"))
            .unwrap();
        let v = g.value("2006").unwrap();
        assert_eq!(g.in_edges(v).len(), 2);
    }
}
