//! Predefined vocabulary.
//!
//! The data graph of Definition 1 reserves two edge labels — `type` and
//! `subclass` — and the summary graph introduces the artificial class
//! `Thing` that aggregates all entities without an explicit type.

/// Predicate connecting an entity (E-vertex) to its class (C-vertex).
pub const TYPE: &str = "type";

/// Predicate connecting a class to its super-class.
pub const SUBCLASS: &str = "subclass";

/// Artificial top class that aggregates untyped entities in the summary
/// graph (`[[Thing]] = {v | no type(v, c) edge exists}`).
pub const THING: &str = "Thing";

/// Artificial value vertex label used when an A-edge itself (rather than a
/// concrete value) matches a keyword (Definition 5).
pub const VALUE: &str = "value";

/// Returns `true` if `predicate` is one of the reserved edge labels.
pub fn is_reserved_predicate(predicate: &str) -> bool {
    predicate == TYPE || predicate == SUBCLASS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_predicates_are_recognised() {
        assert!(is_reserved_predicate(TYPE));
        assert!(is_reserved_predicate(SUBCLASS));
        assert!(!is_reserved_predicate("author"));
        assert!(!is_reserved_predicate("Type"));
    }

    #[test]
    fn constants_have_expected_spelling() {
        assert_eq!(TYPE, "type");
        assert_eq!(SUBCLASS, "subclass");
        assert_eq!(THING, "Thing");
        assert_eq!(VALUE, "value");
    }
}
