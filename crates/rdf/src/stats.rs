//! Graph statistics.
//!
//! The evaluation section of the paper (Fig. 6b) relates index sizes to
//! structural properties of the datasets: the number of V-vertices drives
//! the keyword-index size, while the number of classes and edge labels
//! drives the graph-index size. [`GraphStats`] gathers exactly these
//! quantities, plus degree information used by the data generators' sanity
//! checks.

use std::collections::HashMap;

use crate::graph::{DataGraph, VertexKind};
use crate::triple::EdgeKind;

/// Structural statistics of a [`DataGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of E-vertices.
    pub entities: usize,
    /// Number of C-vertices.
    pub classes: usize,
    /// Number of V-vertices.
    pub values: usize,
    /// Number of R-edges.
    pub relation_edges: usize,
    /// Number of A-edges.
    pub attribute_edges: usize,
    /// Number of `type` edges.
    pub type_edges: usize,
    /// Number of `subclass` edges.
    pub subclass_edges: usize,
    /// Number of distinct relation labels.
    pub relation_labels: usize,
    /// Number of distinct attribute labels.
    pub attribute_labels: usize,
    /// Number of entities without any `type` edge.
    pub untyped_entities: usize,
    /// Maximum undirected vertex degree.
    pub max_degree: usize,
    /// Average undirected vertex degree.
    pub avg_degree: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &DataGraph) -> Self {
        let mut edge_kind_counts: HashMap<EdgeKind, usize> = HashMap::new();
        for e in graph.edges() {
            let label = graph.edge_label(graph.edge(e).label);
            *edge_kind_counts.entry(label.kind()).or_insert(0) += 1;
        }
        let mut relation_labels = 0usize;
        let mut attribute_labels = 0usize;
        for (_, label) in graph.edge_labels() {
            match label.kind() {
                EdgeKind::Relation => relation_labels += 1,
                EdgeKind::Attribute => attribute_labels += 1,
                _ => {}
            }
        }
        let untyped_entities = graph
            .vertices_of_kind(VertexKind::Entity)
            .filter(|&v| graph.is_untyped_entity(v))
            .count();
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        for v in graph.vertices() {
            let d = graph.degree(v);
            max_degree = max_degree.max(d);
            total_degree += d;
        }
        let avg_degree = if graph.vertex_count() == 0 {
            0.0
        } else {
            total_degree as f64 / graph.vertex_count() as f64
        };
        Self {
            entities: graph.vertex_count_of_kind(VertexKind::Entity),
            classes: graph.vertex_count_of_kind(VertexKind::Class),
            values: graph.vertex_count_of_kind(VertexKind::Value),
            relation_edges: edge_kind_counts
                .get(&EdgeKind::Relation)
                .copied()
                .unwrap_or(0),
            attribute_edges: edge_kind_counts
                .get(&EdgeKind::Attribute)
                .copied()
                .unwrap_or(0),
            type_edges: edge_kind_counts.get(&EdgeKind::Type).copied().unwrap_or(0),
            subclass_edges: edge_kind_counts
                .get(&EdgeKind::SubClass)
                .copied()
                .unwrap_or(0),
            relation_labels,
            attribute_labels,
            untyped_entities,
            max_degree,
            avg_degree,
        }
    }

    /// Total number of vertices.
    pub fn total_vertices(&self) -> usize {
        self.entities + self.classes + self.values
    }

    /// Total number of edges.
    pub fn total_edges(&self) -> usize {
        self.relation_edges + self.attribute_edges + self.type_edges + self.subclass_edges
    }

    /// Total number of triples (same as edges in this representation).
    pub fn total_triples(&self) -> usize {
        self.total_edges()
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "vertices: {} (E={}, C={}, V={})",
            self.total_vertices(),
            self.entities,
            self.classes,
            self.values
        )?;
        writeln!(
            f,
            "edges: {} (R={}, A={}, type={}, subclass={})",
            self.total_edges(),
            self.relation_edges,
            self.attribute_edges,
            self.type_edges,
            self.subclass_edges
        )?;
        writeln!(
            f,
            "labels: {} relation, {} attribute",
            self.relation_labels, self.attribute_labels
        )?;
        write!(
            f,
            "degree: max={}, avg={:.2}; untyped entities: {}",
            self.max_degree, self.avg_degree, self.untyped_entities
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;
    use crate::triple::Triple;

    #[test]
    fn figure1_statistics() {
        let g = figure1_graph();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.entities, 8);
        assert_eq!(stats.classes, 7);
        assert_eq!(stats.values, 7);
        assert_eq!(stats.subclass_edges, 4);
        assert_eq!(stats.type_edges, 8);
        assert_eq!(stats.relation_edges, 6);
        assert_eq!(stats.attribute_edges, 7);
        assert_eq!(stats.total_vertices(), g.vertex_count());
        assert_eq!(stats.total_edges(), g.edge_count());
        assert_eq!(stats.untyped_entities, 0);
        assert!(stats.max_degree >= 4);
        assert!(stats.avg_degree > 0.0);
    }

    #[test]
    fn label_counts() {
        let g = figure1_graph();
        let stats = GraphStats::compute(&g);
        // author, worksAt, hasProject
        assert_eq!(stats.relation_labels, 3);
        // name, year, title
        assert_eq!(stats.attribute_labels, 3);
    }

    #[test]
    fn empty_graph_statistics() {
        let stats = GraphStats::compute(&DataGraph::new());
        assert_eq!(stats.total_vertices(), 0);
        assert_eq!(stats.total_edges(), 0);
        assert_eq!(stats.avg_degree, 0.0);
    }

    #[test]
    fn untyped_entities_are_counted() {
        let mut g = DataGraph::new();
        g.insert_triple(&Triple::relation("a", "knows", "b"))
            .unwrap();
        g.insert_triple(&Triple::typed("a", "Person")).unwrap();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.untyped_entities, 1);
    }

    #[test]
    fn display_is_readable() {
        let g = figure1_graph();
        let text = GraphStats::compute(&g).to_string();
        assert!(text.contains("vertices"));
        assert!(text.contains("edges"));
        assert!(text.contains("degree"));
    }
}
