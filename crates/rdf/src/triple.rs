//! Triples and edge-kind classification.

use std::fmt;

use crate::term::{Term, TermRef};
use crate::vocab;

/// The four edge kinds of Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeKind {
    /// An R-edge: relation between two entities (`e ∈ L_R`).
    Relation,
    /// An A-edge: attribute assignment from an entity to a value (`e ∈ L_A`).
    Attribute,
    /// The predefined `type` edge from an entity to a class.
    Type,
    /// The predefined `subclass` edge between two classes.
    SubClass,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::Relation => "relation",
            EdgeKind::Attribute => "attribute",
            EdgeKind::Type => "type",
            EdgeKind::SubClass => "subclass",
        };
        f.write_str(s)
    }
}

/// An RDF triple `(subject, predicate, object)`.
///
/// The subject is always an IRI; the object may be an IRI (relation, type and
/// subclass triples) or a literal (attribute triples).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The subject term (always an IRI in well-formed data).
    pub subject: Term,
    /// The predicate label.
    pub predicate: String,
    /// The object term.
    pub object: Term,
}

impl Triple {
    /// Creates a triple.
    pub fn new(subject: Term, predicate: impl Into<String>, object: Term) -> Self {
        Self {
            subject,
            predicate: predicate.into(),
            object,
        }
    }

    /// Convenience constructor for a relation triple between two entities.
    pub fn relation(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Self {
        Self::new(Term::iri(subject), predicate, Term::iri(object))
    }

    /// Convenience constructor for an attribute triple.
    pub fn attribute(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        Self::new(Term::iri(subject), predicate, Term::literal(value))
    }

    /// Convenience constructor for a `type` triple.
    pub fn typed(subject: impl Into<String>, class: impl Into<String>) -> Self {
        Self::new(Term::iri(subject), vocab::TYPE, Term::iri(class))
    }

    /// Convenience constructor for a `subclass` triple.
    pub fn subclass(class: impl Into<String>, super_class: impl Into<String>) -> Self {
        Self::new(Term::iri(class), vocab::SUBCLASS, Term::iri(super_class))
    }

    /// Classifies the triple into one of the four edge kinds of Definition 1.
    ///
    /// * `type` and `subclass` predicates map to their dedicated kinds,
    /// * an IRI object yields a [`EdgeKind::Relation`],
    /// * a literal object yields an [`EdgeKind::Attribute`].
    pub fn edge_kind(&self) -> EdgeKind {
        if self.predicate == vocab::TYPE {
            EdgeKind::Type
        } else if self.predicate == vocab::SUBCLASS {
            EdgeKind::SubClass
        } else if self.object.is_literal() {
            EdgeKind::Attribute
        } else {
            EdgeKind::Relation
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <{}> {} .", self.subject, self.predicate, self.object)
    }
}

/// A borrowed view of a [`Triple`], produced by the streamed N-Triples
/// parser so a whole triple can be classified and interned without any
/// intermediate `String` allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleRef<'a> {
    /// The subject IRI.
    pub subject: &'a str,
    /// The predicate label.
    pub predicate: &'a str,
    /// The object term.
    pub object: TermRef<'a>,
}

impl<'a> TripleRef<'a> {
    /// Classifies the triple exactly like [`Triple::edge_kind`].
    pub fn edge_kind(&self) -> EdgeKind {
        if self.predicate == vocab::TYPE {
            EdgeKind::Type
        } else if self.predicate == vocab::SUBCLASS {
            EdgeKind::SubClass
        } else if self.object.is_literal() {
            EdgeKind::Attribute
        } else {
            EdgeKind::Relation
        }
    }

    /// Converts into an owning [`Triple`].
    pub fn to_triple(self) -> Triple {
        Triple::new(
            Term::iri(self.subject),
            self.predicate,
            self.object.to_term(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_definition_1() {
        assert_eq!(
            Triple::relation("pub1URI", "author", "re1URI").edge_kind(),
            EdgeKind::Relation
        );
        assert_eq!(
            Triple::attribute("pub1URI", "year", "2006").edge_kind(),
            EdgeKind::Attribute
        );
        assert_eq!(
            Triple::typed("pub1URI", "Publication").edge_kind(),
            EdgeKind::Type
        );
        assert_eq!(
            Triple::subclass("Researcher", "Person").edge_kind(),
            EdgeKind::SubClass
        );
    }

    #[test]
    fn type_predicate_wins_over_object_shape() {
        // Even if a `type` triple carries a literal object (malformed data),
        // classification is driven by the reserved predicate; the builder
        // rejects it later.
        let odd = Triple::new(Term::iri("x"), vocab::TYPE, Term::literal("Publication"));
        assert_eq!(odd.edge_kind(), EdgeKind::Type);
    }

    #[test]
    fn display_round_trips_through_parser_syntax() {
        let t = Triple::attribute("re2URI", "name", "P. Cimiano");
        assert_eq!(t.to_string(), "<re2URI> <name> \"P. Cimiano\" .");
        let t = Triple::relation("re2URI", "worksAt", "inst1URI");
        assert_eq!(t.to_string(), "<re2URI> <worksAt> <inst1URI> .");
    }

    #[test]
    fn edge_kind_display() {
        assert_eq!(EdgeKind::Relation.to_string(), "relation");
        assert_eq!(EdgeKind::Attribute.to_string(), "attribute");
        assert_eq!(EdgeKind::Type.to_string(), "type");
        assert_eq!(EdgeKind::SubClass.to_string(), "subclass");
    }
}
