//! RDF data-graph substrate for the SearchWebDB keyword-search system.
//!
//! This crate implements the *data graph* of Definition 1 in the paper
//! "Top-k Exploration of Query Candidates for Efficient Keyword Search on
//! Graph-Shaped (RDF) Data" (ICDE 2009):
//!
//! * vertices are partitioned into **E-vertices** (entities), **C-vertices**
//!   (classes) and **V-vertices** (data values),
//! * edges are partitioned into **R-edges** (relations between entities),
//!   **A-edges** (attribute assignments from an entity to a value), the
//!   predefined **`type`** edge (entity membership in a class) and the
//!   predefined **`subclass`** edge (class hierarchy).
//!
//! On top of the typed graph the crate provides
//!
//! * a compact string [`Interner`] shared by all labels,
//! * a [`GraphBuilder`] that ingests RDF triples and
//!   classifies them into the four edge kinds,
//! * an indexed [`TripleStore`] offering pattern scans
//!   (`(s?, p?, o?)`) used by the conjunctive-query evaluator,
//! * a line-oriented [N-Triples-like parser/serialiser](ntriples), and
//! * [graph statistics](stats) used by the evaluation harness.
//!
//! The crate is purely in-memory and has no third-party dependencies.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod error;
pub mod fixtures;
pub mod graph;
pub mod interner;
pub mod ntriples;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod term;
pub mod triple;
pub mod vocab;

pub use builder::GraphBuilder;
pub use error::RdfError;
pub use graph::{
    DataGraph, Edge, EdgeId, EdgeLabel, EdgeLabelId, EdgesRef, Vertex, VertexId, VertexKind,
};
pub use interner::{Interner, Symbol};
pub use ntriples::{ingest_ntriples, IngestStats};
pub use snapshot::{SectionDecoder, SectionEncoder, SnapshotError, SnapshotReader, SnapshotWriter};
pub use stats::GraphStats;
pub use store::{SpoRow, TriplePattern, TripleStore};
pub use term::{Term, TermRef};
pub use triple::{EdgeKind, Triple, TripleRef};

/// Convenience result type used throughout the crate.
pub type Result<T> = std::result::Result<T, RdfError>;
