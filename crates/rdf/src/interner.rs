//! String interning.
//!
//! Every label in a data graph (entity IRIs, class names, attribute values,
//! predicate names) is stored exactly once in an [`Interner`] and referred to
//! by a compact [`Symbol`]. Interning keeps the graph representation small
//! and makes label comparisons O(1), which matters because the exploration
//! algorithm compares labels in its inner loop.
//!
//! The representation is snapshot-friendly: all strings live in one
//! concatenated UTF-8 blob addressed by an offsets array, and deduplication
//! uses an open-addressing hash table of symbol ids. All three parts are
//! flat buffers, so a snapshot load is a bulk copy plus a single UTF-8
//! validation pass — no per-string allocation and no rehashing.

use crate::snapshot::{fnv1a64, SectionDecoder, SectionEncoder, SnapshotError};

/// A handle to an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] (and therefore the
/// [`DataGraph`](crate::DataGraph)) that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Numeric index of the symbol; useful for dense per-symbol tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Marks an empty slot in the probe table.
const EMPTY: u32 = u32::MAX;

/// Initial probe-table capacity (power of two).
const INITIAL_TABLE: usize = 16;

/// A deduplicating string table.
#[derive(Debug, Clone)]
pub struct Interner {
    /// All interned strings concatenated; `offsets` delimits them.
    bytes: String,
    /// `offsets[i]..offsets[i + 1]` is the byte range of symbol `i`;
    /// always has `len() + 1` entries starting with 0.
    offsets: Vec<u32>,
    /// Open-addressing probe table over symbol ids (`EMPTY` = free slot);
    /// capacity is a power of two.
    table: Vec<u32>,
}

impl Default for Interner {
    fn default() -> Self {
        Self {
            bytes: String::new(),
            offsets: vec![0],
            table: vec![EMPTY; INITIAL_TABLE],
        }
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn str_at(&self, idx: u32) -> &str {
        let start = self.offsets[idx as usize] as usize;
        let end = self.offsets[idx as usize + 1] as usize;
        &self.bytes[start..end]
    }

    /// Probes for `s`; returns either its symbol id or the free slot index
    /// where it would be inserted.
    #[inline]
    fn probe(&self, s: &str) -> Result<u32, usize> {
        let mask = self.table.len() - 1;
        let mut slot = fnv1a64(s.as_bytes()) as usize & mask;
        loop {
            match self.table[slot] {
                EMPTY => return Err(slot),
                idx => {
                    if self.str_at(idx) == s {
                        return Ok(idx);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns `s`, returning the existing symbol if it has been seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        match self.probe(s) {
            Ok(idx) => Symbol(idx),
            Err(slot) => {
                let idx = self.len() as u32;
                assert!(idx < EMPTY, "interner is full");
                assert!(
                    self.bytes.len() + s.len() <= u32::MAX as usize,
                    "interner blob exceeds u32 addressing"
                );
                self.bytes.push_str(s);
                self.offsets.push(self.bytes.len() as u32);
                self.table[slot] = idx;
                // Keep the load factor below ~0.7 so probes stay short.
                if (self.len() + 1) * 10 >= self.table.len() * 7 {
                    self.grow_table();
                }
                Symbol(idx)
            }
        }
    }

    fn grow_table(&mut self) {
        let new_cap = self.table.len() * 2;
        let mask = new_cap - 1;
        let mut table = vec![EMPTY; new_cap];
        for idx in 0..self.len() as u32 {
            let mut slot = fnv1a64(self.str_at(idx).as_bytes()) as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = idx;
        }
        self.table = table;
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.probe(s).ok().map(Symbol)
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol was produced by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.str_at(sym.0)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no strings have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(symbol, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        (0..self.len() as u32).map(|i| (Symbol(i), self.str_at(i)))
    }

    /// Approximate number of heap bytes used by the interner. Used by the
    /// index-size experiment (Fig. 6b).
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.table.len() * std::mem::size_of::<u32>()
    }

    /// Serialises the interner into a snapshot section: blob, offsets and
    /// probe table verbatim, so loading needs no rehashing.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        enc.put_str(&self.bytes);
        enc.put_u32_slice(&self.offsets);
        enc.put_u32_slice(&self.table);
    }

    /// Rebuilds an interner from [`Self::write_snapshot`] output.
    ///
    /// The blob is UTF-8 validated in one pass and every offset is checked to
    /// be a monotone char boundary; the probe table is taken verbatim.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        let bytes = dec.get_string()?;
        let offsets = dec.get_u32_vec()?;
        let table = dec.get_u32_vec()?;
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(dec.corrupt("interner offsets must start at 0"));
        }
        if offsets[offsets.len() - 1] as usize != bytes.len() {
            return Err(dec.corrupt("interner offsets do not cover the blob"));
        }
        let len = offsets.len() - 1;
        for pair in offsets.windows(2) {
            if pair[0] > pair[1] {
                return Err(dec.corrupt("interner offsets are not monotone"));
            }
        }
        for &off in &offsets {
            if !bytes.is_char_boundary(off as usize) {
                return Err(dec.corrupt("interner offset splits a UTF-8 character"));
            }
        }
        if !table.len().is_power_of_two() || table.len() < INITIAL_TABLE || table.len() <= len {
            return Err(dec.corrupt("interner probe table has an invalid capacity"));
        }
        let mut seen = 0usize;
        for &slot in &table {
            if slot != EMPTY {
                if slot as usize >= len {
                    return Err(dec.corrupt("interner probe table points past the string count"));
                }
                seen += 1;
            }
        }
        if seen != len {
            return Err(dec.corrupt("interner probe table does not cover every string"));
        }
        Ok(Self {
            bytes,
            offsets,
            table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SnapshotReader, SnapshotWriter};

    #[test]
    fn interning_deduplicates() {
        let mut interner = Interner::new();
        let a = interner.intern("publication");
        let b = interner.intern("author");
        let a2 = interner.intern("publication");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let labels = ["X-Media", "Thanh Tran", "2006", ""];
        let symbols: Vec<_> = labels.iter().map(|l| interner.intern(l)).collect();
        for (label, sym) in labels.iter().zip(symbols) {
            assert_eq!(interner.resolve(sym), *label);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = Interner::new();
        assert!(interner.get("missing").is_none());
        assert!(interner.is_empty());
        let sym = interner.intern("present");
        assert_eq!(interner.get("present"), Some(sym));
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut interner = Interner::new();
        interner.intern("a");
        interner.intern("b");
        interner.intern("c");
        let collected: Vec<_> = interner.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut small = Interner::new();
        small.intern("x");
        let mut large = Interner::new();
        for i in 0..100 {
            large.intern(&format!("some-longer-label-{i}"));
        }
        assert!(large.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn survives_table_growth() {
        let mut interner = Interner::new();
        let symbols: Vec<_> = (0..5_000)
            .map(|i| interner.intern(&format!("label-{i}")))
            .collect();
        for (i, sym) in symbols.iter().enumerate() {
            assert_eq!(interner.resolve(*sym), format!("label-{i}"));
            assert_eq!(interner.get(&format!("label-{i}")), Some(*sym));
        }
        assert_eq!(interner.len(), 5_000);
    }

    #[test]
    fn snapshot_round_trips_and_keeps_symbols() {
        let mut interner = Interner::new();
        let labels = ["publication", "", "Thanh Tran", "naïve-ütf8", "2009"];
        let symbols: Vec<_> = labels.iter().map(|l| interner.intern(l)).collect();

        let mut enc = SectionEncoder::new();
        interner.write_snapshot(&mut enc);
        let mut writer = SnapshotWriter::new();
        writer.add_section(1, enc);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();

        let reader = SnapshotReader::read_from(bytes.as_slice()).unwrap();
        let mut dec = reader.section(1).unwrap();
        let loaded = Interner::read_snapshot(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(loaded.len(), interner.len());
        for (label, sym) in labels.iter().zip(&symbols) {
            assert_eq!(loaded.resolve(*sym), *label);
            assert_eq!(loaded.get(label), Some(*sym));
        }
        // Interning into the loaded copy keeps deduplicating.
        let mut loaded = loaded;
        assert_eq!(loaded.intern("publication"), symbols[0]);
        let fresh = loaded.intern("brand-new");
        assert_eq!(fresh.index(), labels.len());
    }
}
