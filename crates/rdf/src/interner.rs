//! String interning.
//!
//! Every label in a data graph (entity IRIs, class names, attribute values,
//! predicate names) is stored exactly once in an [`Interner`] and referred to
//! by a compact [`Symbol`]. Interning keeps the graph representation small
//! and makes label comparisons O(1), which matters because the exploration
//! algorithm compares labels in its inner loop.

use std::collections::HashMap;

/// A handle to an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] (and therefore the
/// [`DataGraph`](crate::DataGraph)) that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Numeric index of the symbol; useful for dense per-symbol tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deduplicating string table.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if it has been seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol was produced by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over all `(symbol, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }

    /// Approximate number of heap bytes used by the interner. Used by the
    /// index-size experiment (Fig. 6b).
    pub fn heap_bytes(&self) -> usize {
        let string_bytes: usize = self.strings.iter().map(|s| s.len()).sum();
        // Each entry is stored twice (vec + map key) plus map/vec overhead.
        2 * string_bytes
            + self.strings.len() * std::mem::size_of::<Box<str>>()
            + self.map.len() * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<Symbol>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut interner = Interner::new();
        let a = interner.intern("publication");
        let b = interner.intern("author");
        let a2 = interner.intern("publication");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let labels = ["X-Media", "Thanh Tran", "2006", ""];
        let symbols: Vec<_> = labels.iter().map(|l| interner.intern(l)).collect();
        for (label, sym) in labels.iter().zip(symbols) {
            assert_eq!(interner.resolve(sym), *label);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = Interner::new();
        assert!(interner.get("missing").is_none());
        assert!(interner.is_empty());
        let sym = interner.intern("present");
        assert_eq!(interner.get("present"), Some(sym));
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut interner = Interner::new();
        interner.intern("a");
        interner.intern("b");
        interner.intern("c");
        let collected: Vec<_> = interner.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut small = Interner::new();
        small.intern("x");
        let mut large = Interner::new();
        for i in 0..100 {
            large.intern(&format!("some-longer-label-{i}"));
        }
        assert!(large.heap_bytes() > small.heap_bytes());
    }
}
