//! Small, well-known example graphs.
//!
//! These fixtures are compiled into the library (not only into tests) so
//! that downstream crates, integration tests, examples and documentation can
//! all share the paper's running example.

use crate::graph::DataGraph;
use crate::triple::Triple;

/// The triples of the running example of the paper (Fig. 1a): publications,
/// researchers, projects and institutes.
pub fn figure1_triples() -> Vec<Triple> {
    vec![
        Triple::typed("pro2URI", "Project"),
        Triple::typed("pro1URI", "Project"),
        Triple::attribute("pro1URI", "name", "X-Media"),
        Triple::relation("pub1URI", "hasProject", "pro1URI"),
        Triple::typed("pub1URI", "Publication"),
        Triple::attribute("pub1URI", "title", "Top-k Exploration of Query Candidates"),
        Triple::relation("pub1URI", "author", "re1URI"),
        Triple::relation("pub1URI", "author", "re2URI"),
        Triple::attribute("pub1URI", "year", "2006"),
        Triple::typed("pub2URI", "Publication"),
        Triple::attribute("pub2URI", "year", "2008"),
        Triple::relation("pub2URI", "author", "re1URI"),
        Triple::typed("re1URI", "Researcher"),
        Triple::attribute("re1URI", "name", "Thanh Tran"),
        Triple::relation("re1URI", "worksAt", "inst1URI"),
        Triple::typed("re2URI", "Researcher"),
        Triple::attribute("re2URI", "name", "P. Cimiano"),
        Triple::relation("re2URI", "worksAt", "inst1URI"),
        Triple::typed("inst1URI", "Institute"),
        Triple::attribute("inst1URI", "name", "AIFB"),
        Triple::typed("inst2URI", "Institute"),
        Triple::subclass("Institute", "Agent"),
        Triple::subclass("Researcher", "Person"),
        Triple::subclass("Person", "Agent"),
        Triple::subclass("Agent", "Thing"),
    ]
}

/// The running-example data graph of Fig. 1a.
pub fn figure1_graph() -> DataGraph {
    let mut g = DataGraph::new();
    for t in &figure1_triples() {
        g.insert_triple(t)
            // lint: allow(no-unwrap, reason = "the fixture triples are a hard-coded constant vetted by the tests in this module")
            .expect("the figure-1 fixture contains only well-formed triples");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;

    #[test]
    fn figure1_graph_builds() {
        let g = figure1_graph();
        assert!(g.vertex_count_of_kind(VertexKind::Entity) >= 8);
        assert!(g.class("Publication").is_some());
        assert!(g.value("AIFB").is_some());
        assert!(g.edge_count() >= figure1_triples().len() - 1);
    }

    #[test]
    fn figure1_contains_the_example_query_ingredients() {
        // The worked example in the paper maps the keywords
        // "2006 cimiano aifb" onto the year value, the researcher name and
        // the institute name.
        let g = figure1_graph();
        assert!(g.value("2006").is_some());
        assert!(g.value("P. Cimiano").is_some());
        assert!(g.value("AIFB").is_some());
        assert!(g.entity("pub1URI").is_some());
    }
}
