//! The versioned binary snapshot container and its flat-buffer codec.
//!
//! Every index structure of the engine (interner, data graph, triple store,
//! keyword index, summary graph) can persist itself into a **section** of a
//! snapshot file, so that a prepared engine cold-starts in time proportional
//! to bytes on disk instead of corpus size. The format is deliberately
//! hand-rolled over `std` only (the workspace has no serde/memmap):
//!
//! ```text
//! +----------------------------+
//! | magic  "KWSNAP\r\n"  (8 B) |   catches text-mode/CRLF mangling, like PNG
//! | format version   (u32 LE)  |
//! | section count    (u32 LE)  |
//! +----------------------------+
//! | section table: per section |
//! |   id       (u32 LE)        |
//! |   length   (u64 LE)        |
//! |   checksum (u64 LE)        |
//! +----------------------------+
//! | section payloads, in table |
//! | order, concatenated        |
//! +----------------------------+
//! ```
//!
//! Section payloads are sequences of little-endian scalars and
//! **length-prefixed flat buffers** (`u64` element count followed by the raw
//! little-endian element bytes). Loading a flat buffer is a bounds check
//! plus one bulk copy — no per-element parsing — which is what makes
//! snapshot loads O(bytes).
//!
//! Integrity: every section carries a 64-bit checksum ([`checksum64`], a
//! four-lane word-wide FNV-1a variant) that is verified **before** any of
//! its bytes are parsed, so corrupt data can never build a partial
//! structure; all failures surface as the typed [`SnapshotError`].

use std::fmt;
use std::io::{self, Read, Write};

/// The 8-byte magic at offset 0 of every snapshot.
pub const MAGIC: [u8; 8] = *b"KWSNAP\r\n";

/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound on the section count (a snapshot has a handful of sections;
/// anything larger is a corrupt header, not a bigger snapshot).
const MAX_SECTIONS: u32 = 1024;

/// Errors produced while writing or reading snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`] — it is not a snapshot.
    BadMagic,
    /// The container was written by a newer (or otherwise unknown) format
    /// version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file ends before the advertised data does.
    Truncated,
    /// A section's payload does not match its table checksum.
    ChecksumMismatch {
        /// Id of the corrupt section.
        section: u32,
    },
    /// A section's checksum matched but its contents are structurally
    /// invalid (internal inconsistency, bad enum tag, invalid UTF-8, …).
    Corrupt {
        /// Id of the offending section.
        section: u32,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A section required by the loader is absent.
    MissingSection {
        /// Id of the absent section.
        section: u32,
    },
    /// A multi-snapshot set (e.g. a sharded index directory) is missing
    /// its manifest or disagrees with it — the set cannot be proven
    /// complete, so loading a silent subset is refused.
    BadManifest {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// An underlying I/O failure (other than a clean truncation).
    Io(io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a kwsearch snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot section {section}")
            }
            SnapshotError::Corrupt { section, detail } => {
                write!(f, "corrupt snapshot section {section}: {detail}")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            SnapshotError::BadManifest { detail } => {
                write!(f, "bad snapshot-set manifest: {detail}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated
        } else {
            SnapshotError::Io(e)
        }
    }
}

/// FNV-1a 64-bit hash — the interner's table hash (byte-serial; the inputs
/// are short strings, where the setup cost of the wide variant would lose).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Whether snapshot load paths should fan work out to helper threads.
///
/// On a single-core host the scoped-thread paths are strictly worse: the
/// work serialises anyway, and each helper thread allocates from a fresh
/// malloc arena instead of the warmed main-thread heap, turning the bulk
/// loads into page-fault storms (measured ~7x slower at 10⁶-triple scale).
/// Every parallel decode path checks this and falls back to its serial
/// twin; both produce identical structures.
pub fn parallel_load() -> bool {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        > 1
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// The section checksum: four independent FNV-1a lanes over interleaved
/// 8-byte words, folded together with the length at the end.
///
/// Section payloads run to tens of megabytes, and the byte-serial FNV loop
/// is a single loop-carried multiply chain — ~5 cycles *per byte*, which
/// made checksum verification the single largest cost of a snapshot load.
/// Four lanes of word-wide mixing break the dependency chain and process
/// 32 bytes per iteration while keeping the same multiply-xor error
/// detection; mixing in the length guards against trailing truncation of a
/// lane-aligned payload.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut lanes = [
        FNV_OFFSET ^ 1,
        FNV_OFFSET ^ 2,
        FNV_OFFSET ^ 3,
        FNV_OFFSET ^ 4,
    ];
    let mut chunks = bytes.chunks_exact(32);
    for block in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = (*lane ^ le_u64(&block[i * 8..])).wrapping_mul(FNV_PRIME);
        }
    }
    let mut hash = FNV_OFFSET;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash ^ bytes.len() as u64
}

// ---------------------------------------------------------------------
// Section payload encoding
// ---------------------------------------------------------------------

/// Append-only encoder for one section payload.
#[derive(Debug, Default)]
pub struct SectionEncoder {
    buf: Vec<u8>,
}

impl SectionEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed flat `u32` buffer.
    pub fn put_u32_slice(&mut self, s: &[u32]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed flat `u64` buffer.
    pub fn put_u64_slice(&mut self, s: &[u64]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed raw byte buffer.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor over one checksum-verified section payload.
#[derive(Debug)]
pub struct SectionDecoder<'a> {
    section: u32,
    buf: &'a [u8],
}

impl<'a> SectionDecoder<'a> {
    /// Wraps a verified payload; `section` is used in error reports.
    pub fn new(section: u32, buf: &'a [u8]) -> Self {
        Self { section, buf }
    }

    /// Builds a [`SnapshotError::Corrupt`] for this section.
    pub fn corrupt(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            section: self.section,
            detail: detail.into(),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() < n {
            return Err(self.corrupt(format!(
                "payload ends early: wanted {n} bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn get_len(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let len = self.get_u64()?;
        let len = usize::try_from(len).map_err(|_| self.corrupt("length overflows usize"))?;
        // The length is validated against the bytes actually present before
        // any allocation, so a corrupt length cannot trigger a huge alloc.
        if len
            .checked_mul(elem_size)
            .is_none_or(|b| b > self.buf.len())
        {
            return Err(self.corrupt(format!(
                "buffer length {len} exceeds the {} bytes left in the section",
                self.buf.len()
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed flat `u32` buffer as a zero-copy view into
    /// the section payload. Use this for columns that are only *iterated*
    /// during a load (validation passes, struct-of-arrays re-packing) — it
    /// skips the intermediate `Vec` that [`Self::get_u32_vec`] would
    /// allocate and touch, which matters at 10⁶-row column sizes.
    pub fn get_u32_column(&mut self) -> Result<U32Column<'a>, SnapshotError> {
        let len = self.get_len(4)?;
        Ok(U32Column {
            raw: self.take(len * 4)?,
        })
    }

    /// Reads a length-prefixed flat `u32` buffer with one bulk copy.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.get_len(4)?;
        let raw = self.take(len * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Reads a length-prefixed flat `u64` buffer with one bulk copy.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.get_len(8)?;
        let raw = self.take(len * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Reads a length-prefixed raw byte buffer.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string (validated once, in bulk).
    pub fn get_string(&mut self) -> Result<String, SnapshotError> {
        let raw = self.get_bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|e| self.corrupt(format!("invalid UTF-8 in string: {e}")))
    }

    /// Asserts that the payload was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing bytes", self.buf.len())))
        }
    }
}

/// A borrowed little-endian `u32` column inside a section payload.
///
/// Decoding is deferred to iteration, so a column that is consumed exactly
/// once (the common load pattern) never materialises as a `Vec<u32>`.
#[derive(Debug, Clone, Copy)]
pub struct U32Column<'a> {
    raw: &'a [u8],
}

impl<'a> U32Column<'a> {
    /// Number of `u32` elements in the column.
    pub fn len(&self) -> usize {
        self.raw.len() / 4
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Iterates the elements, decoding each from its little-endian bytes.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u32> + 'a {
        self.raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }
}

// ---------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------

/// Accumulates sections and writes the framed container.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a section; sections are written in insertion order.
    pub fn add_section(&mut self, id: u32, payload: SectionEncoder) {
        self.sections.push((id, payload.into_bytes()));
    }

    /// Writes magic, version, section table and payloads.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), SnapshotError> {
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for (id, payload) in &self.sections {
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(&checksum64(payload).to_le_bytes())?;
        }
        for (_, payload) in &self.sections {
            w.write_all(payload)?;
        }
        w.flush()?;
        Ok(())
    }
}

/// Reads and checksum-verifies a framed container.
#[derive(Debug)]
pub struct SnapshotReader {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotReader {
    /// Reads the whole container, verifying magic, version and every
    /// section checksum before returning. No payload byte is interpreted
    /// until its checksum has matched.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let count = read_u32(&mut r)?;
        if count > MAX_SECTIONS {
            return Err(SnapshotError::Corrupt {
                section: 0,
                detail: format!("implausible section count {count}"),
            });
        }
        let mut table = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = read_u32(&mut r)?;
            let len = read_u64(&mut r)?;
            let checksum = read_u64(&mut r)?;
            table.push((id, len, checksum));
        }
        let mut sections = Vec::with_capacity(table.len());
        for &(id, len, _) in &table {
            // `take` + `read_to_end` grows with the data actually present,
            // so a corrupt huge length yields `Truncated`, not a huge alloc.
            let mut payload = Vec::new();
            let got = r.by_ref().take(len).read_to_end(&mut payload)?;
            if got as u64 != len {
                return Err(SnapshotError::Truncated);
            }
            sections.push((id, payload));
        }
        // The payloads are in memory now; verify their checksums — in
        // parallel on multicore hosts (still before a single payload byte
        // is *parsed*: the integrity guarantee is the ordering of verify
        // vs. parse, not of the verifications among themselves). On a
        // mismatch the first failing section in file order is reported,
        // identically on both paths.
        let failed = if parallel_load() {
            std::thread::scope(|scope| {
                let handles: Vec<_> = sections
                    .iter()
                    .zip(&table)
                    .map(|((id, payload), &(_, _, checksum))| {
                        scope.spawn(move || {
                            if checksum64(payload) != checksum {
                                Some(*id)
                            } else {
                                None
                            }
                        })
                    })
                    .collect();
                let mut failed = None;
                for handle in handles {
                    match handle.join() {
                        Ok(Some(id)) => failed = failed.or(Some(id)),
                        Ok(None) => {}
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                failed
            })
        } else {
            sections
                .iter()
                .zip(&table)
                .find(|((_, payload), &(_, _, checksum))| checksum64(payload) != checksum)
                .map(|((id, _), _)| *id)
        };
        if let Some(section) = failed {
            return Err(SnapshotError::ChecksumMismatch { section });
        }
        Ok(Self { sections })
    }

    /// A decoder over the payload of section `id`.
    pub fn section(&self, id: u32) -> Result<SectionDecoder<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, payload)| SectionDecoder::new(id, payload))
            .ok_or(SnapshotError::MissingSection { section: id })
    }

    /// Ids of the sections present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|(id, _)| *id).collect()
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(sections: Vec<(u32, SectionEncoder)>) -> SnapshotReader {
        let mut writer = SnapshotWriter::new();
        for (id, enc) in sections {
            writer.add_section(id, enc);
        }
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        SnapshotReader::read_from(bytes.as_slice()).unwrap()
    }

    #[test]
    fn scalars_and_buffers_round_trip() {
        let mut enc = SectionEncoder::new();
        enc.put_u32(7);
        enc.put_u64(u64::MAX - 1);
        enc.put_f64(-0.125);
        enc.put_u32_slice(&[1, 2, 3]);
        enc.put_u64_slice(&[u64::MAX]);
        enc.put_str("héllo");
        enc.put_bytes(&[0xde, 0xad]);
        let reader = round_trip(vec![(42, enc)]);
        let mut dec = reader.section(42).unwrap();
        assert_eq!(dec.get_u32().unwrap(), 7);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.get_f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert_eq!(dec.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.get_u64_vec().unwrap(), vec![u64::MAX]);
        assert_eq!(dec.get_string().unwrap(), "héllo");
        assert_eq!(dec.get_bytes().unwrap(), &[0xde, 0xad]);
        dec.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_detected() {
        let err = SnapshotReader::read_from(&b"NOTASNAP.........."[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic), "{err:?}");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = Vec::new();
        SnapshotWriter::new().write_to(&mut bytes).unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = SnapshotReader::read_from(bytes.as_slice()).unwrap_err();
        match err {
            SnapshotError::UnsupportedVersion { found } => {
                assert_eq!(found, FORMAT_VERSION + 1)
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut enc = SectionEncoder::new();
        enc.put_u32_slice(&[1, 2, 3, 4]);
        let mut writer = SnapshotWriter::new();
        writer.add_section(1, enc);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, 4] {
            let err = SnapshotReader::read_from(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut enc = SectionEncoder::new();
        enc.put_u32_slice(&[9, 9, 9]);
        let mut writer = SnapshotWriter::new();
        writer.add_section(5, enc);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = SnapshotReader::read_from(bytes.as_slice()).unwrap_err();
        match err {
            SnapshotError::ChecksumMismatch { section } => assert_eq!(section, 5),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let reader = round_trip(vec![(1, SectionEncoder::new())]);
        assert!(matches!(
            reader.section(2).unwrap_err(),
            SnapshotError::MissingSection { section: 2 }
        ));
    }

    #[test]
    fn corrupt_length_prefix_cannot_over_allocate() {
        let mut enc = SectionEncoder::new();
        enc.put_u64(u64::MAX); // a length prefix with no data behind it
        let reader = round_trip(vec![(3, enc)]);
        let mut dec = reader.section(3).unwrap();
        assert!(matches!(
            dec.get_u32_vec().unwrap_err(),
            SnapshotError::Corrupt { section: 3, .. }
        ));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn checksum64_detects_flips_and_truncation() {
        // A buffer long enough to exercise the 32-byte lanes and the
        // byte-serial remainder.
        let data: Vec<u8> = (0..137u32).map(|i| (i * 31) as u8).collect();
        let reference = checksum64(&data);
        for i in 0..data.len() {
            for bit in [0x01u8, 0x80] {
                let mut flipped = data.clone();
                flipped[i] ^= bit;
                assert_ne!(checksum64(&flipped), reference, "flip at byte {i}");
            }
        }
        // Truncation at every prefix length — including lane-aligned ones,
        // which is what the length mix-in protects.
        for len in 0..data.len() {
            assert_ne!(checksum64(&data[..len]), reference, "truncated to {len}");
        }
    }
}
