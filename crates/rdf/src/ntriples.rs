//! A line-oriented, N-Triples-like serialisation.
//!
//! Each line holds one triple:
//!
//! ```text
//! <pub1URI> <author> <re1URI> .
//! <pub1URI> <year> "2006" .
//! # comments and blank lines are ignored
//! ```
//!
//! IRIs are written in angle brackets, literals in double quotes with `\"`
//! and `\\` escapes. This is deliberately a small subset of W3C N-Triples —
//! enough to persist and exchange the generated datasets and the paper's
//! running example.
//!
//! Two API layers exist:
//!
//! * the owning layer ([`parse_line`], [`parse_document`], [`write_document`])
//!   trades allocations for convenience, and
//! * the **streamed layer** ([`parse_line_ref`], [`ingest_ntriples`],
//!   [`write_graph_to`]) parses borrowed [`TripleRef`]s with a reused
//!   scratch buffer and inserts them into a [`DataGraph`] without ever
//!   materialising the whole document or an owned `Triple` — this is the
//!   ingest path for the 10⁶–10⁷ triple tiers.

use std::io::{self, BufRead, Write};

use crate::error::RdfError;
use crate::graph::{DataGraph, EdgeLabel};
use crate::term::{Term, TermRef};
use crate::triple::{Triple, TripleRef};
use crate::Result;

/// Serialises a single triple to one line (without trailing newline).
pub fn write_triple(triple: &Triple) -> String {
    format!(
        "{} <{}> {} .",
        write_term(&triple.subject),
        triple.predicate,
        write_term(&triple.object)
    )
}

fn write_term(term: &Term) -> String {
    match term {
        Term::Iri(v) => format!("<{v}>"),
        Term::Literal(v) => format!("\"{}\"", escape_literal(v)),
    }
}

fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Streaming unescape into a caller-provided buffer; the inverse of
/// [`escape_literal`] without the intermediate `String`.
// lint: hot-path
fn unescape_into(s: &str, out: &mut String) {
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
}

/// Serialises a whole document (one line per triple).
pub fn write_document(triples: &[Triple]) -> String {
    let mut out = String::new();
    for t in triples {
        out.push_str(&write_triple(t));
        out.push('\n');
    }
    out
}

/// Serialises all edges of a data graph into one in-memory `String`.
///
/// For large graphs prefer [`write_graph_to`], which streams to any writer
/// without materialising the triples.
pub fn write_graph(graph: &DataGraph) -> String {
    write_document(&graph.triples())
}

/// Writes `s` with `"`/`\`/newline escaping, copying unescaped runs in bulk.
fn write_escaped<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let mut rest = s;
    while let Some(i) = rest.find(['"', '\\', '\n']) {
        w.write_all(&rest.as_bytes()[..i])?;
        match rest.as_bytes()[i] {
            b'"' => w.write_all(b"\\\"")?,
            b'\\' => w.write_all(b"\\\\")?,
            _ => w.write_all(b"\\n")?,
        }
        rest = &rest[i + 1..];
    }
    w.write_all(rest.as_bytes())
}

/// Streams all edges of a data graph as N-Triples lines to `w` without
/// materialising the triples or any per-line `String`.
///
/// Wrap `w` in a `BufWriter` when writing to a file.
pub fn write_graph_to<W: Write>(graph: &DataGraph, w: &mut W) -> io::Result<()> {
    for e in graph.edges() {
        let edge = graph.edge(e);
        w.write_all(b"<")?;
        w.write_all(graph.vertex_label(edge.from).as_bytes())?;
        w.write_all(b"> <")?;
        w.write_all(graph.edge_label_name(edge.label).as_bytes())?;
        w.write_all(b"> ")?;
        if matches!(graph.edge_label(edge.label), EdgeLabel::Attribute(_)) {
            w.write_all(b"\"")?;
            write_escaped(w, graph.vertex_label(edge.to))?;
            w.write_all(b"\" .\n")?;
        } else {
            w.write_all(b"<")?;
            w.write_all(graph.vertex_label(edge.to).as_bytes())?;
            w.write_all(b"> .\n")?;
        }
    }
    Ok(())
}

/// A parsed term that still borrows the input line; literals remember
/// whether they contain escapes so unescaping can be skipped on the
/// (overwhelmingly common) clean path.
enum RawTerm<'a> {
    Iri(&'a str),
    Literal { raw: &'a str, escaped: bool },
}

struct Cursor<'a> {
    line: &'a str,
    pos: usize,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    fn error(&self, message: impl Into<String>) -> RdfError {
        RdfError::Parse {
            line: self.line_no,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.line.len() && self.line.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.line.as_bytes().get(self.pos).copied()
    }

    /// Parses one term without allocating: IRIs and literals are returned
    /// as slices of the input line.
    // lint: hot-path
    fn parse_term_raw(&mut self) -> Result<RawTerm<'a>> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                let end = self.line[self.pos..]
                    .find('>')
                    .map(|i| self.pos + i)
                    .ok_or_else(|| self.error("unterminated IRI"))?;
                let iri = &self.line[self.pos + 1..end];
                self.pos = end + 1;
                Ok(RawTerm::Iri(iri))
            }
            Some(b'"') => {
                // Scan for the closing unescaped quote.
                let bytes = self.line.as_bytes();
                let mut i = self.pos + 1;
                let mut escaped = false;
                let mut any_escape = false;
                while i < bytes.len() {
                    let b = bytes[i];
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                        any_escape = true;
                    } else if b == b'"' {
                        break;
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(self.error("unterminated literal"));
                }
                let raw = &self.line[self.pos + 1..i];
                self.pos = i + 1;
                Ok(RawTerm::Literal {
                    raw,
                    escaped: any_escape,
                })
            }
            Some(_) => Err(self.error("expected `<` or `\"` at start of term")),
            None => Err(self.error("unexpected end of line")),
        }
    }

    fn expect_dot(&mut self) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.skip_ws();
            if self.pos == self.line.len() {
                Ok(())
            } else {
                Err(self.error("trailing content after `.`"))
            }
        } else {
            Err(self.error("expected terminating `.`"))
        }
    }
}

/// Parses one line into a borrowed [`TripleRef`] without allocating.
///
/// Returns `Ok(None)` for blank lines and comments. `scratch` is only
/// written when the object literal contains escape sequences; reusing one
/// buffer across lines is what removes the per-line allocation churn of the
/// owning parser.
// lint: hot-path
pub fn parse_line_ref<'a>(
    line: &'a str,
    line_no: usize,
    scratch: &'a mut String,
) -> Result<Option<TripleRef<'a>>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut cursor = Cursor {
        line: trimmed,
        pos: 0,
        line_no,
    };
    let subject = match cursor.parse_term_raw()? {
        RawTerm::Iri(s) => s,
        RawTerm::Literal { .. } => return Err(cursor.error("subject must be an IRI")),
    };
    let predicate = match cursor.parse_term_raw()? {
        RawTerm::Iri(p) => p,
        RawTerm::Literal { .. } => return Err(cursor.error("predicate must be an IRI")),
    };
    let object = match cursor.parse_term_raw()? {
        RawTerm::Iri(o) => TermRef::Iri(o),
        RawTerm::Literal { raw, escaped } => {
            if escaped {
                scratch.clear();
                unescape_into(raw, &mut *scratch);
                TermRef::Literal(&scratch[..])
            } else {
                TermRef::Literal(raw)
            }
        }
    };
    cursor.expect_dot()?;
    Ok(Some(TripleRef {
        subject,
        predicate,
        object,
    }))
}

/// Parses one line into an owned triple. Returns `Ok(None)` for blank lines
/// and comments.
pub fn parse_line(line: &str, line_no: usize) -> Result<Option<Triple>> {
    let mut scratch = String::new();
    Ok(parse_line_ref(line, line_no, &mut scratch)?.map(TripleRef::to_triple))
}

/// Parses a whole document into owned triples.
pub fn parse_document(input: &str) -> Result<Vec<Triple>> {
    let mut triples = Vec::new();
    let mut scratch = String::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(t) = parse_line_ref(line, i + 1, &mut scratch)? {
            triples.push(t.to_triple());
        }
    }
    Ok(triples)
}

/// Attaches the offending line number to a graph-insertion error.
///
/// A line can parse cleanly and still be rejected by the graph's typing
/// rules (Definition 1) — e.g. a `type` predicate with a literal object.
/// Those classification errors come out of [`DataGraph::insert_triple_ref`]
/// without positional context; the ingest paths wrap them so every
/// per-line failure reports the line it came from, exactly like syntax
/// errors do.
fn insert_error_at_line(err: RdfError, line_no: usize) -> RdfError {
    match err {
        // Already positioned (cannot currently come out of insertion, but
        // never double-wrap).
        err @ RdfError::Parse { .. } => err,
        other => RdfError::Parse {
            line: line_no,
            message: other.to_string(),
        },
    }
}

/// Parses a document directly into a [`DataGraph`] over the streamed,
/// allocation-free path.
pub fn parse_graph(input: &str) -> Result<DataGraph> {
    let mut graph = DataGraph::new();
    let mut scratch = String::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(t) = parse_line_ref(line, i + 1, &mut scratch)? {
            graph
                .insert_triple_ref(&t)
                .map_err(|e| insert_error_at_line(e, i + 1))?;
        }
    }
    Ok(graph)
}

/// Counters reported by [`ingest_ntriples`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Total lines read (including comments and blank lines).
    pub lines: usize,
    /// Triples inserted into the graph.
    pub triples: usize,
}

/// Streams N-Triples from any `BufRead` source straight into a
/// [`DataGraph`].
///
/// The document is never materialised: one line buffer and one literal
/// scratch buffer are reused for the whole stream, and each triple is
/// classified and interned via the borrowed [`DataGraph::insert_triple_ref`]
/// path. The resulting graph is bit-identical to one built by parsing the
/// same document with [`parse_graph`] or inserting owned [`Triple`]s in the
/// same order.
pub fn ingest_ntriples<R: BufRead>(mut reader: R, graph: &mut DataGraph) -> Result<IngestStats> {
    let mut line = String::new();
    let mut scratch = String::new();
    let mut stats = IngestStats::default();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        stats.lines += 1;
        if let Some(t) = parse_line_ref(&line, stats.lines, &mut scratch)? {
            graph
                .insert_triple_ref(&t)
                .map_err(|e| insert_error_at_line(e, stats.lines))?;
            stats.triples += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_triples;

    #[test]
    fn single_triple_round_trip() {
        let t = Triple::attribute("re2URI", "name", "P. Cimiano");
        let line = write_triple(&t);
        let parsed = parse_line(&line, 1).unwrap().unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn literal_escaping_round_trip() {
        let original = Triple::attribute(
            "p",
            "title",
            "A \"quoted\" title \\ with backslash\nand newline",
        );
        let line = write_triple(&original);
        let parsed = parse_line(&line, 1).unwrap().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let doc = "# a comment\n\n<s> <p> <o> .\n   \n# another\n";
        let triples = parse_document(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0], Triple::relation("s", "p", "o"));
    }

    #[test]
    fn document_round_trip_preserves_all_triples() {
        let triples = figure1_triples();
        let doc = write_document(&triples);
        let parsed = parse_document(&doc).unwrap();
        assert_eq!(parsed, triples);
    }

    #[test]
    fn graph_round_trip() {
        let triples = figure1_triples();
        let doc = write_document(&triples);
        let graph = parse_graph(&doc).unwrap();
        assert_eq!(graph.edge_count(), triples.len());
        let rewritten = write_graph(&graph);
        let reparsed = parse_document(&rewritten).unwrap();
        let mut a: Vec<String> = triples.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = reparsed.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let doc = "<s> <p> <o> .\n<s> <p> broken .\n";
        let err = parse_document(doc).unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn various_malformed_lines_are_rejected() {
        let cases = [
            "<s> <p> <o>",              // missing dot
            "<s> <p> \"unterminated .", // unterminated literal
            "\"lit\" <p> <o> .",        // literal subject
            "<s> \"p\" <o> .",          // literal predicate
            "<s> <p> <o> . extra",      // trailing garbage
            "<s <p> <o> .",             // unterminated IRI
        ];
        for case in cases {
            assert!(parse_line(case, 1).is_err(), "should reject: {case}");
        }
    }

    #[test]
    fn parse_line_ref_borrows_clean_literals() {
        let line = "<s> <year> \"2006\" .";
        let mut scratch = String::new();
        let t = parse_line_ref(line, 1, &mut scratch).unwrap().unwrap();
        assert_eq!(t.subject, "s");
        assert_eq!(t.predicate, "year");
        assert_eq!(t.object, TermRef::Literal("2006"));
        // The clean path must not touch the scratch buffer.
        assert!(scratch.is_empty());
    }

    #[test]
    fn parse_line_ref_unescapes_into_scratch() {
        let line = "<s> <title> \"a \\\"b\\\" c\" .";
        let mut scratch = String::new();
        let t = parse_line_ref(line, 1, &mut scratch).unwrap().unwrap();
        assert_eq!(t.object, TermRef::Literal("a \"b\" c"));
    }

    #[test]
    fn streamed_ingest_matches_owned_parse() {
        let triples = figure1_triples();
        let doc = write_document(&triples);

        let mut streamed = DataGraph::new();
        let stats = ingest_ntriples(doc.as_bytes(), &mut streamed).unwrap();
        assert_eq!(stats.triples, triples.len());
        assert_eq!(stats.lines, doc.lines().count());

        let owned = parse_graph(&doc).unwrap();
        assert_eq!(streamed.vertex_count(), owned.vertex_count());
        assert_eq!(streamed.edge_count(), owned.edge_count());
        for v in owned.vertices() {
            assert_eq!(streamed.vertex(v), owned.vertex(v));
            assert_eq!(streamed.vertex_label(v), owned.vertex_label(v));
        }
        for e in owned.edges() {
            assert_eq!(streamed.edge(e), owned.edge(e));
        }
    }

    #[test]
    fn streamed_writer_matches_owning_writer() {
        let mut g = DataGraph::new();
        for t in figure1_triples() {
            g.insert_triple(&t).unwrap();
        }
        g.insert_triple(&Triple::attribute("s", "title", "quo\"te\\back\nline"))
            .unwrap();
        let mut streamed = Vec::new();
        write_graph_to(&g, &mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), write_graph(&g));
    }

    #[test]
    fn ingest_reports_parse_errors_with_line_numbers() {
        let doc = "<s> <p> <o> .\nnot a triple\n";
        let mut g = DataGraph::new();
        let err = ingest_ntriples(doc.as_bytes(), &mut g).unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    /// Asserts the streamed ingest fails on exactly `line` for `doc`.
    fn ingest_error_line(doc: &str) -> usize {
        let mut g = DataGraph::new();
        match ingest_ntriples(doc.as_bytes(), &mut g).unwrap_err() {
            RdfError::Parse { line, .. } => line,
            other => panic!("expected a positioned parse error, got {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_do_not_shift_error_line_numbers() {
        // CRLF terminators everywhere; the bad line is the third.
        let doc = "<s> <p> <o> .\r\n<s> <q> <o> .\r\n<s> <p> broken .\r\n";
        assert_eq!(ingest_error_line(doc), 3);
        // CRLF documents also ingest cleanly when well-formed.
        let mut g = DataGraph::new();
        let stats = ingest_ntriples("<s> <p> <o> .\r\n".as_bytes(), &mut g).unwrap();
        assert_eq!((stats.lines, stats.triples), (1, 1));
    }

    #[test]
    fn trailing_whitespace_after_the_dot_is_accepted_and_does_not_shift_lines() {
        // Trailing spaces and tabs after the terminating `.` are legal and
        // must neither reject the line nor disturb later error positions.
        let doc = "<s> <p> <o> .   \t\n<s> <q> <o> . \n<s> <p> broken .\n";
        assert_eq!(ingest_error_line(doc), 3);
        let mut g = DataGraph::new();
        let stats = ingest_ntriples("<s> <p> <o> .   \n".as_bytes(), &mut g).unwrap();
        assert_eq!((stats.lines, stats.triples), (1, 1));
    }

    #[test]
    fn interleaved_comments_and_blank_lines_keep_error_lines_physical() {
        // Comments and blank lines count as physical lines: the malformed
        // triple below sits on physical line 6, not on "triple number 2".
        let doc = "# header\n\n<s> <p> <o> .\n   \n# more\n<s> <p> broken .\n";
        assert_eq!(ingest_error_line(doc), 6);
        // Same document through the in-memory path reports the same line.
        match parse_graph(doc).unwrap_err() {
            RdfError::Parse { line, .. } => assert_eq!(line, 6),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn graph_insertion_errors_carry_the_offending_line_number() {
        // Line 3 parses fine but violates Definition 1 (`type` with a
        // literal object); the classification error must still be positioned.
        let doc = "# schema\n<s> <p> <o> .\n<s> <type> \"Person\" .\n";
        let mut g = DataGraph::new();
        match ingest_ntriples(doc.as_bytes(), &mut g).unwrap_err() {
            RdfError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("literal object"), "got: {message}");
            }
            other => panic!("expected a positioned error, got {other:?}"),
        }
        match parse_graph(doc).unwrap_err() {
            RdfError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected a positioned error, got {other:?}"),
        }
    }
}
