//! A line-oriented, N-Triples-like serialisation.
//!
//! Each line holds one triple:
//!
//! ```text
//! <pub1URI> <author> <re1URI> .
//! <pub1URI> <year> "2006" .
//! # comments and blank lines are ignored
//! ```
//!
//! IRIs are written in angle brackets, literals in double quotes with `\"`
//! and `\\` escapes. This is deliberately a small subset of W3C N-Triples —
//! enough to persist and exchange the generated datasets and the paper's
//! running example.

use crate::error::RdfError;
use crate::graph::DataGraph;
use crate::term::Term;
use crate::triple::Triple;
use crate::Result;

/// Serialises a single triple to one line (without trailing newline).
pub fn write_triple(triple: &Triple) -> String {
    format!(
        "{} <{}> {} .",
        write_term(&triple.subject),
        triple.predicate,
        write_term(&triple.object)
    )
}

fn write_term(term: &Term) -> String {
    match term {
        Term::Iri(v) => format!("<{v}>"),
        Term::Literal(v) => format!("\"{}\"", escape_literal(v)),
    }
}

fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn unescape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Serialises a whole document (one line per triple).
pub fn write_document(triples: &[Triple]) -> String {
    let mut out = String::new();
    for t in triples {
        out.push_str(&write_triple(t));
        out.push('\n');
    }
    out
}

/// Serialises all edges of a data graph.
pub fn write_graph(graph: &DataGraph) -> String {
    write_document(&graph.triples())
}

struct Cursor<'a> {
    line: &'a str,
    pos: usize,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    fn error(&self, message: impl Into<String>) -> RdfError {
        RdfError::Parse {
            line: self.line_no,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.line.len() && self.line.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.line.as_bytes().get(self.pos).copied()
    }

    fn parse_term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                let end = self.line[self.pos..]
                    .find('>')
                    .map(|i| self.pos + i)
                    .ok_or_else(|| self.error("unterminated IRI"))?;
                let iri = &self.line[self.pos + 1..end];
                self.pos = end + 1;
                Ok(Term::iri(iri))
            }
            Some(b'"') => {
                // Scan for the closing unescaped quote.
                let bytes = self.line.as_bytes();
                let mut i = self.pos + 1;
                let mut escaped = false;
                while i < bytes.len() {
                    let b = bytes[i];
                    if escaped {
                        escaped = false;
                    } else if b == b'\\' {
                        escaped = true;
                    } else if b == b'"' {
                        break;
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(self.error("unterminated literal"));
                }
                let raw = &self.line[self.pos + 1..i];
                self.pos = i + 1;
                Ok(Term::literal(unescape_literal(raw)))
            }
            Some(_) => Err(self.error("expected `<` or `\"` at start of term")),
            None => Err(self.error("unexpected end of line")),
        }
    }

    fn parse_predicate(&mut self) -> Result<String> {
        match self.parse_term()? {
            Term::Iri(p) => Ok(p),
            Term::Literal(_) => Err(self.error("predicate must be an IRI")),
        }
    }

    fn expect_dot(&mut self) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.skip_ws();
            if self.pos == self.line.len() {
                Ok(())
            } else {
                Err(self.error("trailing content after `.`"))
            }
        } else {
            Err(self.error("expected terminating `.`"))
        }
    }
}

/// Parses one line into a triple. Returns `Ok(None)` for blank lines and
/// comments.
pub fn parse_line(line: &str, line_no: usize) -> Result<Option<Triple>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut cursor = Cursor {
        line: trimmed,
        pos: 0,
        line_no,
    };
    let subject = cursor.parse_term()?;
    if !subject.is_iri() {
        return Err(cursor.error("subject must be an IRI"));
    }
    let predicate = cursor.parse_predicate()?;
    let object = cursor.parse_term()?;
    cursor.expect_dot()?;
    Ok(Some(Triple::new(subject, predicate, object)))
}

/// Parses a whole document into triples.
pub fn parse_document(input: &str) -> Result<Vec<Triple>> {
    let mut triples = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(t) = parse_line(line, i + 1)? {
            triples.push(t);
        }
    }
    Ok(triples)
}

/// Parses a document directly into a [`DataGraph`].
pub fn parse_graph(input: &str) -> Result<DataGraph> {
    let mut graph = DataGraph::new();
    for t in parse_document(input)? {
        graph.insert_triple(&t)?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_triples;

    #[test]
    fn single_triple_round_trip() {
        let t = Triple::attribute("re2URI", "name", "P. Cimiano");
        let line = write_triple(&t);
        let parsed = parse_line(&line, 1).unwrap().unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn literal_escaping_round_trip() {
        let original = Triple::attribute(
            "p",
            "title",
            "A \"quoted\" title \\ with backslash\nand newline",
        );
        let line = write_triple(&original);
        let parsed = parse_line(&line, 1).unwrap().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let doc = "# a comment\n\n<s> <p> <o> .\n   \n# another\n";
        let triples = parse_document(doc).unwrap();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0], Triple::relation("s", "p", "o"));
    }

    #[test]
    fn document_round_trip_preserves_all_triples() {
        let triples = figure1_triples();
        let doc = write_document(&triples);
        let parsed = parse_document(&doc).unwrap();
        assert_eq!(parsed, triples);
    }

    #[test]
    fn graph_round_trip() {
        let triples = figure1_triples();
        let doc = write_document(&triples);
        let graph = parse_graph(&doc).unwrap();
        assert_eq!(graph.edge_count(), triples.len());
        let rewritten = write_graph(&graph);
        let reparsed = parse_document(&rewritten).unwrap();
        let mut a: Vec<String> = triples.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = reparsed.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let doc = "<s> <p> <o> .\n<s> <p> broken .\n";
        let err = parse_document(doc).unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn various_malformed_lines_are_rejected() {
        let cases = [
            "<s> <p> <o>",              // missing dot
            "<s> <p> \"unterminated .", // unterminated literal
            "\"lit\" <p> <o> .",        // literal subject
            "<s> \"p\" <o> .",          // literal predicate
            "<s> <p> <o> . extra",      // trailing garbage
            "<s <p> <o> .",             // unterminated IRI
        ];
        for case in cases {
            assert!(parse_line(case, 1).is_err(), "should reject: {case}");
        }
    }
}
