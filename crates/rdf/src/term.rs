//! RDF terms.
//!
//! A [`Term`] is either an IRI (identifying an entity or a class) or a
//! literal (a data value). Terms appear as subjects and objects of
//! [`Triple`](crate::Triple)s before the triples are classified into the
//! typed edges of the data graph.

use std::fmt;

/// A subject or object position of an RDF triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI or other global identifier (entity URIs, class names).
    Iri(String),
    /// A literal data value (strings, numbers, dates — all kept as text).
    Literal(String),
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Creates a literal term.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal(value.into())
    }

    /// The textual value of the term, without syntactic decoration.
    pub fn value(&self) -> &str {
        match self {
            Term::Iri(v) | Term::Literal(v) => v,
        }
    }

    /// Whether the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Whether the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => write!(f, "<{v}>"),
            Term::Literal(v) => write!(f, "\"{v}\""),
        }
    }
}

/// A borrowed view of a [`Term`], used by the streamed N-Triples ingest
/// path to avoid allocating a `String` per term.
///
/// Literal contents are already unescaped — on the fast path they borrow the
/// input line directly; escaped literals borrow a reusable scratch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermRef<'a> {
    /// An IRI or other global identifier.
    Iri(&'a str),
    /// A literal data value (unescaped).
    Literal(&'a str),
}

impl<'a> TermRef<'a> {
    /// The textual value of the term, without syntactic decoration.
    pub fn value(&self) -> &'a str {
        match self {
            TermRef::Iri(v) | TermRef::Literal(v) => v,
        }
    }

    /// Whether the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, TermRef::Iri(_))
    }

    /// Whether the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, TermRef::Literal(_))
    }

    /// Converts into an owning [`Term`].
    pub fn to_term(self) -> Term {
        match self {
            TermRef::Iri(v) => Term::iri(v),
            TermRef::Literal(v) => Term::literal(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let iri = Term::iri("pub1URI");
        assert!(iri.is_iri());
        assert!(!iri.is_literal());
        assert_eq!(iri.value(), "pub1URI");

        let lit = Term::literal("P. Cimiano");
        assert!(lit.is_literal());
        assert_eq!(lit.value(), "P. Cimiano");
    }

    #[test]
    fn display_uses_ntriples_like_syntax() {
        assert_eq!(Term::iri("re1URI").to_string(), "<re1URI>");
        assert_eq!(Term::literal("2006").to_string(), "\"2006\"");
    }

    #[test]
    fn ordering_groups_iris_before_literals() {
        let mut terms = vec![Term::literal("a"), Term::iri("b"), Term::iri("a")];
        terms.sort();
        assert_eq!(
            terms,
            vec![Term::iri("a"), Term::iri("b"), Term::literal("a")]
        );
    }
}
