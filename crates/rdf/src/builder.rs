//! Ergonomic construction of data graphs.
//!
//! [`GraphBuilder`] is a thin, infallible-feeling layer over
//! [`DataGraph`]: the dataset generators, examples and tests describe data
//! in terms of classes, typed entities, attributes and relations instead of
//! raw triples. Structural mistakes (which cannot occur through this API)
//! still surface as panics with a clear message rather than silent
//! corruption.

use crate::graph::{DataGraph, EdgeLabel, VertexId};
use crate::triple::Triple;
use crate::Result;

/// Builder for [`DataGraph`]s.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    graph: DataGraph,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class and returns its vertex.
    pub fn class(&mut self, name: &str) -> VertexId {
        self.graph.add_class(name)
    }

    /// Declares that `sub` is a subclass of `sup` (creating both classes if
    /// necessary).
    pub fn subclass(&mut self, sub: &str, sup: &str) -> &mut Self {
        let s = self.graph.add_class(sub);
        let o = self.graph.add_class(sup);
        self.graph
            .add_edge(s, EdgeLabel::SubClass, o)
            // lint: allow(no-unwrap, reason = "both endpoints were just created as class vertices, which add_edge accepts for SubClass")
            .expect("class-to-class subclass edge is always valid");
        self
    }

    /// Declares an entity of the given class and returns its vertex.
    pub fn entity(&mut self, iri: &str, class: &str) -> VertexId {
        let e = self.graph.add_entity(iri);
        let c = self.graph.add_class(class);
        self.graph
            .add_edge(e, EdgeLabel::Type, c)
            // lint: allow(no-unwrap, reason = "the endpoints were just created as entity and class vertices, which add_edge accepts for Type")
            .expect("entity-to-class type edge is always valid");
        e
    }

    /// Declares an entity without a type (it will aggregate under `Thing` in
    /// the summary graph).
    pub fn untyped_entity(&mut self, iri: &str) -> VertexId {
        self.graph.add_entity(iri)
    }

    /// Adds an additional `type` edge to an existing or new entity.
    pub fn add_type(&mut self, iri: &str, class: &str) -> &mut Self {
        self.entity(iri, class);
        self
    }

    /// Adds an attribute assignment `attr(entity, value)`.
    pub fn attribute(&mut self, entity: &str, attr: &str, value: &str) -> &mut Self {
        let e = self.graph.add_entity(entity);
        let v = self.graph.add_value(value);
        let label = EdgeLabel::Attribute(self.graph.intern(attr));
        self.graph
            .add_edge(e, label, v)
            // lint: allow(no-unwrap, reason = "the endpoints were just created as entity and value vertices, which add_edge accepts for attributes")
            .expect("entity-to-value attribute edge is always valid");
        self
    }

    /// Adds a relation `pred(subject, object)` between two entities.
    pub fn relation(&mut self, subject: &str, pred: &str, object: &str) -> &mut Self {
        let s = self.graph.add_entity(subject);
        let o = self.graph.add_entity(object);
        let label = EdgeLabel::Relation(self.graph.intern(pred));
        self.graph
            .add_edge(s, label, o)
            // lint: allow(no-unwrap, reason = "both endpoints were just created as entity vertices, which add_edge accepts for relations")
            .expect("entity-to-entity relation edge is always valid");
        self
    }

    /// Inserts a raw triple (classification as in
    /// [`DataGraph::insert_triple`]).
    pub fn triple(&mut self, triple: &Triple) -> Result<&mut Self> {
        self.graph.insert_triple(triple)?;
        Ok(self)
    }

    /// Inserts many raw triples.
    pub fn triples<'a>(
        &mut self,
        triples: impl IntoIterator<Item = &'a Triple>,
    ) -> Result<&mut Self> {
        for t in triples {
            self.graph.insert_triple(t)?;
        }
        Ok(self)
    }

    /// Read access to the graph under construction.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// Finalises the builder.
    pub fn finish(self) -> DataGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;
    use crate::stats::GraphStats;

    #[test]
    fn fluent_construction_produces_expected_graph() {
        let mut b = GraphBuilder::new();
        b.subclass("Researcher", "Person");
        b.entity("re1", "Researcher");
        b.attribute("re1", "name", "Thanh Tran");
        b.entity("inst1", "Institute");
        b.relation("re1", "worksAt", "inst1");
        let g = b.finish();

        let stats = GraphStats::compute(&g);
        assert_eq!(stats.entities, 2);
        assert_eq!(stats.classes, 3);
        assert_eq!(stats.values, 1);
        assert_eq!(stats.relation_edges, 1);
        assert_eq!(stats.attribute_edges, 1);
        assert_eq!(stats.type_edges, 2);
        assert_eq!(stats.subclass_edges, 1);
    }

    #[test]
    fn entity_declaration_is_idempotent() {
        let mut b = GraphBuilder::new();
        let a = b.entity("e", "C");
        let a2 = b.entity("e", "C");
        assert_eq!(a, a2);
        assert_eq!(b.graph().edge_count(), 1);
    }

    #[test]
    fn multiple_types_per_entity() {
        let mut b = GraphBuilder::new();
        b.entity("e", "Student");
        b.add_type("e", "Employee");
        let g = b.finish();
        let e = g.entity("e").unwrap();
        assert_eq!(g.classes_of(e).len(), 2);
    }

    #[test]
    fn raw_triples_can_be_mixed_in() {
        let mut b = GraphBuilder::new();
        b.entity("p", "Publication");
        b.triples(&[
            Triple::attribute("p", "year", "2006"),
            Triple::relation("p", "author", "a"),
        ])
        .unwrap();
        let g = b.finish();
        assert_eq!(g.vertex_count_of_kind(VertexKind::Value), 1);
        assert!(g.entity("a").is_some());
    }

    #[test]
    fn builder_graph_accessor_reflects_progress() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.graph().vertex_count(), 0);
        b.entity("x", "C");
        assert_eq!(b.graph().vertex_count(), 2);
    }
}
