//! Indexed triple store.
//!
//! The paper's architecture processes the generated conjunctive query with
//! "the underlying database engine". This module provides that engine's
//! storage layer: a [`TripleStore`] holding the data graph's edges as
//! `(subject, predicate-label, object)` rows in three sorted permutations
//! (SPO, POS, OSP), so that any triple pattern with bound/unbound positions
//! can be answered by a binary-searched range scan.

use crate::graph::{DataGraph, EdgeLabelId, VertexId};
use crate::snapshot::{parallel_load, SectionDecoder, SectionEncoder, SnapshotError, U32Column};

/// A triple pattern: each position is either bound to a concrete id or a
/// wildcard (`None`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Bound subject vertex, if any.
    pub subject: Option<VertexId>,
    /// Bound predicate label, if any.
    pub predicate: Option<EdgeLabelId>,
    /// Bound object vertex, if any.
    pub object: Option<VertexId>,
}

impl TriplePattern {
    /// Pattern with all positions unbound.
    pub fn any() -> Self {
        Self::default()
    }

    /// Sets the subject.
    pub fn with_subject(mut self, s: VertexId) -> Self {
        self.subject = Some(s);
        self
    }

    /// Sets the predicate.
    pub fn with_predicate(mut self, p: EdgeLabelId) -> Self {
        self.predicate = Some(p);
        self
    }

    /// Sets the object.
    pub fn with_object(mut self, o: VertexId) -> Self {
        self.object = Some(o);
        self
    }

    /// Number of bound positions (0–3).
    pub fn bound_positions(&self) -> usize {
        self.subject.is_some() as usize
            + self.predicate.is_some() as usize
            + self.object.is_some() as usize
    }
}

/// A materialised `(subject, predicate, object)` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpoRow {
    /// Subject vertex.
    pub subject: VertexId,
    /// Predicate label.
    pub predicate: EdgeLabelId,
    /// Object vertex.
    pub object: VertexId,
}

/// Sorted-permutation index over the edges of a [`DataGraph`].
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    /// Rows sorted by (subject, predicate, object).
    spo: Vec<SpoRow>,
    /// Rows sorted by (predicate, object, subject).
    pos: Vec<SpoRow>,
    /// Rows sorted by (object, subject, predicate).
    osp: Vec<SpoRow>,
}

#[derive(Debug, Clone, Copy)]
enum Permutation {
    Spo,
    Pos,
    Osp,
}

fn key(row: &SpoRow, perm: Permutation) -> (u32, u32, u32) {
    match perm {
        Permutation::Spo => (row.subject.0, row.predicate.0, row.object.0),
        Permutation::Pos => (row.predicate.0, row.object.0, row.subject.0),
        Permutation::Osp => (row.object.0, row.subject.0, row.predicate.0),
    }
}

impl TripleStore {
    /// Builds the store from all edges of `graph`.
    pub fn build(graph: &DataGraph) -> Self {
        let mut rows: Vec<SpoRow> = graph
            .edges()
            .map(|e| {
                let edge = graph.edge(e);
                SpoRow {
                    subject: edge.from,
                    predicate: edge.label,
                    object: edge.to,
                }
            })
            .collect();
        rows.sort_by_key(|r| key(r, Permutation::Spo));
        let spo = rows.clone();
        rows.sort_by_key(|r| key(r, Permutation::Pos));
        let pos = rows.clone();
        rows.sort_by_key(|r| key(r, Permutation::Osp));
        let osp = rows;
        Self { spo, pos, osp }
    }

    /// Number of rows (equal to the graph's edge count).
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Approximate heap size in bytes (for the Fig. 6b index-size report).
    pub fn heap_bytes(&self) -> usize {
        3 * self.spo.len() * std::mem::size_of::<SpoRow>()
    }

    fn scan_permutation(
        &self,
        perm: Permutation,
        first: Option<u32>,
        second: Option<u32>,
        third: Option<u32>,
    ) -> &[SpoRow] {
        debug_assert!(
            !(first.is_none() && (second.is_some() || third.is_some())),
            "bound positions must form a prefix of the permutation"
        );
        debug_assert!(
            !(second.is_none() && third.is_some()),
            "bound positions must form a prefix of the permutation"
        );
        let rows = match perm {
            Permutation::Spo => &self.spo,
            Permutation::Pos => &self.pos,
            Permutation::Osp => &self.osp,
        };
        let lower = (first.unwrap_or(0), second.unwrap_or(0), third.unwrap_or(0));
        let upper = (
            first.unwrap_or(u32::MAX),
            second.unwrap_or(u32::MAX),
            third.unwrap_or(u32::MAX),
        );
        let start = rows.partition_point(|r| key(r, perm) < lower);
        let end = rows.partition_point(|r| {
            let k = key(r, perm);
            k <= upper
        });
        &rows[start..end]
    }

    /// Returns all rows matching `pattern`.
    ///
    /// The permutation is chosen so the bound positions form a prefix of the
    /// sort key, which makes every pattern a contiguous range scan.
    pub fn scan(&self, pattern: TriplePattern) -> Vec<SpoRow> {
        let TriplePattern {
            subject: s,
            predicate: p,
            object: o,
        } = pattern;
        let rows = match (s, p, o) {
            // Fully bound or s-prefix bound -> SPO.
            (Some(s), p, _) => {
                // SPO supports (s), (s,p), (s,p,o).
                match (p, o) {
                    (Some(p), o) => self.scan_permutation(
                        Permutation::Spo,
                        Some(s.0),
                        Some(p.0),
                        o.map(|v| v.0),
                    ),
                    (None, None) => self.scan_permutation(Permutation::Spo, Some(s.0), None, None),
                    (None, Some(o)) => {
                        // (s, ?, o) -> OSP prefix (o, s).
                        return self
                            .scan_permutation(Permutation::Osp, Some(o.0), Some(s.0), None)
                            .to_vec();
                    }
                }
            }
            // Predicate-prefix bound -> POS.
            (None, Some(p), o) => {
                self.scan_permutation(Permutation::Pos, Some(p.0), o.map(|v| v.0), None)
            }
            // Object-only bound -> OSP.
            (None, None, Some(o)) => self.scan_permutation(Permutation::Osp, Some(o.0), None, None),
            // Nothing bound -> full scan.
            (None, None, None) => &self.spo,
        };
        rows.to_vec()
    }

    /// Counts the rows matching `pattern` without materialising them.
    pub fn count(&self, pattern: TriplePattern) -> usize {
        self.scan(pattern).len()
    }

    /// Serialises all three sorted permutations as flat columns, so a load
    /// needs no re-sorting.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        for rows in [&self.spo, &self.pos, &self.osp] {
            let s: Vec<u32> = rows.iter().map(|r| r.subject.0).collect();
            let p: Vec<u32> = rows.iter().map(|r| r.predicate.0).collect();
            let o: Vec<u32> = rows.iter().map(|r| r.object.0).collect();
            enc.put_u32_slice(&s);
            enc.put_u32_slice(&p);
            enc.put_u32_slice(&o);
        }
    }

    /// Rebuilds the store from [`Self::write_snapshot`] output, validating
    /// that each permutation is sorted and that all three hold the same
    /// number of rows.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        // Grab zero-copy views of all nine columns up front (cheap — no
        // decoding happens yet), then build and validate the three
        // permutations on parallel threads: each is an independent
        // columns → rows re-pack plus a sortedness scan over 10⁶ rows.
        let mut columns = Vec::with_capacity(3);
        for perm in [Permutation::Spo, Permutation::Pos, Permutation::Osp] {
            let s = dec.get_u32_column()?;
            let p = dec.get_u32_column()?;
            let o = dec.get_u32_column()?;
            if s.len() != p.len() || s.len() != o.len() {
                return Err(dec.corrupt("triple store columns differ in length"));
            }
            columns.push((perm, s, p, o));
        }
        let build = |(perm, s, p, o): &(
            Permutation,
            U32Column<'_>,
            U32Column<'_>,
            U32Column<'_>,
        )|
         -> Result<Vec<SpoRow>, SnapshotError> {
            // The columns are zipped straight out of the payload bytes into
            // the row array: no intermediate `Vec<u32>` per column.
            let rows: Vec<SpoRow> = s
                .iter()
                .zip(p.iter())
                .zip(o.iter())
                .map(|((s, p), o)| SpoRow {
                    subject: VertexId(s),
                    predicate: EdgeLabelId(p),
                    object: VertexId(o),
                })
                .collect();
            if rows
                .windows(2)
                .any(|w| key(&w[0], *perm) > key(&w[1], *perm))
            {
                return Err(dec.corrupt("triple store permutation is not sorted"));
            }
            Ok(rows)
        };
        let (spo, pos, osp) = if parallel_load() {
            std::thread::scope(|scope| {
                let pos_thread = scope.spawn(|| build(&columns[1]));
                let osp_thread = scope.spawn(|| build(&columns[2]));
                let spo = build(&columns[0]);
                let join = |handle: std::thread::ScopedJoinHandle<
                    '_,
                    Result<Vec<SpoRow>, SnapshotError>,
                >| {
                    match handle.join() {
                        Ok(rows) => rows,
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                };
                (spo, join(pos_thread), join(osp_thread))
            })
        } else {
            (build(&columns[0]), build(&columns[1]), build(&columns[2]))
        };
        let (spo, pos, osp) = (spo?, pos?, osp?);
        if spo.len() != pos.len() || spo.len() != osp.len() {
            return Err(dec.corrupt("triple store permutations differ in length"));
        }
        Ok(Self { spo, pos, osp })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;
    use crate::graph::EdgeLabel;

    fn store_and_graph() -> (TripleStore, DataGraph) {
        let g = figure1_graph();
        (TripleStore::build(&g), g)
    }

    #[test]
    fn store_has_one_row_per_edge() {
        let (store, g) = store_and_graph();
        assert_eq!(store.len(), g.edge_count());
        assert!(!store.is_empty());
    }

    #[test]
    fn full_scan_returns_everything() {
        let (store, g) = store_and_graph();
        assert_eq!(store.scan(TriplePattern::any()).len(), g.edge_count());
    }

    #[test]
    fn subject_bound_scan() {
        let (store, g) = store_and_graph();
        let pub1 = g.entity("pub1URI").unwrap();
        let rows = store.scan(TriplePattern::any().with_subject(pub1));
        assert_eq!(rows.len(), g.out_edges(pub1).len());
        assert!(rows.iter().all(|r| r.subject == pub1));
    }

    #[test]
    fn predicate_bound_scan() {
        let (store, g) = store_and_graph();
        let author_sym = g.symbol("author").unwrap();
        let author = g.edge_label_id(&EdgeLabel::Relation(author_sym)).unwrap();
        let rows = store.scan(TriplePattern::any().with_predicate(author));
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.predicate == author));
    }

    #[test]
    fn object_bound_scan() {
        let (store, g) = store_and_graph();
        let inst1 = g.entity("inst1URI").unwrap();
        let rows = store.scan(TriplePattern::any().with_object(inst1));
        assert_eq!(rows.len(), g.in_edges(inst1).len());
        assert!(rows.iter().all(|r| r.object == inst1));
    }

    #[test]
    fn subject_object_bound_scan() {
        let (store, g) = store_and_graph();
        let pub1 = g.entity("pub1URI").unwrap();
        let re1 = g.entity("re1URI").unwrap();
        let rows = store.scan(TriplePattern::any().with_subject(pub1).with_object(re1));
        assert_eq!(rows.len(), 1);
        assert_eq!(g.edge_label_name(rows[0].predicate), "author");
    }

    #[test]
    fn fully_bound_scan_behaves_like_contains() {
        let (store, g) = store_and_graph();
        let pub1 = g.entity("pub1URI").unwrap();
        let re1 = g.entity("re1URI").unwrap();
        let author = g
            .edge_label_id(&EdgeLabel::Relation(g.symbol("author").unwrap()))
            .unwrap();
        let hit = store.scan(TriplePattern {
            subject: Some(pub1),
            predicate: Some(author),
            object: Some(re1),
        });
        assert_eq!(hit.len(), 1);
        let miss = store.scan(TriplePattern {
            subject: Some(re1),
            predicate: Some(author),
            object: Some(pub1),
        });
        assert!(miss.is_empty());
    }

    #[test]
    fn predicate_object_bound_scan() {
        let (store, g) = store_and_graph();
        let type_label = g.edge_label_id(&EdgeLabel::Type).unwrap();
        let publication = g.class("Publication").unwrap();
        let rows = store.scan(
            TriplePattern::any()
                .with_predicate(type_label)
                .with_object(publication),
        );
        assert_eq!(rows.len(), 2, "pub1 and pub2 are Publications");
    }

    #[test]
    fn counts_are_consistent_with_scans() {
        let (store, g) = store_and_graph();
        for v in g.vertices() {
            let p = TriplePattern::any().with_subject(v);
            assert_eq!(store.count(p), store.scan(p).len());
        }
    }

    #[test]
    fn empty_graph_store() {
        let g = DataGraph::new();
        let store = TripleStore::build(&g);
        assert!(store.is_empty());
        assert!(store.scan(TriplePattern::any()).is_empty());
    }

    #[test]
    fn snapshot_round_trip_preserves_scans() {
        use crate::snapshot::{SnapshotReader, SnapshotWriter};
        let (store, g) = store_and_graph();
        let mut enc = SectionEncoder::new();
        store.write_snapshot(&mut enc);
        let mut writer = SnapshotWriter::new();
        writer.add_section(3, enc);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        let reader = SnapshotReader::read_from(bytes.as_slice()).unwrap();
        let mut dec = reader.section(3).unwrap();
        let loaded = TripleStore::read_snapshot(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(loaded.len(), store.len());
        for v in g.vertices() {
            for pattern in [
                TriplePattern::any().with_subject(v),
                TriplePattern::any().with_object(v),
            ] {
                assert_eq!(loaded.scan(pattern), store.scan(pattern));
            }
        }
        assert_eq!(
            loaded.scan(TriplePattern::any()),
            store.scan(TriplePattern::any())
        );
    }
}
