//! Indexed triple store.
//!
//! The paper's architecture processes the generated conjunctive query with
//! "the underlying database engine". This module provides that engine's
//! storage layer: a [`TripleStore`] holding the data graph's edges as
//! `(subject, predicate-label, object)` rows in three sorted permutations
//! (SPO, POS, OSP), so that any triple pattern with bound/unbound positions
//! can be answered by a binary-searched range scan.

use std::sync::Arc;

use crate::graph::{DataGraph, EdgeLabelId, VertexId};
use crate::snapshot::{parallel_load, SectionDecoder, SectionEncoder, SnapshotError, U32Column};

/// A triple pattern: each position is either bound to a concrete id or a
/// wildcard (`None`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Bound subject vertex, if any.
    pub subject: Option<VertexId>,
    /// Bound predicate label, if any.
    pub predicate: Option<EdgeLabelId>,
    /// Bound object vertex, if any.
    pub object: Option<VertexId>,
}

impl TriplePattern {
    /// Pattern with all positions unbound.
    pub fn any() -> Self {
        Self::default()
    }

    /// Sets the subject.
    pub fn with_subject(mut self, s: VertexId) -> Self {
        self.subject = Some(s);
        self
    }

    /// Sets the predicate.
    pub fn with_predicate(mut self, p: EdgeLabelId) -> Self {
        self.predicate = Some(p);
        self
    }

    /// Sets the object.
    pub fn with_object(mut self, o: VertexId) -> Self {
        self.object = Some(o);
        self
    }

    /// Number of bound positions (0–3).
    pub fn bound_positions(&self) -> usize {
        self.subject.is_some() as usize
            + self.predicate.is_some() as usize
            + self.object.is_some() as usize
    }
}

/// A materialised `(subject, predicate, object)` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpoRow {
    /// Subject vertex.
    pub subject: VertexId,
    /// Predicate label.
    pub predicate: EdgeLabelId,
    /// Object vertex.
    pub object: VertexId,
}

/// The frozen bulk of a [`TripleStore`]: three sorted permutations built
/// once and shared (via [`Arc`]) across every clone of the store, so a
/// live-update snapshot clones in O(delta), not O(base).
#[derive(Debug, Default)]
struct BaseRows {
    /// Rows sorted by (subject, predicate, object).
    spo: Vec<SpoRow>,
    /// Rows sorted by (predicate, object, subject).
    pos: Vec<SpoRow>,
    /// Rows sorted by (object, subject, predicate).
    osp: Vec<SpoRow>,
}

/// Sorted-permutation index over the edges of a [`DataGraph`].
///
/// The store is a frozen, `Arc`-shared base plus a small sorted delta per
/// permutation (the live-update overlay; empty for frozen builds). Every
/// scan binary-searches both sides and merges, so results are always in
/// permutation order and bit-identical to a from-scratch build over the
/// same row set — per-permutation keys are unique, which makes the merge
/// order unambiguous.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    base: Arc<BaseRows>,
    /// Delta rows sorted by (subject, predicate, object).
    delta_spo: Vec<SpoRow>,
    /// Delta rows sorted by (predicate, object, subject).
    delta_pos: Vec<SpoRow>,
    /// Delta rows sorted by (object, subject, predicate).
    delta_osp: Vec<SpoRow>,
}

#[derive(Debug, Clone, Copy)]
enum Permutation {
    Spo,
    Pos,
    Osp,
}

fn key(row: &SpoRow, perm: Permutation) -> (u32, u32, u32) {
    match perm {
        Permutation::Spo => (row.subject.0, row.predicate.0, row.object.0),
        Permutation::Pos => (row.predicate.0, row.object.0, row.subject.0),
        Permutation::Osp => (row.object.0, row.subject.0, row.predicate.0),
    }
}

impl TripleStore {
    /// Builds the store from all edges of `graph`.
    pub fn build(graph: &DataGraph) -> Self {
        let rows: Vec<SpoRow> = graph
            .edges()
            .map(|e| {
                let edge = graph.edge(e);
                SpoRow {
                    subject: edge.from,
                    predicate: edge.label,
                    object: edge.to,
                }
            })
            .collect();
        Self::from_rows(rows)
    }

    /// Builds a flat (delta-free) store from an arbitrary row set.
    fn from_rows(mut rows: Vec<SpoRow>) -> Self {
        rows.sort_by_key(|r| key(r, Permutation::Spo));
        let spo = rows.clone();
        rows.sort_by_key(|r| key(r, Permutation::Pos));
        let pos = rows.clone();
        rows.sort_by_key(|r| key(r, Permutation::Osp));
        let osp = rows;
        Self {
            base: Arc::new(BaseRows { spo, pos, osp }),
            delta_spo: Vec::new(),
            delta_pos: Vec::new(),
            delta_osp: Vec::new(),
        }
    }

    /// Appends `rows` to the delta overlay. The caller (the live-update
    /// layer) guarantees the rows are not already present — the data graph
    /// deduplicates edges before they ever reach the store.
    pub fn add_rows(&mut self, rows: &[SpoRow]) {
        if rows.is_empty() {
            return;
        }
        debug_assert!(
            rows.iter().all(|r| {
                self.scan(TriplePattern {
                    subject: Some(r.subject),
                    predicate: Some(r.predicate),
                    object: Some(r.object),
                })
                .is_empty()
            }),
            "delta rows must not duplicate existing rows"
        );
        self.delta_spo.extend_from_slice(rows);
        self.delta_pos.extend_from_slice(rows);
        self.delta_osp.extend_from_slice(rows);
        self.delta_spo.sort_by_key(|r| key(r, Permutation::Spo));
        self.delta_pos.sort_by_key(|r| key(r, Permutation::Pos));
        self.delta_osp.sort_by_key(|r| key(r, Permutation::Osp));
    }

    /// Whether any delta rows are overlaid on the shared base.
    pub fn has_delta(&self) -> bool {
        !self.delta_spo.is_empty()
    }

    /// Number of delta rows overlaid on the shared base.
    pub fn delta_len(&self) -> usize {
        self.delta_spo.len()
    }

    /// Merges the delta into a fresh, exclusively-owned base (the
    /// compaction path). The result is bit-identical to building from
    /// scratch over the same row set.
    pub fn flattened(&self) -> Self {
        if !self.has_delta() {
            return self.clone();
        }
        Self::from_rows(self.merged(Permutation::Spo))
    }

    /// All rows of one permutation, base and delta merged in key order.
    fn merged(&self, perm: Permutation) -> Vec<SpoRow> {
        let (base, delta) = self.rows(perm);
        merge_sorted(base, delta, perm)
    }

    fn rows(&self, perm: Permutation) -> (&[SpoRow], &[SpoRow]) {
        match perm {
            Permutation::Spo => (&self.base.spo, &self.delta_spo),
            Permutation::Pos => (&self.base.pos, &self.delta_pos),
            Permutation::Osp => (&self.base.osp, &self.delta_osp),
        }
    }

    /// Number of rows (equal to the graph's edge count).
    pub fn len(&self) -> usize {
        self.base.spo.len() + self.delta_spo.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap size in bytes (for the Fig. 6b index-size report).
    pub fn heap_bytes(&self) -> usize {
        3 * self.len() * std::mem::size_of::<SpoRow>()
    }

    fn scan_permutation(
        &self,
        perm: Permutation,
        first: Option<u32>,
        second: Option<u32>,
        third: Option<u32>,
    ) -> Vec<SpoRow> {
        debug_assert!(
            !(first.is_none() && (second.is_some() || third.is_some())),
            "bound positions must form a prefix of the permutation"
        );
        debug_assert!(
            !(second.is_none() && third.is_some()),
            "bound positions must form a prefix of the permutation"
        );
        let lower = (first.unwrap_or(0), second.unwrap_or(0), third.unwrap_or(0));
        let upper = (
            first.unwrap_or(u32::MAX),
            second.unwrap_or(u32::MAX),
            third.unwrap_or(u32::MAX),
        );
        let range = |rows: &[SpoRow]| {
            let start = rows.partition_point(|r| key(r, perm) < lower);
            let end = rows.partition_point(|r| key(r, perm) <= upper);
            (start, end)
        };
        let (base, delta) = self.rows(perm);
        let (bs, be) = range(base);
        if delta.is_empty() {
            return base[bs..be].to_vec();
        }
        let (ds, de) = range(delta);
        merge_sorted(&base[bs..be], &delta[ds..de], perm)
    }

    /// Returns all rows matching `pattern`.
    ///
    /// The permutation is chosen so the bound positions form a prefix of the
    /// sort key, which makes every pattern a contiguous range scan.
    pub fn scan(&self, pattern: TriplePattern) -> Vec<SpoRow> {
        let TriplePattern {
            subject: s,
            predicate: p,
            object: o,
        } = pattern;
        match (s, p, o) {
            // Fully bound or s-prefix bound -> SPO.
            (Some(s), p, _) => {
                // SPO supports (s), (s,p), (s,p,o).
                match (p, o) {
                    (Some(p), o) => self.scan_permutation(
                        Permutation::Spo,
                        Some(s.0),
                        Some(p.0),
                        o.map(|v| v.0),
                    ),
                    (None, None) => self.scan_permutation(Permutation::Spo, Some(s.0), None, None),
                    // (s, ?, o) -> OSP prefix (o, s).
                    (None, Some(o)) => {
                        self.scan_permutation(Permutation::Osp, Some(o.0), Some(s.0), None)
                    }
                }
            }
            // Predicate-prefix bound -> POS.
            (None, Some(p), o) => {
                self.scan_permutation(Permutation::Pos, Some(p.0), o.map(|v| v.0), None)
            }
            // Object-only bound -> OSP.
            (None, None, Some(o)) => self.scan_permutation(Permutation::Osp, Some(o.0), None, None),
            // Nothing bound -> full scan.
            (None, None, None) => self.merged(Permutation::Spo),
        }
    }

    /// Counts the rows matching `pattern` without materialising them.
    pub fn count(&self, pattern: TriplePattern) -> usize {
        self.scan(pattern).len()
    }

    /// Serialises all three sorted permutations as flat columns, so a load
    /// needs no re-sorting. Any delta overlay is merged in, so the written
    /// bytes are identical to those of a from-scratch build over the same
    /// row set (the live-update compaction proof relies on this).
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        for perm in [Permutation::Spo, Permutation::Pos, Permutation::Osp] {
            let rows = self.merged(perm);
            let s: Vec<u32> = rows.iter().map(|r| r.subject.0).collect();
            let p: Vec<u32> = rows.iter().map(|r| r.predicate.0).collect();
            let o: Vec<u32> = rows.iter().map(|r| r.object.0).collect();
            enc.put_u32_slice(&s);
            enc.put_u32_slice(&p);
            enc.put_u32_slice(&o);
        }
    }

    /// Rebuilds the store from [`Self::write_snapshot`] output, validating
    /// that each permutation is sorted and that all three hold the same
    /// number of rows.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        // Grab zero-copy views of all nine columns up front (cheap — no
        // decoding happens yet), then build and validate the three
        // permutations on parallel threads: each is an independent
        // columns → rows re-pack plus a sortedness scan over 10⁶ rows.
        let mut columns = Vec::with_capacity(3);
        for perm in [Permutation::Spo, Permutation::Pos, Permutation::Osp] {
            let s = dec.get_u32_column()?;
            let p = dec.get_u32_column()?;
            let o = dec.get_u32_column()?;
            if s.len() != p.len() || s.len() != o.len() {
                return Err(dec.corrupt("triple store columns differ in length"));
            }
            columns.push((perm, s, p, o));
        }
        let build = |(perm, s, p, o): &(
            Permutation,
            U32Column<'_>,
            U32Column<'_>,
            U32Column<'_>,
        )|
         -> Result<Vec<SpoRow>, SnapshotError> {
            // The columns are zipped straight out of the payload bytes into
            // the row array: no intermediate `Vec<u32>` per column.
            let rows: Vec<SpoRow> = s
                .iter()
                .zip(p.iter())
                .zip(o.iter())
                .map(|((s, p), o)| SpoRow {
                    subject: VertexId(s),
                    predicate: EdgeLabelId(p),
                    object: VertexId(o),
                })
                .collect();
            if rows
                .windows(2)
                .any(|w| key(&w[0], *perm) > key(&w[1], *perm))
            {
                return Err(dec.corrupt("triple store permutation is not sorted"));
            }
            Ok(rows)
        };
        let (spo, pos, osp) = if parallel_load() {
            std::thread::scope(|scope| {
                let pos_thread = scope.spawn(|| build(&columns[1]));
                let osp_thread = scope.spawn(|| build(&columns[2]));
                let spo = build(&columns[0]);
                let join = |handle: std::thread::ScopedJoinHandle<
                    '_,
                    Result<Vec<SpoRow>, SnapshotError>,
                >| {
                    match handle.join() {
                        Ok(rows) => rows,
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                };
                (spo, join(pos_thread), join(osp_thread))
            })
        } else {
            (build(&columns[0]), build(&columns[1]), build(&columns[2]))
        };
        let (spo, pos, osp) = (spo?, pos?, osp?);
        if spo.len() != pos.len() || spo.len() != osp.len() {
            return Err(dec.corrupt("triple store permutations differ in length"));
        }
        Ok(Self {
            base: Arc::new(BaseRows { spo, pos, osp }),
            delta_spo: Vec::new(),
            delta_pos: Vec::new(),
            delta_osp: Vec::new(),
        })
    }
}

/// Merges two runs that are each sorted (and jointly duplicate-free) under
/// `perm`'s key into one sorted vector.
fn merge_sorted(base: &[SpoRow], delta: &[SpoRow], perm: Permutation) -> Vec<SpoRow> {
    if delta.is_empty() {
        return base.to_vec();
    }
    if base.is_empty() {
        return delta.to_vec();
    }
    let mut out = Vec::with_capacity(base.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < delta.len() {
        if key(&base[i], perm) <= key(&delta[j], perm) {
            out.push(base[i]);
            i += 1;
        } else {
            out.push(delta[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&base[i..]);
    out.extend_from_slice(&delta[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;
    use crate::graph::EdgeLabel;

    fn store_and_graph() -> (TripleStore, DataGraph) {
        let g = figure1_graph();
        (TripleStore::build(&g), g)
    }

    #[test]
    fn store_has_one_row_per_edge() {
        let (store, g) = store_and_graph();
        assert_eq!(store.len(), g.edge_count());
        assert!(!store.is_empty());
    }

    #[test]
    fn full_scan_returns_everything() {
        let (store, g) = store_and_graph();
        assert_eq!(store.scan(TriplePattern::any()).len(), g.edge_count());
    }

    #[test]
    fn subject_bound_scan() {
        let (store, g) = store_and_graph();
        let pub1 = g.entity("pub1URI").unwrap();
        let rows = store.scan(TriplePattern::any().with_subject(pub1));
        assert_eq!(rows.len(), g.out_edges(pub1).len());
        assert!(rows.iter().all(|r| r.subject == pub1));
    }

    #[test]
    fn predicate_bound_scan() {
        let (store, g) = store_and_graph();
        let author_sym = g.symbol("author").unwrap();
        let author = g.edge_label_id(&EdgeLabel::Relation(author_sym)).unwrap();
        let rows = store.scan(TriplePattern::any().with_predicate(author));
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.predicate == author));
    }

    #[test]
    fn object_bound_scan() {
        let (store, g) = store_and_graph();
        let inst1 = g.entity("inst1URI").unwrap();
        let rows = store.scan(TriplePattern::any().with_object(inst1));
        assert_eq!(rows.len(), g.in_edges(inst1).len());
        assert!(rows.iter().all(|r| r.object == inst1));
    }

    #[test]
    fn subject_object_bound_scan() {
        let (store, g) = store_and_graph();
        let pub1 = g.entity("pub1URI").unwrap();
        let re1 = g.entity("re1URI").unwrap();
        let rows = store.scan(TriplePattern::any().with_subject(pub1).with_object(re1));
        assert_eq!(rows.len(), 1);
        assert_eq!(g.edge_label_name(rows[0].predicate), "author");
    }

    #[test]
    fn fully_bound_scan_behaves_like_contains() {
        let (store, g) = store_and_graph();
        let pub1 = g.entity("pub1URI").unwrap();
        let re1 = g.entity("re1URI").unwrap();
        let author = g
            .edge_label_id(&EdgeLabel::Relation(g.symbol("author").unwrap()))
            .unwrap();
        let hit = store.scan(TriplePattern {
            subject: Some(pub1),
            predicate: Some(author),
            object: Some(re1),
        });
        assert_eq!(hit.len(), 1);
        let miss = store.scan(TriplePattern {
            subject: Some(re1),
            predicate: Some(author),
            object: Some(pub1),
        });
        assert!(miss.is_empty());
    }

    #[test]
    fn predicate_object_bound_scan() {
        let (store, g) = store_and_graph();
        let type_label = g.edge_label_id(&EdgeLabel::Type).unwrap();
        let publication = g.class("Publication").unwrap();
        let rows = store.scan(
            TriplePattern::any()
                .with_predicate(type_label)
                .with_object(publication),
        );
        assert_eq!(rows.len(), 2, "pub1 and pub2 are Publications");
    }

    #[test]
    fn counts_are_consistent_with_scans() {
        let (store, g) = store_and_graph();
        for v in g.vertices() {
            let p = TriplePattern::any().with_subject(v);
            assert_eq!(store.count(p), store.scan(p).len());
        }
    }

    #[test]
    fn empty_graph_store() {
        let g = DataGraph::new();
        let store = TripleStore::build(&g);
        assert!(store.is_empty());
        assert!(store.scan(TriplePattern::any()).is_empty());
    }

    /// Splits the figure-1 rows into a base store plus a delta overlay and
    /// checks every scan (and the snapshot bytes) match the flat build.
    #[test]
    fn delta_overlay_scans_match_a_flat_build() {
        let (flat, g) = store_and_graph();
        let all = flat.scan(TriplePattern::any());
        let (head, tail) = all.split_at(all.len() / 2);
        // Deliberately feed the base and delta in scrambled order.
        let mut head_rows = head.to_vec();
        head_rows.reverse();
        let mut overlaid = TripleStore::from_rows(head_rows);
        let mut scrambled_tail = tail.to_vec();
        scrambled_tail.reverse();
        overlaid.add_rows(&scrambled_tail);

        assert!(overlaid.has_delta());
        assert_eq!(overlaid.delta_len(), tail.len());
        assert_eq!(overlaid.len(), flat.len());
        let mut patterns = vec![TriplePattern::any()];
        for v in g.vertices() {
            patterns.push(TriplePattern::any().with_subject(v));
            patterns.push(TriplePattern::any().with_object(v));
        }
        for row in &all {
            patterns.push(TriplePattern {
                subject: Some(row.subject),
                predicate: Some(row.predicate),
                object: Some(row.object),
            });
            patterns.push(
                TriplePattern::any()
                    .with_subject(row.subject)
                    .with_object(row.object),
            );
            patterns.push(TriplePattern::any().with_predicate(row.predicate));
            patterns.push(
                TriplePattern::any()
                    .with_predicate(row.predicate)
                    .with_object(row.object),
            );
        }
        for pattern in patterns {
            assert_eq!(
                overlaid.scan(pattern),
                flat.scan(pattern),
                "pattern {pattern:?} must not see the base/delta split"
            );
        }

        let snapshot_bytes = |store: &TripleStore| {
            let mut enc = SectionEncoder::new();
            store.write_snapshot(&mut enc);
            enc.into_bytes()
        };
        assert_eq!(
            snapshot_bytes(&overlaid),
            snapshot_bytes(&flat),
            "snapshot bytes must be independent of the base/delta split"
        );

        let flattened = overlaid.flattened();
        assert!(!flattened.has_delta());
        assert_eq!(
            flattened.scan(TriplePattern::any()),
            flat.scan(TriplePattern::any())
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_scans() {
        use crate::snapshot::{SnapshotReader, SnapshotWriter};
        let (store, g) = store_and_graph();
        let mut enc = SectionEncoder::new();
        store.write_snapshot(&mut enc);
        let mut writer = SnapshotWriter::new();
        writer.add_section(3, enc);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        let reader = SnapshotReader::read_from(bytes.as_slice()).unwrap();
        let mut dec = reader.section(3).unwrap();
        let loaded = TripleStore::read_snapshot(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(loaded.len(), store.len());
        for v in g.vertices() {
            for pattern in [
                TriplePattern::any().with_subject(v),
                TriplePattern::any().with_object(v),
            ] {
                assert_eq!(loaded.scan(pattern), store.scan(pattern));
            }
        }
        assert_eq!(
            loaded.scan(TriplePattern::any()),
            store.scan(TriplePattern::any())
        );
    }
}
