//! Error type shared by the RDF substrate.

use std::fmt;

/// Errors produced while building, parsing or querying RDF data graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A triple used a vertex in a role that contradicts its already-known
    /// kind (e.g. an entity IRI later used as a literal value).
    VertexKindConflict {
        /// Label of the offending vertex.
        label: String,
        /// Kind the vertex already has.
        existing: &'static str,
        /// Kind the triple required.
        requested: &'static str,
    },
    /// A predicate was used both as a relation (object is an entity) and as
    /// an attribute (object is a literal).
    PredicateKindConflict {
        /// The predicate label.
        predicate: String,
    },
    /// An edge refers to vertices that violate the typing restrictions of
    /// Definition 1 (e.g. a `subclass` edge between entities).
    InvalidEdge {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A parse error in the N-Triples-like syntax.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A referenced vertex label does not exist in the graph.
    UnknownVertex(String),
    /// A referenced predicate label does not exist in the graph.
    UnknownPredicate(String),
    /// An I/O failure during streamed ingest or serialisation.
    ///
    /// Carries the error message rather than the `std::io::Error` itself so
    /// the type stays `Clone + PartialEq`.
    Io {
        /// Message of the underlying I/O error.
        message: String,
    },
}

impl From<std::io::Error> for RdfError {
    fn from(e: std::io::Error) -> Self {
        RdfError::Io {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::VertexKindConflict {
                label,
                existing,
                requested,
            } => write!(
                f,
                "vertex `{label}` already has kind {existing}, cannot be used as {requested}"
            ),
            RdfError::PredicateKindConflict { predicate } => write!(
                f,
                "predicate `{predicate}` is used both as a relation and as an attribute"
            ),
            RdfError::InvalidEdge { reason } => write!(f, "invalid edge: {reason}"),
            RdfError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            RdfError::UnknownVertex(label) => write!(f, "unknown vertex `{label}`"),
            RdfError::UnknownPredicate(label) => write!(f, "unknown predicate `{label}`"),
            RdfError::Io { message } => write!(f, "I/O error: {message}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = RdfError::VertexKindConflict {
            label: "pub1".into(),
            existing: "entity",
            requested: "value",
        };
        let msg = err.to_string();
        assert!(msg.contains("pub1"));
        assert!(msg.contains("entity"));
        assert!(msg.contains("value"));

        let err = RdfError::Parse {
            line: 7,
            message: "missing object".into(),
        };
        assert!(err.to_string().contains("line 7"));

        let err = RdfError::UnknownVertex("ghost".into());
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RdfError::UnknownPredicate("p".into()),
            RdfError::UnknownPredicate("p".into())
        );
        assert_ne!(
            RdfError::UnknownPredicate("p".into()),
            RdfError::UnknownVertex("p".into())
        );
    }
}
