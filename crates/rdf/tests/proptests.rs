//! Property-based tests of the RDF substrate: serialisation round-trips,
//! graph-construction invariants and triple-store consistency.

use proptest::prelude::*;

use kwsearch_rdf::{ntriples, DataGraph, GraphStats, Triple, TriplePattern, TripleStore};

/// A label that is safe for entity IRIs and class names.
fn iri_label() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,8}"
}

/// A literal value, including characters that need escaping.
fn literal_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,12}").expect("valid regex")
}

/// A random well-formed triple.
fn triple() -> impl Strategy<Value = Triple> {
    prop_oneof![
        (iri_label(), iri_label(), iri_label()).prop_map(|(s, p, o)| Triple::relation(
            s,
            format!("rel_{p}"),
            o
        )),
        (iri_label(), iri_label(), literal_value()).prop_map(|(s, p, v)| Triple::attribute(
            s,
            format!("attr_{p}"),
            v
        )),
        (iri_label(), iri_label()).prop_map(|(s, c)| Triple::typed(s, format!("C{c}"))),
        (iri_label(), iri_label())
            .prop_map(|(c, d)| Triple::subclass(format!("C{c}"), format!("D{d}"))),
    ]
}

fn triples(max: usize) -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(triple(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing a graph to the N-Triples-like syntax and parsing it back
    /// yields the same set of triples.
    #[test]
    fn ntriples_round_trip(ts in triples(40)) {
        let mut graph = DataGraph::new();
        for t in &ts {
            graph.insert_triple(t).expect("generated triples are well-formed");
        }
        let document = ntriples::write_graph(&graph);
        let reparsed = ntriples::parse_graph(&document).expect("round-trip parses");
        let mut original: Vec<String> = graph.triples().iter().map(|t| t.to_string()).collect();
        let mut round_tripped: Vec<String> =
            reparsed.triples().iter().map(|t| t.to_string()).collect();
        original.sort();
        round_tripped.sort();
        prop_assert_eq!(original, round_tripped);
    }

    /// Inserting the same triples twice never creates additional vertices or
    /// edges (idempotence of graph construction).
    #[test]
    fn insertion_is_idempotent(ts in triples(30)) {
        let mut once = DataGraph::new();
        for t in &ts {
            once.insert_triple(t).unwrap();
        }
        let mut twice = DataGraph::new();
        for t in ts.iter().chain(ts.iter()) {
            twice.insert_triple(t).unwrap();
        }
        prop_assert_eq!(once.vertex_count(), twice.vertex_count());
        prop_assert_eq!(once.edge_count(), twice.edge_count());
    }

    /// The statistics invariants hold for arbitrary graphs: totals add up
    /// and the edge partition covers every edge exactly once.
    #[test]
    fn stats_partition_vertices_and_edges(ts in triples(40)) {
        let mut graph = DataGraph::new();
        for t in &ts {
            graph.insert_triple(t).unwrap();
        }
        let stats = GraphStats::compute(&graph);
        prop_assert_eq!(stats.total_vertices(), graph.vertex_count());
        prop_assert_eq!(stats.total_edges(), graph.edge_count());
        prop_assert!(stats.untyped_entities <= stats.entities);
    }

    /// Triple-store scans agree with a naive filter over all edges, for
    /// every combination of bound positions.
    #[test]
    fn store_scans_match_naive_filtering(ts in triples(30)) {
        let mut graph = DataGraph::new();
        for t in &ts {
            graph.insert_triple(t).unwrap();
        }
        let store = TripleStore::build(&graph);
        prop_assert_eq!(store.len(), graph.edge_count());

        // Probe with every edge of the graph as a pattern source.
        for e in graph.edges().take(10) {
            let edge = graph.edge(e);
            let patterns = [
                TriplePattern::any().with_subject(edge.from),
                TriplePattern::any().with_predicate(edge.label),
                TriplePattern::any().with_object(edge.to),
                TriplePattern::any().with_subject(edge.from).with_object(edge.to),
                TriplePattern::any()
                    .with_subject(edge.from)
                    .with_predicate(edge.label)
                    .with_object(edge.to),
            ];
            for pattern in patterns {
                let scanned = store.scan(pattern);
                let expected = graph
                    .edges()
                    .filter(|&other| {
                        let o = graph.edge(other);
                        pattern.subject.is_none_or(|s| s == o.from)
                            && pattern.predicate.is_none_or(|p| p == o.label)
                            && pattern.object.is_none_or(|obj| obj == o.to)
                    })
                    .count();
                prop_assert_eq!(scanned.len(), expected);
            }
        }
    }

    /// Adjacency lists and the undirected neighbour view are consistent.
    #[test]
    fn adjacency_is_consistent_with_edges(ts in triples(30)) {
        let mut graph = DataGraph::new();
        for t in &ts {
            graph.insert_triple(t).unwrap();
        }
        let mut out_total = 0usize;
        let mut in_total = 0usize;
        for v in graph.vertices() {
            out_total += graph.out_edges(v).len();
            in_total += graph.in_edges(v).len();
            prop_assert_eq!(graph.neighbors(v).len(), graph.degree(v));
        }
        prop_assert_eq!(out_total, graph.edge_count());
        prop_assert_eq!(in_total, graph.edge_count());
    }
}
