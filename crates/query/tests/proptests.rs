//! Property-based equivalence tests of the streaming evaluator against the
//! materializing reference implementation (the evaluator this crate shipped
//! before the streaming rewrite, kept in `kwsearch_query::eval::reference`),
//! across random graphs and random conjunctive queries, with and without
//! answer limits.

use proptest::prelude::*;

use kwsearch_query::eval::{reference, DEFAULT_MAX_INTERMEDIATE_ROWS};
use kwsearch_query::{ConjunctiveQuery, Evaluator, QueryBuilder};
use kwsearch_rdf::{DataGraph, Triple};

const CLASSES: [&str; 3] = ["Alpha", "Beta", "Gamma"];
const VALUES: [&str; 5] = ["red", "green", "blue", "cyan", "amber"];
const RELATIONS: [&str; 3] = ["linksTo", "near", "uses"];
const VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];

/// A compact random data graph: entities with types, attributes from a small
/// value pool, and random relations — the same shape the core crate's
/// exploration proptests use.
#[derive(Debug, Clone)]
struct GraphSpec {
    types: Vec<(usize, usize)>,
    attrs: Vec<(usize, usize)>,
    rels: Vec<(usize, usize, usize)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (
        proptest::collection::vec((0usize..10, 0usize..CLASSES.len()), 2..10),
        proptest::collection::vec((0usize..10, 0usize..VALUES.len()), 2..10),
        proptest::collection::vec((0usize..10, 0usize..RELATIONS.len(), 0usize..10), 0..14),
    )
        .prop_map(|(types, attrs, rels)| GraphSpec { types, attrs, rels })
}

fn build_graph(spec: &GraphSpec) -> DataGraph {
    let mut graph = DataGraph::new();
    for (e, c) in &spec.types {
        graph
            .insert_triple(&Triple::typed(format!("e{e}"), CLASSES[*c]))
            .expect("well-formed triple");
    }
    for (e, v) in &spec.attrs {
        graph
            .insert_triple(&Triple::attribute(format!("e{e}"), "label", VALUES[*v]))
            .expect("well-formed triple");
    }
    for (s, r, o) in &spec.rels {
        graph
            .insert_triple(&Triple::relation(
                format!("e{s}"),
                RELATIONS[*r],
                format!("e{o}"),
            ))
            .expect("well-formed triple");
    }
    graph
}

/// A random conjunctive query: each atom is a type/attribute/relation pattern
/// over a pool of four variables, plus a distinguished-variable count (0
/// declares none, i.e. all variables are distinguished by default).
#[derive(Debug, Clone)]
struct QuerySpec {
    atoms: Vec<(usize, usize, usize, usize)>,
    distinguished: usize,
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        proptest::collection::vec(
            (0usize..4, 0usize..VARS.len(), 0usize..VARS.len(), 0usize..6),
            1..5,
        ),
        0usize..4,
    )
        .prop_map(|(atoms, distinguished)| QuerySpec {
            atoms,
            distinguished,
        })
}

fn build_query(spec: &QuerySpec) -> ConjunctiveQuery {
    let mut builder = QueryBuilder::new();
    for &(kind, a, b, c) in &spec.atoms {
        builder = match kind {
            0 => builder.class_pattern(VARS[a], CLASSES[c % CLASSES.len()]),
            1 => builder.attribute_pattern(VARS[a], "label", VALUES[c % VALUES.len()]),
            2 => builder.relation_pattern(VARS[a], RELATIONS[c % RELATIONS.len()], VARS[b]),
            _ => builder.attribute_variable(VARS[a], "label", VARS[b]),
        };
    }
    let mut query = builder.build();
    // Distinguish a prefix of the variables that actually occur, so the
    // query is always well-formed; 0 leaves the default (all variables).
    let present: Vec<String> = query.variables().into_iter().collect();
    for v in present.iter().take(spec.distinguished.min(present.len())) {
        query.add_distinguished(v);
    }
    query
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unlimited evaluation: the streaming evaluator returns exactly the
    /// answer set (same rows, same order) of the materializing reference.
    #[test]
    fn streaming_equals_the_materializing_reference(
        gspec in graph_spec(),
        qspec in query_spec(),
    ) {
        let graph = build_graph(&gspec);
        let query = build_query(&qspec);
        let evaluator = Evaluator::new(&graph);
        let streaming = evaluator.evaluate(&query).expect("small graphs stay in budget");
        let materializing = reference::evaluate_with_limit(
            &graph,
            evaluator.store(),
            &query,
            None,
            DEFAULT_MAX_INTERMEDIATE_ROWS,
        )
        .expect("small graphs stay in budget");
        prop_assert_eq!(streaming, materializing);
    }

    /// Limited evaluation returns exactly `min(n, total_distinct)` answers,
    /// and they are precisely the first `n` answers of the unlimited run —
    /// the limit only truncates, it never changes or reorders answers.
    #[test]
    fn limited_evaluation_is_a_prefix_of_the_full_answer_set(
        gspec in graph_spec(),
        qspec in query_spec(),
    ) {
        let graph = build_graph(&gspec);
        let query = build_query(&qspec);
        let evaluator = Evaluator::new(&graph);
        let full = evaluator.evaluate(&query).expect("small graphs stay in budget");
        for n in [1usize, 2, 5, 17] {
            let limited = evaluator
                .evaluate_with_limit(&query, Some(n))
                .expect("limited runs do at most the work of the full run");
            let expected = n.min(full.len());
            prop_assert_eq!(
                limited.len(),
                expected,
                "limit {} must return min(limit, {})",
                n,
                full.len()
            );
            prop_assert_eq!(limited.rows(), &full.rows()[..expected]);
            prop_assert_eq!(limited.variables(), full.variables());
        }
    }

    /// The streaming limit never returns fewer answers than the reference's
    /// over-collect heuristic — the shortfall bug is fixed, not relocated.
    #[test]
    fn streaming_limit_never_falls_short_of_the_reference(
        gspec in graph_spec(),
        qspec in query_spec(),
    ) {
        let graph = build_graph(&gspec);
        let query = build_query(&qspec);
        let evaluator = Evaluator::new(&graph);
        for n in [1usize, 3, 10] {
            let streaming = evaluator
                .evaluate_with_limit(&query, Some(n))
                .expect("small graphs stay in budget");
            let materializing = reference::evaluate_with_limit(
                &graph,
                evaluator.store(),
                &query,
                Some(n),
                DEFAULT_MAX_INTERMEDIATE_ROWS,
            )
            .expect("small graphs stay in budget");
            prop_assert!(
                streaming.len() >= materializing.len(),
                "limit {}: streaming returned {} answers, reference {}",
                n,
                streaming.len(),
                materializing.len()
            );
        }
    }
}
