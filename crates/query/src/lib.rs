//! Conjunctive queries over RDF data graphs.
//!
//! The paper's keyword-search pipeline does not compute answers directly:
//! it computes **conjunctive queries** (Definition 2) from the keywords and
//! hands the query the user selects to "the underlying database engine".
//! This crate is that engine:
//!
//! * [`model`] — the query language: variables, constants, atoms
//!   `P(v1, v2)` and [`ConjunctiveQuery`] with
//!   distinguished / undistinguished variables,
//! * [`sparql`] and [`sql`] — rendering of a conjunctive query into the
//!   SPARQL and single-table SQL forms shown in Fig. 1c of the paper,
//! * [`plan`] — greedy, selectivity-driven join ordering and the compiled
//!   query form (predicates, constants and variable slots resolved once per
//!   query),
//! * [`eval`] — the streaming evaluator implementing the answer semantics of
//!   Definition 3 against a [`DataGraph`](kwsearch_rdf::DataGraph) via the
//!   indexed [`TripleStore`](kwsearch_rdf::TripleStore); answers are yielded
//!   one at a time, so a limited evaluation ("until finding at least 10
//!   answers", the paper's Fig. 5 metric) terminates as early as possible,
//! * [`bindings`] — answer sets (variable bindings and projections).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bindings;
pub mod builder;
pub mod eval;
pub mod model;
pub mod plan;
pub mod sparql;
pub mod sql;

pub use bindings::AnswerSet;
pub use builder::QueryBuilder;
pub use eval::{evaluate, AnswerStream, EvalError, Evaluator};
pub use model::{Atom, ConjunctiveQuery, QueryTerm};
pub use plan::{plan_atoms, CompiledQuery, QueryPlan};
