//! Evaluation of conjunctive queries against a data graph (Definition 3).
//!
//! The evaluator runs a **streaming, pipelined index-nested-loop join**: the
//! query is compiled once into a [`CompiledQuery`] (atoms in the order chosen
//! by [`crate::plan`], with predicates, constants and variable slots
//! resolved up front), and a depth-first binding search over the compiled
//! atoms yields projected, deduplicated answers one at a time through
//! [`AnswerStream`]. Because answers are produced incrementally,
//! [`Evaluator::evaluate_with_limit`] stops the instant the requested number
//! of **distinct** answers exists — the paper's Fig. 5 experiment processes
//! queries "until finding at least 10 answers", and that phase must not pay
//! for answers nobody asked for.
//!
//! The previous breadth-first evaluator materialized every intermediate join
//! result before applying the limit; it is kept verbatim in [`reference`](mod@reference) as
//! the executable specification that the streaming evaluator is tested (and
//! benchmarked) against.

use std::collections::HashSet;
use std::fmt;

use kwsearch_rdf::triple::EdgeKind;
use kwsearch_rdf::{DataGraph, SpoRow, TriplePattern, TripleStore, VertexId};

use crate::bindings::AnswerSet;
use crate::model::ConjunctiveQuery;
use crate::plan::{CompiledPattern, CompiledQuery, Slot};

/// Default budget on visited (accepted) bindings; prevents accidental cross
/// products from exhausting time and memory.
pub const DEFAULT_MAX_INTERMEDIATE_ROWS: usize = 5_000_000;

/// Errors raised during query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A distinguished variable does not occur in any atom and can therefore
    /// never be bound.
    UnboundDistinguishedVariable(String),
    /// The evaluation exhausted its visited-bindings budget before producing
    /// all requested answers.
    TooManyIntermediateRows {
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundDistinguishedVariable(v) => {
                write!(
                    f,
                    "distinguished variable ?{v} does not occur in the query body"
                )
            }
            EvalError::TooManyIntermediateRows { limit } => {
                write!(
                    f,
                    "evaluation exceeded the intermediate result limit of {limit} rows"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Resolves a constant appearing in subject position to a vertex, respecting
/// the vertex kind implied by the edge kind.
pub(crate) fn resolve_subject_constant(
    graph: &DataGraph,
    kind: EdgeKind,
    constant: &str,
) -> Option<VertexId> {
    match kind {
        EdgeKind::SubClass => graph.class(constant),
        _ => graph.entity(constant),
    }
}

/// Resolves a constant appearing in object position to a vertex, respecting
/// the vertex kind implied by the edge kind.
pub(crate) fn resolve_object_constant(
    graph: &DataGraph,
    kind: EdgeKind,
    constant: &str,
) -> Option<VertexId> {
    match kind {
        EdgeKind::Relation => graph.entity(constant),
        EdgeKind::Attribute => graph.value(constant),
        EdgeKind::Type | EdgeKind::SubClass => graph.class(constant),
    }
}

/// Owned or borrowed triple store backing an [`Evaluator`].
enum StoreHolder<'g> {
    Owned(TripleStore),
    Borrowed(&'g TripleStore),
}

impl StoreHolder<'_> {
    fn get(&self) -> &TripleStore {
        match self {
            StoreHolder::Owned(s) => s,
            StoreHolder::Borrowed(s) => s,
        }
    }
}

/// A reusable evaluator bound to one data graph.
pub struct Evaluator<'g> {
    graph: &'g DataGraph,
    store: StoreHolder<'g>,
    max_intermediate_rows: usize,
}

impl<'g> Evaluator<'g> {
    /// Creates an evaluator, building the triple-store index for `graph`.
    pub fn new(graph: &'g DataGraph) -> Self {
        Self::with_store(graph, TripleStore::build(graph))
    }

    /// Creates an evaluator reusing an existing store (the store must have
    /// been built from the same graph).
    pub fn with_store(graph: &'g DataGraph, store: TripleStore) -> Self {
        Self {
            graph,
            store: StoreHolder::Owned(store),
            max_intermediate_rows: DEFAULT_MAX_INTERMEDIATE_ROWS,
        }
    }

    /// Creates an evaluator borrowing an existing store (the store must have
    /// been built from the same graph). Useful when many queries are
    /// evaluated against the same data, e.g. by the keyword-search engine.
    pub fn with_borrowed_store(graph: &'g DataGraph, store: &'g TripleStore) -> Self {
        Self {
            graph,
            store: StoreHolder::Borrowed(store),
            max_intermediate_rows: DEFAULT_MAX_INTERMEDIATE_ROWS,
        }
    }

    /// Overrides the visited-bindings budget.
    pub fn with_max_intermediate_rows(mut self, limit: usize) -> Self {
        self.max_intermediate_rows = limit;
        self
    }

    /// The underlying triple store (exposed for benchmarks).
    pub fn store(&self) -> &TripleStore {
        self.store.get()
    }

    /// Evaluates `query`, returning all answers.
    pub fn evaluate(&self, query: &ConjunctiveQuery) -> Result<AnswerSet, EvalError> {
        self.evaluate_with_limit(query, None)
    }

    /// Evaluates `query`, stopping the instant `limit` **distinct** answers
    /// have been found (the paper's Fig. 5 experiment processes queries
    /// "until finding at least 10 answers").
    ///
    /// Returns exactly `min(limit, total_distinct_answers)` rows: duplicates
    /// produced by the projection onto the distinguished variables never
    /// count towards the limit, and the visited-bindings budget only trips
    /// when it is exhausted *before* the requested answers were found.
    pub fn evaluate_with_limit(
        &self,
        query: &ConjunctiveQuery,
        limit: Option<usize>,
    ) -> Result<AnswerSet, EvalError> {
        let mut stream = self.answer_stream(query)?;
        let cap = limit.unwrap_or(usize::MAX);
        let mut rows = Vec::new();
        while rows.len() < cap {
            match stream.next() {
                Some(Ok(row)) => rows.push(row),
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(AnswerSet::from_distinct(stream.into_distinguished(), rows))
    }

    /// Compiles `query` and returns a lazy stream over its distinct answers.
    ///
    /// The stream performs a depth-first search over the compiled atoms and
    /// yields each projected answer as soon as the first binding producing it
    /// is found — pulling `n` items costs only the work needed to reach the
    /// first `n` distinct answers.
    pub fn answer_stream(&self, query: &ConjunctiveQuery) -> Result<AnswerStream<'_>, EvalError> {
        let compiled = CompiledQuery::compile(query, self.graph, self.store.get())?;
        let variable_count = compiled.variables.len();
        Ok(AnswerStream {
            store: self.store.get(),
            row: vec![None; variable_count],
            stack: Vec::with_capacity(compiled.atoms.len()),
            seen: HashSet::new(),
            visited: 0,
            budget: self.max_intermediate_rows,
            started: false,
            done: false,
            compiled,
        })
    }
}

/// One level of the depth-first binding search: the enumeration state of one
/// compiled atom, plus the variable slots this level bound (to undo on
/// backtracking).
#[derive(Debug, Default)]
struct Frame {
    pattern_idx: usize,
    matches: Option<Vec<SpoRow>>,
    match_idx: usize,
    bound_subject: Option<usize>,
    bound_object: Option<usize>,
}

/// Builds the triple pattern for `pattern` under the current bindings: a
/// compiled constant or an already-bound variable pins the position, an
/// unbound variable leaves it as a wildcard.
fn scan_pattern(
    store: &TripleStore,
    row: &[Option<VertexId>],
    pattern: &CompiledPattern,
) -> Vec<SpoRow> {
    let mut tp = TriplePattern::any().with_predicate(pattern.label);
    match pattern.subject {
        Slot::Const(v) => tp = tp.with_subject(v),
        Slot::Var(s) => {
            if let Some(v) = row[s] {
                tp = tp.with_subject(v);
            }
        }
    }
    match pattern.object {
        Slot::Const(v) => tp = tp.with_object(v),
        Slot::Var(o) => {
            if let Some(v) = row[o] {
                tp = tp.with_object(v);
            }
        }
    }
    store.scan(tp)
}

/// Extends the current bindings with one matched triple, recording the newly
/// bound slots in `frame`. Returns `false` (with `row` unchanged) when the
/// match is inconsistent with existing bindings, e.g. a self-join
/// `knows(x, x)` on a non-loop edge.
fn bind(
    row: &mut [Option<VertexId>],
    frame: &mut Frame,
    pattern: &CompiledPattern,
    m: SpoRow,
) -> bool {
    debug_assert!(frame.bound_subject.is_none() && frame.bound_object.is_none());
    if let Slot::Var(s) = pattern.subject {
        match row[s] {
            None => {
                row[s] = Some(m.subject);
                frame.bound_subject = Some(s);
            }
            Some(v) if v != m.subject => return false,
            Some(_) => {}
        }
    }
    if let Slot::Var(o) = pattern.object {
        match row[o] {
            None => {
                row[o] = Some(m.object);
                frame.bound_object = Some(o);
            }
            Some(v) if v != m.object => {
                if let Some(s) = frame.bound_subject.take() {
                    row[s] = None;
                }
                return false;
            }
            Some(_) => {}
        }
    }
    true
}

/// A lazy, deduplicating stream over the answers of a compiled query.
///
/// Created by [`Evaluator::answer_stream`]. Each item is one projected answer
/// row (positionally matching [`AnswerStream::distinguished`]); rows are
/// yielded in the same order the materializing evaluator would produce them,
/// with duplicates (projections collapsing different bindings onto the same
/// answer) filtered out before they are yielded. An
/// [`EvalError::TooManyIntermediateRows`] item is produced — and the stream
/// ends — if the visited-bindings budget is exhausted while searching for the
/// next answer.
pub struct AnswerStream<'e> {
    store: &'e TripleStore,
    compiled: CompiledQuery,
    row: Vec<Option<VertexId>>,
    stack: Vec<Frame>,
    seen: HashSet<Vec<VertexId>>,
    visited: usize,
    budget: usize,
    started: bool,
    done: bool,
}

impl AnswerStream<'_> {
    /// The variables answers are projected onto.
    pub fn distinguished(&self) -> &[String] {
        &self.compiled.distinguished
    }

    /// Consumes the stream, returning the projected variables.
    pub fn into_distinguished(self) -> Vec<String> {
        self.compiled.distinguished
    }

    /// Number of bindings accepted so far (the unit the
    /// `max_intermediate_rows` budget is charged in).
    pub fn visited_bindings(&self) -> usize {
        self.visited
    }
}

impl Iterator for AnswerStream<'_> {
    type Item = Result<Vec<VertexId>, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.compiled.atoms.is_empty() {
                self.done = true;
                return None;
            }
            self.stack.push(Frame::default());
        }
        loop {
            if self.visited > self.budget {
                self.done = true;
                return Some(Err(EvalError::TooManyIntermediateRows {
                    limit: self.budget,
                }));
            }
            let Some(depth) = self.stack.len().checked_sub(1) else {
                self.done = true;
                return None;
            };
            let atom = &self.compiled.atoms[depth];
            let frame = &mut self.stack[depth];
            // Undo what this level bound for its previous match before
            // advancing to the next one.
            if let Some(s) = frame.bound_subject.take() {
                self.row[s] = None;
            }
            if let Some(o) = frame.bound_object.take() {
                self.row[o] = None;
            }
            let mut advanced = false;
            'patterns: while frame.pattern_idx < atom.patterns.len() {
                let pattern = &atom.patterns[frame.pattern_idx];
                if frame.matches.is_none() {
                    frame.matches = Some(scan_pattern(self.store, &self.row, pattern));
                }
                // lint: allow(no-unwrap, reason = "the branch above fills frame.matches when it is None, so it is Some here")
                let match_count = frame.matches.as_ref().expect("just populated").len();
                while frame.match_idx < match_count {
                    // lint: allow(no-unwrap, reason = "frame.matches was populated before entering this loop and is not cleared inside it")
                    let m = frame.matches.as_ref().expect("just populated")[frame.match_idx];
                    frame.match_idx += 1;
                    if bind(&mut self.row, frame, pattern, m) {
                        advanced = true;
                        break 'patterns;
                    }
                }
                frame.pattern_idx += 1;
                frame.matches = None;
                frame.match_idx = 0;
            }
            if !advanced {
                self.stack.pop();
                continue;
            }
            self.visited += 1;
            if depth + 1 == self.compiled.atoms.len() {
                // Full binding: project, dedup, yield.
                let projected: Vec<VertexId> = self
                    .compiled
                    .projection
                    .iter()
                    // lint: allow(no-unwrap, reason = "this branch runs only once every atom is matched, which binds every variable in the row")
                    .map(|&i| self.row[i].expect("all query variables are bound at full depth"))
                    .collect();
                if self.seen.insert(projected.clone()) {
                    return Some(Ok(projected));
                }
                // Duplicate projection: keep searching from this frame.
            } else {
                self.stack.push(Frame::default());
            }
        }
    }
}

/// One-shot convenience wrapper around [`Evaluator`].
pub fn evaluate(graph: &DataGraph, query: &ConjunctiveQuery) -> Result<AnswerSet, EvalError> {
    Evaluator::new(graph).evaluate(query)
}

#[doc(hidden)]
pub mod reference {
    //! The pre-streaming, breadth-first evaluator, kept verbatim as the
    //! executable specification of Definition 3.
    //!
    //! It materializes every intermediate join result before the limit is
    //! applied, so it cannot terminate early — tests use it to check that the
    //! streaming evaluator returns identical answer sets, and the `perf_topk`
    //! benchmark uses it as the answer-phase baseline the streaming pipeline
    //! is measured against. Not part of the supported API.

    use std::collections::HashMap;

    use kwsearch_rdf::{DataGraph, TriplePattern, TripleStore, VertexId};

    use super::{resolve_object_constant, resolve_subject_constant, EvalError};
    use crate::bindings::AnswerSet;
    use crate::model::{Atom, ConjunctiveQuery, QueryTerm};
    use crate::plan::plan_atoms;

    type Row = Vec<Option<VertexId>>;

    /// Evaluates `query` by materializing one full intermediate result per
    /// atom, then projecting, deduplicating and truncating to `limit` — the
    /// exact behaviour (including the `limit * 4` over-collect heuristic and
    /// its shortfall bug) of the evaluator this crate shipped before the
    /// streaming rewrite.
    pub fn evaluate_with_limit(
        graph: &DataGraph,
        store: &TripleStore,
        query: &ConjunctiveQuery,
        limit: Option<usize>,
        max_intermediate_rows: usize,
    ) -> Result<AnswerSet, EvalError> {
        let variables: Vec<String> = query.variables().into_iter().collect();
        let var_index: HashMap<&str, usize> = variables
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        let distinguished = query.effective_distinguished();
        for d in &distinguished {
            if !var_index.contains_key(d.as_str()) {
                return Err(EvalError::UnboundDistinguishedVariable(d.clone()));
            }
        }

        if query.is_empty() {
            return Ok(AnswerSet::empty(distinguished));
        }

        let plan = plan_atoms(query, graph, store);
        let mut rows: Vec<Row> = vec![vec![None; variables.len()]];
        for &atom_idx in &plan.order {
            let atom = &query.atoms()[atom_idx];
            rows = join_atom(graph, store, atom, &var_index, rows, max_intermediate_rows)?;
            if rows.is_empty() {
                return Ok(AnswerSet::empty(distinguished));
            }
        }

        let proj_indices: Vec<usize> = distinguished
            .iter()
            .map(|d| var_index[d.as_str()])
            .collect();
        let mut projected = Vec::with_capacity(rows.len());
        for row in rows {
            let out: Option<Vec<VertexId>> = proj_indices.iter().map(|&i| row[i]).collect();
            // lint: allow(no-unwrap, reason = "rows surviving every join bind all variables; an unbound slot here is an evaluator bug")
            let out = out.expect("all query variables are bound after the final join");
            projected.push(out);
            if let Some(limit) = limit {
                if projected.len() >= limit.saturating_mul(4).max(limit) {
                    break;
                }
            }
        }
        let mut answers = AnswerSet::new(distinguished.clone(), projected);
        if let Some(limit) = limit {
            if answers.len() > limit {
                let rows = answers.rows()[..limit].to_vec();
                answers = AnswerSet::new(distinguished, rows);
            }
        }
        Ok(answers)
    }

    fn join_atom(
        graph: &DataGraph,
        store: &TripleStore,
        atom: &Atom,
        var_index: &HashMap<&str, usize>,
        rows: Vec<Row>,
        max_intermediate_rows: usize,
    ) -> Result<Vec<Row>, EvalError> {
        let labels = graph.edge_labels_named(&atom.predicate);
        if labels.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for row in &rows {
            for &label in &labels {
                let kind = graph.edge_label(label).kind();
                let subject_bound = match &atom.subject {
                    QueryTerm::Variable(v) => row[var_index[v.as_str()]],
                    other => {
                        let c = other
                            .as_constant()
                            // lint: allow(no-unwrap, reason = "the match arm above handles Variable, so this term can only be a constant")
                            .expect("non-variable term is a constant");
                        match resolve_subject_constant(graph, kind, c) {
                            Some(v) => Some(v),
                            None => continue,
                        }
                    }
                };
                let object_bound = match &atom.object {
                    QueryTerm::Variable(v) => row[var_index[v.as_str()]],
                    other => {
                        let c = other
                            .as_constant()
                            // lint: allow(no-unwrap, reason = "the match arm above handles Variable, so this term can only be a constant")
                            .expect("non-variable term is a constant");
                        match resolve_object_constant(graph, kind, c) {
                            Some(v) => Some(v),
                            None => continue,
                        }
                    }
                };
                let mut pattern = TriplePattern::any().with_predicate(label);
                if let Some(s) = subject_bound {
                    pattern = pattern.with_subject(s);
                }
                if let Some(o) = object_bound {
                    pattern = pattern.with_object(o);
                }
                for matched in store.scan(pattern) {
                    let mut new_row = row.clone();
                    if let QueryTerm::Variable(v) = &atom.subject {
                        new_row[var_index[v.as_str()]] = Some(matched.subject);
                    }
                    if let QueryTerm::Variable(v) = &atom.object {
                        let idx = var_index[v.as_str()];
                        if let Some(existing) = new_row[idx] {
                            if existing != matched.object {
                                continue;
                            }
                        }
                        new_row[idx] = Some(matched.object);
                    }
                    out.push(new_row);
                    if out.len() > max_intermediate_rows {
                        return Err(EvalError::TooManyIntermediateRows {
                            limit: max_intermediate_rows,
                        });
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::model::QueryTerm;
    use kwsearch_rdf::fixtures::figure1_graph;
    use kwsearch_rdf::Triple;
    use std::collections::HashMap;

    #[test]
    fn the_papers_example_query_returns_the_expected_answer() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .class_pattern("x", "Publication")
            .attribute_pattern("x", "year", "2006")
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .relation_pattern("y", "worksAt", "z")
            .attribute_pattern("z", "name", "AIFB")
            .distinguished(["x", "y", "z"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 1);
        let labelled = answers.labelled_rows(&g);
        let row: HashMap<_, _> = labelled[0].iter().cloned().collect();
        assert_eq!(row["x"], "pub1URI");
        assert_eq!(row["y"], "re2URI");
        assert_eq!(row["z"], "inst1URI");
    }

    #[test]
    fn joins_over_shared_variables() {
        let g = figure1_graph();
        // All researchers that authored a publication.
        let q = QueryBuilder::new()
            .class_pattern("p", "Publication")
            .relation_pattern("p", "author", "a")
            .class_pattern("a", "Researcher")
            .distinguished(["a"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 2, "re1 and re2 both authored publications");
    }

    #[test]
    fn default_distinguished_variables_are_all_variables() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("p", "author", "a")
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.variables().len(), 2);
        assert_eq!(answers.len(), 3, "three author edges in the fixture");
    }

    #[test]
    fn constant_subject_atoms_work() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .atom("author", QueryTerm::iri("pub1URI"), QueryTerm::var("a"))
            .distinguished(["a"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn subclass_atoms_with_constants() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .atom("subclass", QueryTerm::var("c"), QueryTerm::iri("Agent"))
            .distinguished(["c"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(
            answers.len(),
            2,
            "Institute and Person are subclasses of Agent"
        );
    }

    #[test]
    fn unknown_predicate_or_constant_yields_empty_answers() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("x", "missingPredicate", "y")
            .build();
        assert!(evaluate(&g, &q).unwrap().is_empty());

        let q = QueryBuilder::new()
            .attribute_pattern("x", "name", "No Such Name")
            .build();
        assert!(evaluate(&g, &q).unwrap().is_empty());
    }

    #[test]
    fn unbound_distinguished_variable_is_an_error() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("x", "author", "y")
            .distinguished(["z"])
            .build();
        match evaluate(&g, &q) {
            Err(EvalError::UnboundDistinguishedVariable(v)) => assert_eq!(v, "z"),
            other => panic!("expected unbound-variable error, got {other:?}"),
        }
    }

    #[test]
    fn empty_query_has_no_answers() {
        let g = figure1_graph();
        let q = ConjunctiveQuery::new();
        let answers = evaluate(&g, &q).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn cyclic_queries_are_supported() {
        // Two researchers authoring the same publication and working at the
        // same institute form a cycle in the query graph.
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("p", "author", "a1")
            .relation_pattern("p", "author", "a2")
            .relation_pattern("a1", "worksAt", "i")
            .relation_pattern("a2", "worksAt", "i")
            .distinguished(["a1", "a2"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        // (re1, re1), (re1, re2), (re2, re1), (re2, re2) — all pairs of pub1's
        // authors working at inst1.
        assert_eq!(answers.len(), 4);
    }

    #[test]
    fn answer_limit_is_respected() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("p", "author", "a")
            .build();
        let evaluator = Evaluator::new(&g);
        let answers = evaluator.evaluate_with_limit(&q, Some(1)).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn intermediate_row_cap_triggers() {
        let g = figure1_graph();
        // A deliberately unconstrained cross product.
        let q = QueryBuilder::new()
            .relation_pattern("a", "author", "b")
            .relation_pattern("c", "worksAt", "d")
            .relation_pattern("e", "hasProject", "f")
            .build();
        let evaluator = Evaluator::new(&g).with_max_intermediate_rows(3);
        match evaluator.evaluate(&q) {
            Err(EvalError::TooManyIntermediateRows { limit }) => assert_eq!(limit, 3),
            other => panic!("expected row-cap error, got {other:?}"),
        }
    }

    #[test]
    fn self_join_variables_must_agree() {
        let g = figure1_graph();
        // worksAt(x, x) can never hold.
        let q = QueryBuilder::new()
            .relation_pattern("x", "worksAt", "x")
            .build();
        assert!(evaluate(&g, &q).unwrap().is_empty());
    }

    #[test]
    fn evaluation_matches_definition_3_on_type_atoms() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .class_pattern("x", "Researcher")
            .distinguished(["x"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        let labels: Vec<&str> = answers
            .labelled_rows(&g)
            .into_iter()
            .map(|row| row[0].1)
            .collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"re1URI"));
        assert!(labels.contains(&"re2URI"));
    }

    /// Two hub entities each linking to 8 targets: projecting onto the hub
    /// collapses 16 bindings to 2 distinct answers (> ¾ collapse).
    fn collapsing_graph() -> DataGraph {
        let mut g = DataGraph::new();
        for hub in ["hubA", "hubB"] {
            for t in 0..8 {
                g.insert_triple(&Triple::relation(hub, "linksTo", format!("{hub}-t{t}")))
                    .expect("well-formed triple");
            }
        }
        g
    }

    #[test]
    fn limit_returns_min_of_limit_and_total_distinct_answers() {
        // Regression: the materializing evaluator's `limit * 4` over-collect
        // heuristic truncated *bindings*, not answers; a projection that
        // collapses more than ¾ of the bindings returned fewer than `limit`
        // distinct answers even though more exist.
        let g = collapsing_graph();
        let q = QueryBuilder::new()
            .relation_pattern("x", "linksTo", "y")
            .distinguished(["x"])
            .build();
        let evaluator = Evaluator::new(&g);

        let full = evaluator.evaluate(&q).unwrap();
        assert_eq!(full.len(), 2, "two distinct hubs");

        let limited = evaluator.evaluate_with_limit(&q, Some(2)).unwrap();
        assert_eq!(limited.len(), 2, "limit 2 must return both hubs");
        assert_eq!(limited.rows(), full.rows());

        // The reference evaluator exhibits the shortfall this test pins down.
        let short = reference::evaluate_with_limit(
            &g,
            evaluator.store(),
            &q,
            Some(2),
            DEFAULT_MAX_INTERMEDIATE_ROWS,
        )
        .unwrap();
        assert!(
            short.len() < 2,
            "the materializing evaluator over-collects 8 bindings that all \
             project onto hubA; if this starts passing the reference changed"
        );
    }

    #[test]
    fn limit_succeeds_below_the_visited_bindings_budget() {
        // Regression: the row cap used to fire even when the first `limit`
        // answers were reachable far below the cap, because every
        // intermediate row was materialized first. The streaming evaluator
        // only charges the budget for bindings it actually visits.
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("a", "author", "b")
            .relation_pattern("c", "worksAt", "d")
            .relation_pattern("e", "hasProject", "f")
            .build();
        let evaluator = Evaluator::new(&g).with_max_intermediate_rows(3);

        // Unrestricted evaluation exceeds the budget...
        assert!(matches!(
            evaluator.evaluate(&q),
            Err(EvalError::TooManyIntermediateRows { limit: 3 })
        ));
        // ...but the first answer needs exactly one accepted binding per
        // atom, well within it.
        let answers = evaluator.evaluate_with_limit(&q, Some(1)).unwrap();
        assert_eq!(answers.len(), 1);

        // The reference evaluator cannot do this: it trips the cap first.
        let reference = reference::evaluate_with_limit(&g, evaluator.store(), &q, Some(1), 3);
        assert!(matches!(
            reference,
            Err(EvalError::TooManyIntermediateRows { limit: 3 })
        ));
    }

    #[test]
    fn limit_zero_returns_no_answers() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("p", "author", "a")
            .build();
        let answers = Evaluator::new(&g).evaluate_with_limit(&q, Some(0)).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn answer_stream_visits_only_what_the_limit_needs() {
        let g = collapsing_graph();
        let q = QueryBuilder::new()
            .relation_pattern("x", "linksTo", "y")
            .build();
        let evaluator = Evaluator::new(&g);
        let mut stream = evaluator.answer_stream(&q).unwrap();
        let first = stream.next().expect("an answer exists").unwrap();
        assert_eq!(first.len(), 2, "two distinguished variables by default");
        assert_eq!(
            stream.visited_bindings(),
            1,
            "the first answer of a single-atom query costs one binding"
        );
    }

    #[test]
    fn streaming_matches_the_reference_evaluator_on_the_fixture() {
        let g = figure1_graph();
        let queries = [
            QueryBuilder::new()
                .class_pattern("p", "Publication")
                .relation_pattern("p", "author", "a")
                .distinguished(["a"])
                .build(),
            QueryBuilder::new()
                .relation_pattern("p", "author", "a")
                .relation_pattern("a", "worksAt", "i")
                .build(),
            QueryBuilder::new()
                .relation_pattern("p", "author", "a1")
                .relation_pattern("p", "author", "a2")
                .relation_pattern("a1", "worksAt", "i")
                .relation_pattern("a2", "worksAt", "i")
                .distinguished(["a1", "a2"])
                .build(),
            QueryBuilder::new()
                .atom("subclass", QueryTerm::var("c"), QueryTerm::iri("Agent"))
                .build(),
        ];
        let evaluator = Evaluator::new(&g);
        for q in &queries {
            let streaming = evaluator.evaluate(q).unwrap();
            let materializing = reference::evaluate_with_limit(
                &g,
                evaluator.store(),
                q,
                None,
                DEFAULT_MAX_INTERMEDIATE_ROWS,
            )
            .unwrap();
            assert_eq!(streaming, materializing, "query {q}");
        }
    }
}
