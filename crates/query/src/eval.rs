//! Evaluation of conjunctive queries against a data graph (Definition 3).
//!
//! The evaluator performs an index-nested-loop join over the atoms of the
//! query, in the order chosen by [`crate::plan`]. Every atom is answered by
//! a range scan on the [`TripleStore`]; partial bindings are extended and
//! filtered for consistency. The final answers are the projections onto the
//! distinguished variables.

use std::collections::HashMap;
use std::fmt;

use kwsearch_rdf::triple::EdgeKind;
use kwsearch_rdf::{DataGraph, TriplePattern, TripleStore, VertexId};

use crate::bindings::{AnswerSet, Row};
use crate::model::{Atom, ConjunctiveQuery, QueryTerm};
use crate::plan::plan_atoms;

/// Default cap on intermediate join results; prevents accidental cross
/// products from exhausting memory.
pub const DEFAULT_MAX_INTERMEDIATE_ROWS: usize = 5_000_000;

/// Errors raised during query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A distinguished variable does not occur in any atom and can therefore
    /// never be bound.
    UnboundDistinguishedVariable(String),
    /// The intermediate result exceeded the configured row limit.
    TooManyIntermediateRows {
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundDistinguishedVariable(v) => {
                write!(f, "distinguished variable ?{v} does not occur in the query body")
            }
            EvalError::TooManyIntermediateRows { limit } => {
                write!(f, "evaluation exceeded the intermediate result limit of {limit} rows")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Resolves a constant appearing in subject position to a vertex, respecting
/// the vertex kind implied by the edge kind.
pub(crate) fn resolve_subject_constant(
    graph: &DataGraph,
    kind: EdgeKind,
    constant: &str,
) -> Option<VertexId> {
    match kind {
        EdgeKind::SubClass => graph.class(constant),
        _ => graph.entity(constant),
    }
}

/// Resolves a constant appearing in object position to a vertex, respecting
/// the vertex kind implied by the edge kind.
pub(crate) fn resolve_object_constant(
    graph: &DataGraph,
    kind: EdgeKind,
    constant: &str,
) -> Option<VertexId> {
    match kind {
        EdgeKind::Relation => graph.entity(constant),
        EdgeKind::Attribute => graph.value(constant),
        EdgeKind::Type | EdgeKind::SubClass => graph.class(constant),
    }
}

/// Owned or borrowed triple store backing an [`Evaluator`].
enum StoreHolder<'g> {
    Owned(TripleStore),
    Borrowed(&'g TripleStore),
}

impl StoreHolder<'_> {
    fn get(&self) -> &TripleStore {
        match self {
            StoreHolder::Owned(s) => s,
            StoreHolder::Borrowed(s) => s,
        }
    }
}

/// A reusable evaluator bound to one data graph.
pub struct Evaluator<'g> {
    graph: &'g DataGraph,
    store: StoreHolder<'g>,
    max_intermediate_rows: usize,
}

impl<'g> Evaluator<'g> {
    /// Creates an evaluator, building the triple-store index for `graph`.
    pub fn new(graph: &'g DataGraph) -> Self {
        Self::with_store(graph, TripleStore::build(graph))
    }

    /// Creates an evaluator reusing an existing store (the store must have
    /// been built from the same graph).
    pub fn with_store(graph: &'g DataGraph, store: TripleStore) -> Self {
        Self {
            graph,
            store: StoreHolder::Owned(store),
            max_intermediate_rows: DEFAULT_MAX_INTERMEDIATE_ROWS,
        }
    }

    /// Creates an evaluator borrowing an existing store (the store must have
    /// been built from the same graph). Useful when many queries are
    /// evaluated against the same data, e.g. by the keyword-search engine.
    pub fn with_borrowed_store(graph: &'g DataGraph, store: &'g TripleStore) -> Self {
        Self {
            graph,
            store: StoreHolder::Borrowed(store),
            max_intermediate_rows: DEFAULT_MAX_INTERMEDIATE_ROWS,
        }
    }

    /// Overrides the intermediate-result safety cap.
    pub fn with_max_intermediate_rows(mut self, limit: usize) -> Self {
        self.max_intermediate_rows = limit;
        self
    }

    /// The underlying triple store (exposed for benchmarks).
    pub fn store(&self) -> &TripleStore {
        self.store.get()
    }

    /// Evaluates `query`, returning all answers.
    pub fn evaluate(&self, query: &ConjunctiveQuery) -> Result<AnswerSet, EvalError> {
        self.evaluate_with_limit(query, None)
    }

    /// Evaluates `query`, stopping once `limit` answers have been found (the
    /// paper's Fig. 5 experiment processes queries "until finding at least 10
    /// answers").
    pub fn evaluate_with_limit(
        &self,
        query: &ConjunctiveQuery,
        limit: Option<usize>,
    ) -> Result<AnswerSet, EvalError> {
        // Variable table.
        let variables: Vec<String> = query.variables().into_iter().collect();
        let var_index: HashMap<&str, usize> = variables
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        // Distinguished variables default to all variables (paper Section VI-D).
        let distinguished: Vec<String> = if query.distinguished().is_empty() {
            variables.clone()
        } else {
            query.distinguished().to_vec()
        };
        for d in &distinguished {
            if !var_index.contains_key(d.as_str()) {
                return Err(EvalError::UnboundDistinguishedVariable(d.clone()));
            }
        }

        if query.is_empty() {
            return Ok(AnswerSet::empty(distinguished));
        }

        let plan = plan_atoms(query, self.graph, self.store.get());
        let mut rows: Vec<Row> = vec![vec![None; variables.len()]];
        for &atom_idx in &plan.order {
            let atom = &query.atoms()[atom_idx];
            rows = self.join_atom(atom, &var_index, rows)?;
            if rows.is_empty() {
                return Ok(AnswerSet::empty(distinguished));
            }
        }

        // Project onto the distinguished variables.
        let proj_indices: Vec<usize> = distinguished
            .iter()
            .map(|d| var_index[d.as_str()])
            .collect();
        let mut projected = Vec::with_capacity(rows.len());
        for row in rows {
            let out: Option<Vec<VertexId>> = proj_indices.iter().map(|&i| row[i]).collect();
            // Every distinguished variable occurs in some atom, and all atoms
            // have been joined, so the projection is always complete.
            let out = out.expect("all query variables are bound after the final join");
            projected.push(out);
            if let Some(limit) = limit {
                // Deduplication happens in AnswerSet::new; over-collect a bit
                // so that a limit of `n` survives duplicate projections.
                if projected.len() >= limit.saturating_mul(4).max(limit) {
                    break;
                }
            }
        }
        let mut answers = AnswerSet::new(distinguished.clone(), projected);
        if let Some(limit) = limit {
            if answers.len() > limit {
                let rows = answers.rows()[..limit].to_vec();
                answers = AnswerSet::new(distinguished, rows);
            }
        }
        Ok(answers)
    }

    /// Extends every row with the matches of one atom.
    fn join_atom(
        &self,
        atom: &Atom,
        var_index: &HashMap<&str, usize>,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, EvalError> {
        let labels = self.graph.edge_labels_named(&atom.predicate);
        if labels.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for row in &rows {
            for &label in &labels {
                let kind = self.graph.edge_label(label).kind();
                // Determine the bound subject/object for this row, either from
                // a constant or from an already-bound variable.
                let subject_bound = match &atom.subject {
                    QueryTerm::Variable(v) => row[var_index[v.as_str()]],
                    other => {
                        let c = other.as_constant().expect("non-variable term is a constant");
                        match resolve_subject_constant(self.graph, kind, c) {
                            Some(v) => Some(v),
                            None => continue,
                        }
                    }
                };
                let object_bound = match &atom.object {
                    QueryTerm::Variable(v) => row[var_index[v.as_str()]],
                    other => {
                        let c = other.as_constant().expect("non-variable term is a constant");
                        match resolve_object_constant(self.graph, kind, c) {
                            Some(v) => Some(v),
                            None => continue,
                        }
                    }
                };
                let mut pattern = TriplePattern::any().with_predicate(label);
                if let Some(s) = subject_bound {
                    pattern = pattern.with_subject(s);
                }
                if let Some(o) = object_bound {
                    pattern = pattern.with_object(o);
                }
                for matched in self.store.get().scan(pattern) {
                    let mut new_row = row.clone();
                    if let QueryTerm::Variable(v) = &atom.subject {
                        new_row[var_index[v.as_str()]] = Some(matched.subject);
                    }
                    if let QueryTerm::Variable(v) = &atom.object {
                        let idx = var_index[v.as_str()];
                        // A self-join like knows(x, x) requires both positions
                        // to agree.
                        if let Some(existing) = new_row[idx] {
                            if existing != matched.object {
                                continue;
                            }
                        }
                        new_row[idx] = Some(matched.object);
                    }
                    out.push(new_row);
                    if out.len() > self.max_intermediate_rows {
                        return Err(EvalError::TooManyIntermediateRows {
                            limit: self.max_intermediate_rows,
                        });
                    }
                }
            }
        }
        Ok(out)
    }
}

/// One-shot convenience wrapper around [`Evaluator`].
pub fn evaluate(graph: &DataGraph, query: &ConjunctiveQuery) -> Result<AnswerSet, EvalError> {
    Evaluator::new(graph).evaluate(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use kwsearch_rdf::fixtures::figure1_graph;

    #[test]
    fn the_papers_example_query_returns_the_expected_answer() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .class_pattern("x", "Publication")
            .attribute_pattern("x", "year", "2006")
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .relation_pattern("y", "worksAt", "z")
            .attribute_pattern("z", "name", "AIFB")
            .distinguished(["x", "y", "z"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 1);
        let labelled = answers.labelled_rows(&g);
        let row: HashMap<_, _> = labelled[0].iter().cloned().collect();
        assert_eq!(row["x"], "pub1URI");
        assert_eq!(row["y"], "re2URI");
        assert_eq!(row["z"], "inst1URI");
    }

    #[test]
    fn joins_over_shared_variables() {
        let g = figure1_graph();
        // All researchers that authored a publication.
        let q = QueryBuilder::new()
            .class_pattern("p", "Publication")
            .relation_pattern("p", "author", "a")
            .class_pattern("a", "Researcher")
            .distinguished(["a"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 2, "re1 and re2 both authored publications");
    }

    #[test]
    fn default_distinguished_variables_are_all_variables() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("p", "author", "a")
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.variables().len(), 2);
        assert_eq!(answers.len(), 3, "three author edges in the fixture");
    }

    #[test]
    fn constant_subject_atoms_work() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .atom("author", QueryTerm::iri("pub1URI"), QueryTerm::var("a"))
            .distinguished(["a"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn subclass_atoms_with_constants() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .atom("subclass", QueryTerm::var("c"), QueryTerm::iri("Agent"))
            .distinguished(["c"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 2, "Institute and Person are subclasses of Agent");
    }

    #[test]
    fn unknown_predicate_or_constant_yields_empty_answers() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("x", "missingPredicate", "y")
            .build();
        assert!(evaluate(&g, &q).unwrap().is_empty());

        let q = QueryBuilder::new()
            .attribute_pattern("x", "name", "No Such Name")
            .build();
        assert!(evaluate(&g, &q).unwrap().is_empty());
    }

    #[test]
    fn unbound_distinguished_variable_is_an_error() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("x", "author", "y")
            .distinguished(["z"])
            .build();
        match evaluate(&g, &q) {
            Err(EvalError::UnboundDistinguishedVariable(v)) => assert_eq!(v, "z"),
            other => panic!("expected unbound-variable error, got {other:?}"),
        }
    }

    #[test]
    fn empty_query_has_no_answers() {
        let g = figure1_graph();
        let q = ConjunctiveQuery::new();
        let answers = evaluate(&g, &q).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn cyclic_queries_are_supported() {
        // Two researchers authoring the same publication and working at the
        // same institute form a cycle in the query graph.
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("p", "author", "a1")
            .relation_pattern("p", "author", "a2")
            .relation_pattern("a1", "worksAt", "i")
            .relation_pattern("a2", "worksAt", "i")
            .distinguished(["a1", "a2"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        // (re1, re1), (re1, re2), (re2, re1), (re2, re2) — all pairs of pub1's
        // authors working at inst1.
        assert_eq!(answers.len(), 4);
    }

    #[test]
    fn answer_limit_is_respected() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .relation_pattern("p", "author", "a")
            .build();
        let evaluator = Evaluator::new(&g);
        let answers = evaluator.evaluate_with_limit(&q, Some(1)).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn intermediate_row_cap_triggers() {
        let g = figure1_graph();
        // A deliberately unconstrained cross product.
        let q = QueryBuilder::new()
            .relation_pattern("a", "author", "b")
            .relation_pattern("c", "worksAt", "d")
            .relation_pattern("e", "hasProject", "f")
            .build();
        let evaluator = Evaluator::new(&g).with_max_intermediate_rows(3);
        match evaluator.evaluate(&q) {
            Err(EvalError::TooManyIntermediateRows { limit }) => assert_eq!(limit, 3),
            other => panic!("expected row-cap error, got {other:?}"),
        }
    }

    #[test]
    fn self_join_variables_must_agree() {
        let g = figure1_graph();
        // worksAt(x, x) can never hold.
        let q = QueryBuilder::new()
            .relation_pattern("x", "worksAt", "x")
            .build();
        assert!(evaluate(&g, &q).unwrap().is_empty());
    }

    #[test]
    fn evaluation_matches_definition_3_on_type_atoms() {
        let g = figure1_graph();
        let q = QueryBuilder::new()
            .class_pattern("x", "Researcher")
            .distinguished(["x"])
            .build();
        let answers = evaluate(&g, &q).unwrap();
        let labels: Vec<&str> = answers
            .labelled_rows(&g)
            .into_iter()
            .map(|row| row[0].1)
            .collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"re1URI"));
        assert!(labels.contains(&"re2URI"));
    }
}
