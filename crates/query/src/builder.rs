//! Fluent construction of conjunctive queries.

use crate::model::{Atom, ConjunctiveQuery, QueryTerm};

/// A fluent builder for [`ConjunctiveQuery`].
///
/// ```
/// use kwsearch_query::QueryBuilder;
///
/// let query = QueryBuilder::new()
///     .class_pattern("x", "Publication")
///     .attribute_pattern("x", "year", "2006")
///     .relation_pattern("x", "author", "y")
///     .attribute_pattern("y", "name", "P. Cimiano")
///     .distinguished(["x", "y"])
///     .build();
/// assert_eq!(query.atoms().len(), 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct QueryBuilder {
    query: ConjunctiveQuery,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a raw atom.
    pub fn atom(mut self, predicate: &str, subject: QueryTerm, object: QueryTerm) -> Self {
        self.query.add_atom(Atom::new(predicate, subject, object));
        self
    }

    /// Adds a `type(?var, Class)` atom.
    pub fn class_pattern(self, var: &str, class: &str) -> Self {
        self.atom("type", QueryTerm::var(var), QueryTerm::iri(class))
    }

    /// Adds an `attr(?var, 'value')` atom.
    pub fn attribute_pattern(self, var: &str, attribute: &str, value: &str) -> Self {
        self.atom(attribute, QueryTerm::var(var), QueryTerm::literal(value))
    }

    /// Adds an `attr(?var, ?value_var)` atom binding the value to a variable.
    pub fn attribute_variable(self, var: &str, attribute: &str, value_var: &str) -> Self {
        self.atom(attribute, QueryTerm::var(var), QueryTerm::var(value_var))
    }

    /// Adds a `relation(?s, ?o)` atom between two variables.
    pub fn relation_pattern(self, subject_var: &str, relation: &str, object_var: &str) -> Self {
        self.atom(
            relation,
            QueryTerm::var(subject_var),
            QueryTerm::var(object_var),
        )
    }

    /// Adds a `subclass(Class, SuperClass)` atom.
    pub fn subclass_pattern(self, class: &str, super_class: &str) -> Self {
        self.atom(
            "subclass",
            QueryTerm::iri(class),
            QueryTerm::iri(super_class),
        )
    }

    /// Declares distinguished variables.
    pub fn distinguished<I, S>(mut self, vars: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for v in vars {
            self.query.add_distinguished(v);
        }
        self
    }

    /// Declares every variable distinguished.
    pub fn distinguish_all(mut self) -> Self {
        self.query.distinguish_all();
        self
    }

    /// Finalises the query.
    pub fn build(self) -> ConjunctiveQuery {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_atoms() {
        let q = QueryBuilder::new()
            .class_pattern("x", "Publication")
            .attribute_pattern("x", "year", "2006")
            .relation_pattern("x", "author", "y")
            .subclass_pattern("Researcher", "Person")
            .attribute_variable("y", "name", "n")
            .distinguished(["x"])
            .build();
        assert_eq!(q.len(), 5);
        assert_eq!(q.distinguished(), &["x".to_string()]);
        assert!(q.constants().contains("Researcher"));
        assert_eq!(
            q.variables().into_iter().collect::<Vec<_>>(),
            vec!["n", "x", "y"]
        );
    }

    #[test]
    fn distinguish_all_is_available_on_the_builder() {
        let q = QueryBuilder::new()
            .relation_pattern("a", "knows", "b")
            .distinguish_all()
            .build();
        assert_eq!(q.distinguished().len(), 2);
    }
}
