//! Rendering conjunctive queries as single-table SQL.
//!
//! RDF data is often stored in a relational table with three columns
//! (subject, property, object); the paper shows in Fig. 1b/1c how the
//! example query becomes a chain of self-joins over that table. This module
//! reproduces that translation: one table alias per atom, equality
//! predicates for constants, and join conditions for shared variables.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::model::{ConjunctiveQuery, QueryTerm};

/// Name of the triple table used in the generated SQL.
pub const TRIPLE_TABLE: &str = "Ex";

/// Renders `query` as a self-join SQL query over the single triple table.
pub fn to_sql(query: &ConjunctiveQuery) -> String {
    let aliases: Vec<String> = (0..query.atoms().len()).map(|i| format!("T{i}")).collect();

    // Where each variable is first bound: (alias index, column).
    let mut var_position: HashMap<&str, (usize, &'static str)> = HashMap::new();
    let mut conditions: Vec<String> = Vec::new();

    for (i, atom) in query.atoms().iter().enumerate() {
        conditions.push(format!("{}.p = '{}'", aliases[i], escape(&atom.predicate)));
        bind_position(
            &mut var_position,
            &mut conditions,
            &aliases,
            i,
            "s",
            &atom.subject,
        );
        bind_position(
            &mut var_position,
            &mut conditions,
            &aliases,
            i,
            "o",
            &atom.object,
        );
    }

    let mut select_cols: Vec<String> = Vec::new();
    let distinguished: Vec<&String> = if query.distinguished().is_empty() {
        Vec::new()
    } else {
        query.distinguished().iter().collect()
    };
    for var in &distinguished {
        if let Some((alias_idx, col)) = var_position.get(var.as_str()) {
            select_cols.push(format!("{}.{} AS {}", aliases[*alias_idx], col, var));
        }
    }
    if select_cols.is_empty() {
        select_cols.push("*".to_string());
    }

    let mut out = String::new();
    let _ = write!(out, "SELECT {}", select_cols.join(", "));
    let from: Vec<String> = aliases
        .iter()
        .map(|a| format!("{TRIPLE_TABLE} AS {a}"))
        .collect();
    let _ = write!(out, "\nFROM {}", from.join(", "));
    if !conditions.is_empty() {
        let _ = write!(out, "\nWHERE {}", conditions.join("\n  AND "));
    }
    out
}

fn bind_position<'q>(
    var_position: &mut HashMap<&'q str, (usize, &'static str)>,
    conditions: &mut Vec<String>,
    aliases: &[String],
    atom_idx: usize,
    column: &'static str,
    term: &'q QueryTerm,
) {
    match term {
        QueryTerm::Variable(v) => {
            if let Some((first_idx, first_col)) = var_position.get(v.as_str()) {
                conditions.push(format!(
                    "{}.{} = {}.{}",
                    aliases[atom_idx], column, aliases[*first_idx], first_col
                ));
            } else {
                var_position.insert(v, (atom_idx, column));
            }
        }
        QueryTerm::Iri(c) | QueryTerm::Literal(c) => {
            conditions.push(format!(
                "{}.{} = '{}'",
                aliases[atom_idx],
                column,
                escape(c)
            ));
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;

    #[test]
    fn sql_contains_one_alias_per_atom_and_all_join_conditions() {
        let q = QueryBuilder::new()
            .class_pattern("x", "Publication")
            .attribute_pattern("x", "year", "2006")
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .distinguished(["x", "y"])
            .build();
        let sql = to_sql(&q);
        for alias in ["T0", "T1", "T2", "T3"] {
            assert!(sql.contains(&format!("{TRIPLE_TABLE} AS {alias}")));
        }
        assert!(sql.contains("T0.p = 'type'"));
        assert!(sql.contains("T0.o = 'Publication'"));
        assert!(sql.contains("T1.o = '2006'"));
        // Shared variable x joins atoms 1 and 2 back to atom 0.
        assert!(sql.contains("T1.s = T0.s"));
        assert!(sql.contains("T2.s = T0.s"));
        // Shared variable y joins atom 3 to atom 2's object.
        assert!(sql.contains("T3.s = T2.o"));
        assert!(sql.starts_with("SELECT T0.s AS x, T2.o AS y"));
    }

    #[test]
    fn select_star_when_nothing_is_distinguished() {
        let q = QueryBuilder::new()
            .relation_pattern("a", "knows", "b")
            .build();
        assert!(to_sql(&q).starts_with("SELECT *"));
    }

    #[test]
    fn quotes_are_doubled() {
        let q = QueryBuilder::new()
            .attribute_pattern("x", "name", "O'Brien")
            .build();
        assert!(to_sql(&q).contains("'O''Brien'"));
    }
}
