//! Rendering conjunctive queries as SPARQL.
//!
//! The paper (Fig. 1c) shows the SPARQL form of the running example:
//!
//! ```text
//! SELECT ?x, ?y, ?z WHERE {
//!   ?x type Publication . ?x year 2006 .
//!   ?x author ?y . ?y name 'P. Cimiano' .
//!   ?y worksAt ?z . ?z name 'AIFB' }
//! ```
//!
//! We follow the same style: variables with `?`, IRIs/classes bare, literals
//! in single quotes, one triple pattern per atom.

use std::fmt::Write as _;

use crate::model::{ConjunctiveQuery, QueryTerm};

fn render_term(term: &QueryTerm) -> String {
    match term {
        QueryTerm::Variable(v) => format!("?{v}"),
        QueryTerm::Iri(v) => v.clone(),
        // Backslashes must be escaped first: a literal containing `\` would
        // otherwise render ambiguously, and a literal ending in `\` would
        // produce `'...\'` and break the quoting.
        QueryTerm::Literal(v) => {
            format!("'{}'", v.replace('\\', "\\\\").replace('\'', "\\'"))
        }
    }
}

/// Renders `query` as a SPARQL `SELECT` query.
///
/// If the query has no distinguished variables, `SELECT *` is produced.
pub fn to_sparql(query: &ConjunctiveQuery) -> String {
    let mut out = String::new();
    out.push_str("SELECT ");
    if query.distinguished().is_empty() {
        out.push('*');
    } else {
        let vars: Vec<String> = query
            .distinguished()
            .iter()
            .map(|v| format!("?{v}"))
            .collect();
        out.push_str(&vars.join(", "));
    }
    out.push_str(" WHERE {\n");
    for atom in query.atoms() {
        let _ = writeln!(
            out,
            "  {} {} {} .",
            render_term(&atom.subject),
            atom.predicate,
            render_term(&atom.object)
        );
    }
    out.push('}');
    out
}

/// Renders `query` as a one-sentence natural-language-like description.
///
/// The demo system described in the evaluation section "transforms
/// \[queries\] to simple natural language questions" before presenting them;
/// this is the template-based equivalent used by the examples.
pub fn to_description(query: &ConjunctiveQuery) -> String {
    if query.is_empty() {
        return "anything".to_string();
    }
    let mut parts = Vec::new();
    for atom in query.atoms() {
        let subject = render_term(&atom.subject);
        let object = render_term(&atom.object);
        let part = match atom.predicate.as_str() {
            "type" => format!("{subject} is a {object}"),
            "subclass" => format!("every {subject} is a {object}"),
            _ => format!("{subject} has {} {object}", atom.predicate),
        };
        parts.push(part);
    }
    format!(
        "Find {} such that {}.",
        describe_targets(query),
        parts.join(", and ")
    )
}

fn describe_targets(query: &ConjunctiveQuery) -> String {
    if query.distinguished().is_empty() {
        "all matches".to_string()
    } else {
        query
            .distinguished()
            .iter()
            .map(|v| format!("?{v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;

    fn example() -> ConjunctiveQuery {
        QueryBuilder::new()
            .class_pattern("x", "Publication")
            .attribute_pattern("x", "year", "2006")
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .relation_pattern("y", "worksAt", "z")
            .attribute_pattern("z", "name", "AIFB")
            .distinguished(["x", "y", "z"])
            .build()
    }

    #[test]
    fn sparql_matches_the_papers_shape() {
        let sparql = to_sparql(&example());
        assert!(sparql.starts_with("SELECT ?x, ?y, ?z WHERE {"));
        assert!(sparql.contains("?x type Publication ."));
        assert!(sparql.contains("?x year '2006' ."));
        assert!(sparql.contains("?y name 'P. Cimiano' ."));
        assert!(sparql.contains("?z name 'AIFB' ."));
        assert!(sparql.trim_end().ends_with('}'));
    }

    #[test]
    fn select_star_without_distinguished_variables() {
        let q = QueryBuilder::new()
            .relation_pattern("a", "knows", "b")
            .build();
        assert!(to_sparql(&q).starts_with("SELECT * WHERE {"));
    }

    #[test]
    fn literal_quotes_are_escaped() {
        let q = QueryBuilder::new()
            .attribute_pattern("x", "name", "O'Brien")
            .build();
        assert!(to_sparql(&q).contains("'O\\'Brien'"));

        // Backslashes are escaped before quotes, so a literal containing `\`
        // round-trips unambiguously...
        let q = QueryBuilder::new()
            .attribute_pattern("x", "path", "a\\b")
            .build();
        assert!(to_sparql(&q).contains("'a\\\\b'"));

        // ...a literal ending in `\` no longer swallows its closing quote...
        let q = QueryBuilder::new()
            .attribute_pattern("x", "path", "trailing\\")
            .build();
        assert!(to_sparql(&q).contains("'trailing\\\\' ."));

        // ...and the pathological `\'` suffix renders as escaped backslash
        // plus escaped quote, not as three bare characters.
        let q = QueryBuilder::new()
            .attribute_pattern("x", "name", "mixed\\'")
            .build();
        assert!(to_sparql(&q).contains("'mixed\\\\\\'' ."));
    }

    #[test]
    fn description_is_human_readable() {
        let text = to_description(&example());
        assert!(text.starts_with("Find ?x, ?y, ?z such that"));
        assert!(text.contains("?x is a Publication"));
        assert!(text.contains("?y has name 'P. Cimiano'"));
        assert!(text.ends_with('.'));
    }

    #[test]
    fn empty_query_description() {
        assert_eq!(to_description(&ConjunctiveQuery::new()), "anything");
    }
}
