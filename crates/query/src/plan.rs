//! Join ordering and query compilation.
//!
//! The evaluator processes query atoms one at a time, extending the bindings
//! accumulated so far with each atom's matches. The order matters: starting
//! from selective atoms (those mentioning constants that occur rarely in the
//! data) and always staying connected to already-bound variables keeps the
//! search narrow. This module implements the greedy ordering used by
//! [`crate::eval`], plus the [`CompiledQuery`] form the streaming evaluator
//! executes: predicates, constants and variable slots are resolved once per
//! query instead of once per row × per edge label.

use std::collections::{BTreeSet, HashMap};

use kwsearch_rdf::{DataGraph, EdgeLabelId, TriplePattern, TripleStore, VertexId};

use crate::eval::{resolve_object_constant, resolve_subject_constant, EvalError};
use crate::model::{ConjunctiveQuery, QueryTerm};

/// The chosen evaluation order (indices into `query.atoms()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Atom indices in evaluation order.
    pub order: Vec<usize>,
    /// Estimated number of matching triples per atom (same indexing as the
    /// query's atom list, *not* as `order`).
    pub estimates: Vec<usize>,
}

/// Estimates the number of rows matching `atom` when only its constants are
/// bound.
fn estimate_atom(
    query: &ConjunctiveQuery,
    atom_idx: usize,
    graph: &DataGraph,
    store: &TripleStore,
) -> usize {
    let atom = &query.atoms()[atom_idx];
    let labels = graph.edge_labels_named(&atom.predicate);
    if labels.is_empty() {
        return 0;
    }
    let mut total = 0usize;
    for label in labels {
        let kind = graph.edge_label(label).kind();
        let mut pattern = TriplePattern::any().with_predicate(label);
        if let Some(c) = atom.subject.as_constant() {
            match resolve_subject_constant(graph, kind, c) {
                Some(v) => pattern = pattern.with_subject(v),
                None => continue,
            }
        }
        if let Some(c) = atom.object.as_constant() {
            match resolve_object_constant(graph, kind, c) {
                Some(v) => pattern = pattern.with_object(v),
                None => continue,
            }
        }
        total += store.count(pattern);
    }
    total
}

/// Computes a greedy, connectivity-aware join order.
///
/// The first atom is the one with the smallest estimated cardinality; each
/// following atom is the cheapest one that shares a variable with the atoms
/// already planned (falling back to the globally cheapest remaining atom if
/// the query is disconnected).
pub fn plan_atoms(query: &ConjunctiveQuery, graph: &DataGraph, store: &TripleStore) -> QueryPlan {
    let n = query.atoms().len();
    let estimates: Vec<usize> = (0..n)
        .map(|i| estimate_atom(query, i, graph, store))
        .collect();

    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut bound_vars: BTreeSet<String> = BTreeSet::new();
    let mut order = Vec::with_capacity(n);

    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                query.atoms()[i]
                    .variables()
                    .iter()
                    .any(|v| bound_vars.contains(*v))
            })
            .collect();
        let candidates = if order.is_empty() || connected.is_empty() {
            remaining.iter().copied().collect::<Vec<_>>()
        } else {
            connected
        };
        // Among candidates prefer (more constants, lower estimate) — constants
        // make the scan a prefix lookup, and low estimates keep joins small.
        let &best = candidates
            .iter()
            .min_by_key(|&&i| {
                let atom = &query.atoms()[i];
                (usize::MAX - atom.constant_count(), estimates[i])
            })
            // lint: allow(no-unwrap, reason = "the loop guard guarantees `remaining` is non-empty, so min_by_key sees at least one candidate")
            .expect("candidates is non-empty");
        remaining.remove(&best);
        for v in query.atoms()[best].variables() {
            bound_vars.insert(v.to_owned());
        }
        order.push(best);
    }

    QueryPlan { order, estimates }
}

/// A term position of a [`CompiledPattern`]: constants are resolved to
/// concrete vertices at compile time, variables to indices into the compiled
/// variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A constant, resolved against the data graph once per query.
    Const(VertexId),
    /// A variable, identified by its index into [`CompiledQuery::variables`].
    Var(usize),
}

/// One scannable triple pattern: a concrete edge label plus compiled
/// subject/object slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledPattern {
    /// The edge label this pattern scans.
    pub label: EdgeLabelId,
    /// The subject position.
    pub subject: Slot,
    /// The object position.
    pub object: Slot,
}

/// A query atom compiled to the edge labels sharing the atom's predicate
/// name. Labels whose constants do not resolve against the graph are dropped
/// here, once, instead of being re-resolved (and re-skipped) per row during
/// evaluation. An atom with no patterns can never match.
#[derive(Debug, Clone, Default)]
pub struct CompiledAtom {
    /// The scannable patterns of this atom, in edge-label order.
    pub patterns: Vec<CompiledPattern>,
}

/// A conjunctive query compiled for the streaming evaluator: atoms in
/// [`plan_atoms`] order with every predicate name, constant and variable
/// resolved exactly once.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The variable table (sorted); [`Slot::Var`] indexes into it.
    pub variables: Vec<String>,
    /// The atoms, in evaluation (plan) order.
    pub atoms: Vec<CompiledAtom>,
    /// Indices into `variables` of the distinguished variables, in
    /// `distinguished` order.
    pub projection: Vec<usize>,
    /// The distinguished variables (declaration order; defaults to all
    /// variables when the query declares none).
    pub distinguished: Vec<String>,
}

impl CompiledQuery {
    /// Compiles `query` against `graph`, ordering atoms with [`plan_atoms`].
    ///
    /// Fails if a distinguished variable does not occur in any atom.
    pub fn compile(
        query: &ConjunctiveQuery,
        graph: &DataGraph,
        store: &TripleStore,
    ) -> Result<Self, EvalError> {
        let variables: Vec<String> = query.variables().into_iter().collect();
        let var_index: HashMap<&str, usize> = variables
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        let distinguished = query.effective_distinguished();
        for d in &distinguished {
            if !var_index.contains_key(d.as_str()) {
                return Err(EvalError::UnboundDistinguishedVariable(d.clone()));
            }
        }
        let projection: Vec<usize> = distinguished
            .iter()
            .map(|d| var_index[d.as_str()])
            .collect();

        let plan = plan_atoms(query, graph, store);
        let mut atoms = Vec::with_capacity(plan.order.len());
        for &atom_idx in &plan.order {
            let atom = &query.atoms()[atom_idx];
            let mut patterns = Vec::new();
            for label in graph.edge_labels_named(&atom.predicate) {
                let kind = graph.edge_label(label).kind();
                let subject = match &atom.subject {
                    QueryTerm::Variable(v) => Slot::Var(var_index[v.as_str()]),
                    other => {
                        let c = other
                            .as_constant()
                            // lint: allow(no-unwrap, reason = "the match arm above handles Variable, so this term can only be a constant")
                            .expect("non-variable term is a constant");
                        match resolve_subject_constant(graph, kind, c) {
                            Some(v) => Slot::Const(v),
                            None => continue,
                        }
                    }
                };
                let object = match &atom.object {
                    QueryTerm::Variable(v) => Slot::Var(var_index[v.as_str()]),
                    other => {
                        let c = other
                            .as_constant()
                            // lint: allow(no-unwrap, reason = "the match arm above handles Variable, so this term can only be a constant")
                            .expect("non-variable term is a constant");
                        match resolve_object_constant(graph, kind, c) {
                            Some(v) => Slot::Const(v),
                            None => continue,
                        }
                    }
                };
                patterns.push(CompiledPattern {
                    label,
                    subject,
                    object,
                });
            }
            atoms.push(CompiledAtom { patterns });
        }

        Ok(CompiledQuery {
            variables,
            atoms,
            projection,
            distinguished,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use kwsearch_rdf::fixtures::figure1_graph;

    #[test]
    fn plan_covers_every_atom_exactly_once() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .class_pattern("x", "Publication")
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .relation_pattern("y", "worksAt", "z")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn selective_constant_atoms_come_first() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        // The name atom has a constant and cardinality 1; it must be planned
        // before the unconstrained author atom.
        assert_eq!(plan.order[0], 1);
    }

    #[test]
    fn plan_stays_connected_when_possible() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .attribute_pattern("x", "year", "2006")
            .relation_pattern("x", "author", "y")
            .relation_pattern("y", "worksAt", "z")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        // After the first atom (year, selective), the next atom must share a
        // variable with it; worksAt(y,z) does not share a variable with
        // year(x, 2006), so author(x, y) has to come second.
        assert_eq!(plan.order[0], 0);
        assert_eq!(plan.order[1], 1);
    }

    #[test]
    fn unknown_predicates_estimate_to_zero() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .relation_pattern("x", "nonexistent", "y")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        assert_eq!(plan.estimates, vec![0]);
    }

    #[test]
    fn compile_resolves_constants_and_variable_slots_once() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .attribute_pattern("x", "name", "AIFB")
            .relation_pattern("x", "worksAt", "y")
            .build();
        let compiled = CompiledQuery::compile(&q, &g, &store).unwrap();
        assert_eq!(compiled.variables, vec!["x".to_string(), "y".to_string()]);
        // No distinguished variables declared -> all variables, projected in
        // table order.
        assert_eq!(compiled.distinguished, compiled.variables);
        assert_eq!(compiled.projection, vec![0, 1]);
        assert_eq!(compiled.atoms.len(), 2);
        for atom in &compiled.atoms {
            assert!(!atom.patterns.is_empty());
        }
        // The name atom resolves its literal to a concrete value vertex.
        let name_atom = &compiled.atoms[0];
        let value = g.value("AIFB").unwrap();
        assert!(name_atom
            .patterns
            .iter()
            .any(|p| p.object == Slot::Const(value)));
    }

    #[test]
    fn compile_drops_unresolvable_patterns() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .attribute_pattern("x", "name", "No Such Name")
            .build();
        let compiled = CompiledQuery::compile(&q, &g, &store).unwrap();
        assert_eq!(compiled.atoms.len(), 1);
        assert!(compiled.atoms[0].patterns.is_empty());
    }

    #[test]
    fn compile_rejects_unbound_distinguished_variables() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .relation_pattern("x", "author", "y")
            .distinguished(["z"])
            .build();
        match CompiledQuery::compile(&q, &g, &store) {
            Err(EvalError::UnboundDistinguishedVariable(v)) => assert_eq!(v, "z"),
            other => panic!("expected unbound-variable error, got {other:?}"),
        }
    }
}
