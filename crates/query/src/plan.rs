//! Join ordering.
//!
//! The evaluator processes query atoms one at a time, joining each atom's
//! matches into the bindings accumulated so far. The order matters: starting
//! from selective atoms (those mentioning constants that occur rarely in the
//! data) and always staying connected to already-bound variables keeps the
//! intermediate results small. This module implements the greedy ordering
//! used by [`crate::eval`].

use std::collections::BTreeSet;

use kwsearch_rdf::{DataGraph, TriplePattern, TripleStore};

use crate::eval::{resolve_object_constant, resolve_subject_constant};
use crate::model::ConjunctiveQuery;

/// The chosen evaluation order (indices into `query.atoms()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Atom indices in evaluation order.
    pub order: Vec<usize>,
    /// Estimated number of matching triples per atom (same indexing as the
    /// query's atom list, *not* as `order`).
    pub estimates: Vec<usize>,
}

/// Estimates the number of rows matching `atom` when only its constants are
/// bound.
fn estimate_atom(
    query: &ConjunctiveQuery,
    atom_idx: usize,
    graph: &DataGraph,
    store: &TripleStore,
) -> usize {
    let atom = &query.atoms()[atom_idx];
    let labels = graph.edge_labels_named(&atom.predicate);
    if labels.is_empty() {
        return 0;
    }
    let mut total = 0usize;
    for label in labels {
        let kind = graph.edge_label(label).kind();
        let mut pattern = TriplePattern::any().with_predicate(label);
        if let Some(c) = atom.subject.as_constant() {
            match resolve_subject_constant(graph, kind, c) {
                Some(v) => pattern = pattern.with_subject(v),
                None => continue,
            }
        }
        if let Some(c) = atom.object.as_constant() {
            match resolve_object_constant(graph, kind, c) {
                Some(v) => pattern = pattern.with_object(v),
                None => continue,
            }
        }
        total += store.count(pattern);
    }
    total
}

/// Computes a greedy, connectivity-aware join order.
///
/// The first atom is the one with the smallest estimated cardinality; each
/// following atom is the cheapest one that shares a variable with the atoms
/// already planned (falling back to the globally cheapest remaining atom if
/// the query is disconnected).
pub fn plan_atoms(query: &ConjunctiveQuery, graph: &DataGraph, store: &TripleStore) -> QueryPlan {
    let n = query.atoms().len();
    let estimates: Vec<usize> = (0..n)
        .map(|i| estimate_atom(query, i, graph, store))
        .collect();

    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut bound_vars: BTreeSet<String> = BTreeSet::new();
    let mut order = Vec::with_capacity(n);

    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                query.atoms()[i]
                    .variables()
                    .iter()
                    .any(|v| bound_vars.contains(*v))
            })
            .collect();
        let candidates = if order.is_empty() || connected.is_empty() {
            remaining.iter().copied().collect::<Vec<_>>()
        } else {
            connected
        };
        // Among candidates prefer (more constants, lower estimate) — constants
        // make the scan a prefix lookup, and low estimates keep joins small.
        let &best = candidates
            .iter()
            .min_by_key(|&&i| {
                let atom = &query.atoms()[i];
                (usize::MAX - atom.constant_count(), estimates[i])
            })
            .expect("candidates is non-empty");
        remaining.remove(&best);
        for v in query.atoms()[best].variables() {
            bound_vars.insert(v.to_owned());
        }
        order.push(best);
    }

    QueryPlan { order, estimates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use kwsearch_rdf::fixtures::figure1_graph;

    #[test]
    fn plan_covers_every_atom_exactly_once() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .class_pattern("x", "Publication")
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .relation_pattern("y", "worksAt", "z")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn selective_constant_atoms_come_first() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .relation_pattern("x", "author", "y")
            .attribute_pattern("y", "name", "P. Cimiano")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        // The name atom has a constant and cardinality 1; it must be planned
        // before the unconstrained author atom.
        assert_eq!(plan.order[0], 1);
    }

    #[test]
    fn plan_stays_connected_when_possible() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .attribute_pattern("x", "year", "2006")
            .relation_pattern("x", "author", "y")
            .relation_pattern("y", "worksAt", "z")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        // After the first atom (year, selective), the next atom must share a
        // variable with it; worksAt(y,z) does not share a variable with
        // year(x, 2006), so author(x, y) has to come second.
        assert_eq!(plan.order[0], 0);
        assert_eq!(plan.order[1], 1);
    }

    #[test]
    fn unknown_predicates_estimate_to_zero() {
        let g = figure1_graph();
        let store = TripleStore::build(&g);
        let q = QueryBuilder::new()
            .relation_pattern("x", "nonexistent", "y")
            .build();
        let plan = plan_atoms(&q, &g, &store);
        assert_eq!(plan.estimates, vec![0]);
    }
}
