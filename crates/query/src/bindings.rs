//! Variable bindings and answer sets.
//!
//! An answer to a conjunctive query (Definition 3) is a mapping from the
//! distinguished variables to graph vertices such that the mapping extends to
//! all variables consistently with the data graph. During evaluation we carry
//! full bindings (all variables); the final [`AnswerSet`] is the projection
//! onto the distinguished variables, deduplicated.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use kwsearch_rdf::{DataGraph, VertexId};

/// The result of evaluating a conjunctive query: the distinguished variables
/// and one row per answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerSet {
    variables: Vec<String>,
    rows: Vec<Vec<VertexId>>,
}

impl AnswerSet {
    /// Creates an answer set from already-projected rows, deduplicating them
    /// (first occurrence wins, input order preserved).
    ///
    /// Rows are probed by hash and compared in place — no per-row clone, this
    /// sits on the answer hot path.
    pub fn new(variables: Vec<String>, rows: Vec<Vec<VertexId>>) -> Self {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::with_capacity(rows.len());
        let mut deduped: Vec<Vec<VertexId>> = Vec::with_capacity(rows.len());
        for row in rows {
            debug_assert_eq!(row.len(), variables.len());
            let mut hasher = DefaultHasher::new();
            row.hash(&mut hasher);
            let bucket = buckets.entry(hasher.finish()).or_default();
            if bucket.iter().any(|&i| deduped[i] == row) {
                continue;
            }
            bucket.push(deduped.len());
            deduped.push(row);
        }
        Self {
            variables,
            rows: deduped,
        }
    }

    /// Creates an answer set from rows that are already distinct — e.g. the
    /// streaming evaluator deduplicates while enumerating — skipping the
    /// dedup pass of [`AnswerSet::new`].
    pub fn from_distinct(variables: Vec<String>, rows: Vec<Vec<VertexId>>) -> Self {
        debug_assert!(
            {
                let mut probe = rows.clone();
                probe.sort_unstable();
                probe.dedup();
                probe.len() == rows.len()
            },
            "from_distinct requires unique rows"
        );
        Self { variables, rows }
    }

    /// An empty answer set over the given variables.
    pub fn empty(variables: Vec<String>) -> Self {
        Self {
            variables,
            rows: Vec::new(),
        }
    }

    /// The projected (distinguished) variables.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The answer rows (vertex ids, positionally matching `variables`).
    pub fn rows(&self) -> &[Vec<VertexId>] {
        &self.rows
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no answers.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders each answer as `(variable, label)` pairs using the graph's
    /// vertex labels.
    pub fn labelled_rows<'g>(&self, graph: &'g DataGraph) -> Vec<Vec<(String, &'g str)>> {
        self.rows
            .iter()
            .map(|row| {
                self.variables
                    .iter()
                    .zip(row)
                    .map(|(var, &v)| (var.clone(), graph.vertex_label(v)))
                    .collect()
            })
            .collect()
    }

    /// The bindings of a single variable across all answers.
    pub fn column(&self, variable: &str) -> Option<Vec<VertexId>> {
        let idx = self.variables.iter().position(|v| v == variable)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::fixtures::figure1_graph;

    #[test]
    fn duplicate_rows_are_removed() {
        let g = figure1_graph();
        let v1 = g.entity("pub1URI").unwrap();
        let v2 = g.entity("re1URI").unwrap();
        let answers = AnswerSet::new(
            vec!["x".into(), "y".into()],
            vec![vec![v1, v2], vec![v1, v2], vec![v2, v1]],
        );
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn labelled_rows_resolve_vertex_labels() {
        let g = figure1_graph();
        let v = g.entity("pub1URI").unwrap();
        let answers = AnswerSet::new(vec!["x".into()], vec![vec![v]]);
        let labelled = answers.labelled_rows(&g);
        assert_eq!(labelled.len(), 1);
        assert_eq!(labelled[0][0], ("x".to_string(), "pub1URI"));
    }

    #[test]
    fn column_extraction() {
        let g = figure1_graph();
        let a = g.entity("re1URI").unwrap();
        let b = g.entity("re2URI").unwrap();
        let answers = AnswerSet::new(vec!["y".into()], vec![vec![a], vec![b]]);
        assert_eq!(answers.column("y").unwrap(), vec![a, b]);
        assert!(answers.column("missing").is_none());
    }

    #[test]
    fn empty_answer_set() {
        let answers = AnswerSet::empty(vec!["x".into()]);
        assert!(answers.is_empty());
        assert_eq!(answers.variables(), &["x".to_string()]);
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let g = figure1_graph();
        let a = g.entity("pub1URI").unwrap();
        let b = g.entity("re1URI").unwrap();
        let c = g.entity("re2URI").unwrap();
        let answers = AnswerSet::new(
            vec!["x".into()],
            vec![vec![c], vec![a], vec![c], vec![b], vec![a], vec![b]],
        );
        assert_eq!(answers.rows(), &[vec![c], vec![a], vec![b]]);
    }

    #[test]
    fn from_distinct_keeps_rows_verbatim() {
        let g = figure1_graph();
        let a = g.entity("pub1URI").unwrap();
        let b = g.entity("re1URI").unwrap();
        let answers = AnswerSet::from_distinct(vec!["x".into()], vec![vec![b], vec![a]]);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers.rows(), &[vec![b], vec![a]]);
    }
}
