//! The conjunctive query model of Definition 2.
//!
//! A conjunctive query is an expression
//! `(x1, …, xk). ∃ xk+1 … xm . A1 ∧ … ∧ Ar` where `x1 … xk` are the
//! *distinguished* variables (bound to produce answers), the remaining
//! variables are existentially quantified, and every atom `A` has the form
//! `P(v1, v2)` with `P` a predicate (edge label) and `v1`, `v2` variables or
//! constants.

use std::collections::BTreeSet;
use std::fmt;

/// A term position inside a query atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryTerm {
    /// A variable, e.g. `?x`. The name excludes the leading `?`.
    Variable(String),
    /// A constant naming an entity or class (rendered bare / as an IRI).
    Iri(String),
    /// A constant literal value (rendered quoted).
    Literal(String),
}

impl QueryTerm {
    /// Creates a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        QueryTerm::Variable(name.into())
    }

    /// Creates an IRI constant.
    pub fn iri(value: impl Into<String>) -> Self {
        QueryTerm::Iri(value.into())
    }

    /// Creates a literal constant.
    pub fn literal(value: impl Into<String>) -> Self {
        QueryTerm::Literal(value.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            QueryTerm::Variable(v) => Some(v),
            _ => None,
        }
    }

    /// The constant text, if this term is a constant.
    pub fn as_constant(&self) -> Option<&str> {
        match self {
            QueryTerm::Iri(v) | QueryTerm::Literal(v) => Some(v),
            QueryTerm::Variable(_) => None,
        }
    }

    /// Whether this term is a variable.
    pub fn is_variable(&self) -> bool {
        matches!(self, QueryTerm::Variable(_))
    }

    /// Whether this term is a constant (IRI or literal).
    pub fn is_constant(&self) -> bool {
        !self.is_variable()
    }
}

impl fmt::Display for QueryTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTerm::Variable(v) => write!(f, "?{v}"),
            QueryTerm::Iri(v) => write!(f, "{v}"),
            QueryTerm::Literal(v) => write!(f, "'{v}'"),
        }
    }
}

/// A query atom `P(v1, v2)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate (edge label) name.
    pub predicate: String,
    /// The subject position.
    pub subject: QueryTerm,
    /// The object position.
    pub object: QueryTerm,
}

impl Atom {
    /// Creates an atom.
    pub fn new(predicate: impl Into<String>, subject: QueryTerm, object: QueryTerm) -> Self {
        Self {
            predicate: predicate.into(),
            subject,
            object,
        }
    }

    /// The variables appearing in this atom (0, 1 or 2).
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.object]
            .into_iter()
            .filter_map(|t| t.as_variable())
            .collect()
    }

    /// Number of constant positions (used as a selectivity hint).
    pub fn constant_count(&self) -> usize {
        self.subject.is_constant() as usize + self.object.is_constant() as usize
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.predicate, self.subject, self.object)
    }
}

/// A conjunctive query (Definition 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    distinguished: Vec<String>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an atom to the conjunction.
    pub fn add_atom(&mut self, atom: Atom) -> &mut Self {
        if !self.atoms.contains(&atom) {
            self.atoms.push(atom);
        }
        self
    }

    /// Marks a variable as distinguished (it will appear in answers).
    ///
    /// Unknown variables are accepted; they simply never bind.
    pub fn add_distinguished(&mut self, var: impl Into<String>) -> &mut Self {
        let var = var.into();
        if !self.distinguished.contains(&var) {
            self.distinguished.push(var);
        }
        self
    }

    /// Makes every variable of the query distinguished. The paper uses this
    /// as the default when nothing but keywords is known about the user's
    /// intent ("a reasonable choice is to treat all query variables as
    /// distinguished").
    pub fn distinguish_all(&mut self) -> &mut Self {
        self.distinguished = self.variables().into_iter().collect();
        self
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The distinguished variables, in declaration order.
    pub fn distinguished(&self) -> &[String] {
        &self.distinguished
    }

    /// The variables answers are projected onto: the declared distinguished
    /// variables, or — when none were declared — every variable of the query
    /// (the paper's default, Section VI-D).
    pub fn effective_distinguished(&self) -> Vec<String> {
        if self.distinguished.is_empty() {
            self.variables().into_iter().collect()
        } else {
            self.distinguished.clone()
        }
    }

    /// All variables occurring in the query, sorted.
    pub fn variables(&self) -> BTreeSet<String> {
        self.atoms
            .iter()
            .flat_map(|a| a.variables().into_iter().map(str::to_owned))
            .collect()
    }

    /// The undistinguished (existential) variables, sorted.
    pub fn undistinguished(&self) -> BTreeSet<String> {
        let mut vars = self.variables();
        for d in &self.distinguished {
            vars.remove(d);
        }
        vars
    }

    /// All constants occurring in the query, sorted.
    pub fn constants(&self) -> BTreeSet<String> {
        self.atoms
            .iter()
            .flat_map(|a| {
                [&a.subject, &a.object]
                    .into_iter()
                    .filter_map(|t| t.as_constant().map(str::to_owned))
            })
            .collect()
    }

    /// All predicate names, sorted.
    pub fn predicates(&self) -> BTreeSet<String> {
        self.atoms.iter().map(|a| a.predicate.clone()).collect()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the query has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// A deterministic normal form (sorted atoms, sorted distinguished
    /// variables) used to deduplicate queries generated from different
    /// subgraph explorations.
    pub fn canonicalized(&self) -> ConjunctiveQuery {
        let mut atoms = self.atoms.clone();
        atoms.sort();
        let mut distinguished = self.distinguished.clone();
        distinguished.sort();
        ConjunctiveQuery {
            distinguished,
            atoms,
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.distinguished.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "?{d}")?;
        }
        write!(f, "). ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example conjunctive query from Fig. 1c:
    /// `(x, y, z). type(x, Publication) ∧ year(x, 2006) ∧ author(x, y) ∧
    ///  name(y, P. Cimiano) ∧ worksAt(y, z) ∧ name(z, AIFB)`.
    pub(crate) fn figure1_query() -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new();
        q.add_atom(Atom::new(
            "type",
            QueryTerm::var("x"),
            QueryTerm::iri("Publication"),
        ));
        q.add_atom(Atom::new(
            "year",
            QueryTerm::var("x"),
            QueryTerm::literal("2006"),
        ));
        q.add_atom(Atom::new(
            "author",
            QueryTerm::var("x"),
            QueryTerm::var("y"),
        ));
        q.add_atom(Atom::new(
            "name",
            QueryTerm::var("y"),
            QueryTerm::literal("P. Cimiano"),
        ));
        q.add_atom(Atom::new(
            "worksAt",
            QueryTerm::var("y"),
            QueryTerm::var("z"),
        ));
        q.add_atom(Atom::new(
            "name",
            QueryTerm::var("z"),
            QueryTerm::literal("AIFB"),
        ));
        q.add_distinguished("x");
        q.add_distinguished("y");
        q.add_distinguished("z");
        q
    }

    #[test]
    fn variable_and_constant_accessors() {
        let q = figure1_query();
        assert_eq!(q.len(), 6);
        assert_eq!(
            q.variables().into_iter().collect::<Vec<_>>(),
            vec!["x", "y", "z"]
        );
        assert!(q.undistinguished().is_empty());
        assert!(q.constants().contains("Publication"));
        assert!(q.constants().contains("AIFB"));
        assert!(q.predicates().contains("worksAt"));
    }

    #[test]
    fn undistinguished_variables_are_the_rest() {
        let mut q = figure1_query();
        q.distinguished.clear();
        q.add_distinguished("x");
        assert_eq!(
            q.undistinguished().into_iter().collect::<Vec<_>>(),
            vec!["y", "z"]
        );
    }

    #[test]
    fn distinguish_all_covers_every_variable() {
        let mut q = figure1_query();
        q.distinguished.clear();
        q.distinguish_all();
        assert_eq!(q.distinguished().len(), 3);
    }

    #[test]
    fn effective_distinguished_defaults_to_all_variables() {
        let mut q = figure1_query();
        assert_eq!(q.effective_distinguished(), q.distinguished());
        q.distinguished.clear();
        assert_eq!(q.effective_distinguished(), vec!["x", "y", "z"]);
    }

    #[test]
    fn duplicate_atoms_and_variables_are_deduplicated() {
        let mut q = ConjunctiveQuery::new();
        let a = Atom::new("type", QueryTerm::var("x"), QueryTerm::iri("Person"));
        q.add_atom(a.clone());
        q.add_atom(a);
        q.add_distinguished("x");
        q.add_distinguished("x");
        assert_eq!(q.len(), 1);
        assert_eq!(q.distinguished().len(), 1);
    }

    #[test]
    fn canonicalization_makes_order_irrelevant() {
        let mut q1 = ConjunctiveQuery::new();
        q1.add_atom(Atom::new("a", QueryTerm::var("x"), QueryTerm::var("y")));
        q1.add_atom(Atom::new("b", QueryTerm::var("y"), QueryTerm::literal("v")));
        let mut q2 = ConjunctiveQuery::new();
        q2.add_atom(Atom::new("b", QueryTerm::var("y"), QueryTerm::literal("v")));
        q2.add_atom(Atom::new("a", QueryTerm::var("x"), QueryTerm::var("y")));
        assert_ne!(q1, q2);
        assert_eq!(q1.canonicalized(), q2.canonicalized());
    }

    #[test]
    fn display_resembles_the_paper_notation() {
        let q = figure1_query();
        let text = q.to_string();
        assert!(text.starts_with("(?x, ?y, ?z). "));
        assert!(text.contains("type(?x, Publication)"));
        assert!(text.contains("name(?y, 'P. Cimiano')"));
        assert!(text.contains(" ∧ "));
    }

    #[test]
    fn atom_helpers() {
        let a = Atom::new("year", QueryTerm::var("x"), QueryTerm::literal("2006"));
        assert_eq!(a.variables(), vec!["x"]);
        assert_eq!(a.constant_count(), 1);
        assert_eq!(a.to_string(), "year(?x, '2006')");
    }
}
