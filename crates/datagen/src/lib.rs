//! Synthetic dataset generators and benchmark workloads.
//!
//! The paper evaluates on three datasets — DBLP (26M triples, bibliographic),
//! TAP (220k triples, broad general-knowledge ontology) and LUBM(50, 0)
//! (university benchmark) — plus two workloads: 30 DBLP / 9 TAP keyword
//! queries collected from 12 participants (effectiveness, Fig. 4) and the
//! queries Q1–Q10 of the BLINKS evaluation (performance, Fig. 5).
//!
//! The original dumps are not redistributable and far exceed laptop scale,
//! so this crate generates structurally equivalent datasets at a
//! configurable scale (see DESIGN.md for the substitution rationale):
//!
//! * [`dblp`] — publications/authors/venues with Zipfian label reuse: few
//!   classes, very many V-vertices (large keyword index),
//! * [`lubm`] — the LUBM schema (universities, departments, professors,
//!   students, courses) generated from its published class/relation layout,
//! * [`tap`] — a class-rich, broad ontology (large graph index),
//! * [`workload`] — keyword queries with gold-standard conjunctive queries
//!   for the MRR study, and the Q1–Q10 performance queries.
//!
//! All generators are deterministic given a seed.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use kwsearch_rdf::DataGraph;

pub mod dblp;
pub mod lubm;
pub mod names;
pub mod tap;
pub mod workload;
pub mod zipf;

pub use dblp::{DblpConfig, DblpDataset};
pub use lubm::{LubmConfig, LubmDataset};
pub use tap::{TapConfig, TapDataset};
pub use workload::{EffectivenessQuery, PerformanceQuery};
pub use zipf::ZipfSampler;

/// Writes a generated graph to `path` as N-Triples through the streaming
/// writer (no intermediate `String` of the whole document), returning the
/// number of bytes on disk. This is how the `large`/`huge` benchmark tiers
/// materialise their 10⁶–10⁷ triple inputs for the ingest measurements.
pub fn write_ntriples_file<P: AsRef<Path>>(graph: &DataGraph, path: P) -> io::Result<u64> {
    let file = File::create(&path)?;
    let mut writer = BufWriter::new(file);
    kwsearch_rdf::ntriples::write_graph_to(graph, &mut writer)?;
    writer.flush()?;
    Ok(std::fs::metadata(&path)?.len())
}
