//! A TAP-like general-knowledge ontology generator.
//!
//! TAP is a broad Stanford ontology (~220k triples) describing "knowledge
//! about sports, geography, music and many other fields". Its defining
//! structural property in the paper's evaluation is a **large number of
//! classes and relation labels** relative to its instance count, which makes
//! the *graph index* (summary graph) much larger than for DBLP or LUBM
//! (Fig. 6b). This generator reproduces exactly that shape: a wide class
//! hierarchy over several domains with a modest number of instances per
//! class.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kwsearch_rdf::{DataGraph, GraphBuilder};

use crate::names::{person_name, ARTIST_STEMS, CITIES, COUNTRIES, FILM_STEMS, TEAM_STEMS};

/// Configuration of the TAP-like generator.
#[derive(Debug, Clone)]
pub struct TapConfig {
    /// Instances generated per leaf class.
    pub instances_per_class: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TapConfig {
    fn default() -> Self {
        Self {
            instances_per_class: 6,
            seed: 2220,
        }
    }
}

/// The generated TAP-like dataset.
#[derive(Debug, Clone)]
pub struct TapDataset {
    /// The generated data graph.
    pub graph: DataGraph,
    /// Names of all generated instances, grouped by class name.
    pub instances: Vec<(String, Vec<String>)>,
    /// The configuration used.
    pub config: TapConfig,
}

/// `(class, superclass)` pairs of the TAP-like schema.
const CLASS_HIERARCHY: &[(&str, &str)] = &[
    // People.
    ("Person", "Thing"),
    ("Athlete", "Person"),
    ("Musician", "Person"),
    ("Actor", "Person"),
    ("Director", "Person"),
    ("Politician", "Person"),
    ("Scientist", "Person"),
    ("Author", "Person"),
    // Organisations.
    ("Organization", "Thing"),
    ("SportsTeam", "Organization"),
    ("Band", "Organization"),
    ("Company", "Organization"),
    ("University", "Organization"),
    ("GovernmentBody", "Organization"),
    // Places.
    ("Place", "Thing"),
    ("City", "Place"),
    ("Country", "Place"),
    ("River", "Place"),
    ("Mountain", "Place"),
    ("Stadium", "Place"),
    ("Museum", "Place"),
    // Creative works.
    ("CreativeWork", "Thing"),
    ("Album", "CreativeWork"),
    ("Song", "CreativeWork"),
    ("Movie", "CreativeWork"),
    ("Book", "CreativeWork"),
    ("Painting", "CreativeWork"),
    // Sports.
    ("Sport", "Thing"),
    ("SportsLeague", "Thing"),
    ("SportsEvent", "Thing"),
    // Misc.
    ("Award", "Thing"),
    ("Language", "Thing"),
    ("Cuisine", "Thing"),
];

/// Leaf classes that receive instances, with the label pool used for them.
const INSTANCE_CLASSES: &[&str] = &[
    "Athlete",
    "Musician",
    "Actor",
    "Director",
    "Politician",
    "Scientist",
    "Author",
    "SportsTeam",
    "Band",
    "Company",
    "University",
    "City",
    "Country",
    "River",
    "Mountain",
    "Stadium",
    "Museum",
    "Album",
    "Song",
    "Movie",
    "Book",
    "Sport",
    "SportsLeague",
    "Award",
    "Language",
];

impl TapDataset {
    /// Generates a dataset from a configuration.
    pub fn generate(config: TapConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut builder = GraphBuilder::new();

        for (class, superclass) in CLASS_HIERARCHY {
            builder.subclass(class, superclass);
        }

        // Instances with readable labels.
        let mut instances: Vec<(String, Vec<String>)> = Vec::new();
        let mut person_counter = 0usize;
        for &class in INSTANCE_CLASSES {
            let mut labels = Vec::with_capacity(config.instances_per_class);
            for i in 0..config.instances_per_class {
                let iri = format!("{}{}", class.to_lowercase(), i);
                let label = Self::label_for(class, i, &mut person_counter);
                builder.entity(&iri, class);
                builder.attribute(&iri, "name", &label);
                labels.push(label);
            }
            instances.push((class.to_string(), labels));
        }

        let n = config.instances_per_class;
        let pick = |rng: &mut StdRng| rng.gen_range(0..n);

        // Domain relations; each is applied to every instance of its subject
        // class so that the summary graph gains many distinct edge labels.
        for i in 0..n {
            let j = pick(&mut rng);
            builder.relation(
                &format!("athlete{i}"),
                "playsFor",
                &format!("sportsteam{j}"),
            );
            builder.relation(
                &format!("athlete{i}"),
                "playsSport",
                &format!("sport{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("sportsteam{i}"),
                "basedIn",
                &format!("city{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("sportsteam{i}"),
                "memberOfLeague",
                &format!("sportsleague{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("musician{i}"),
                "memberOf",
                &format!("band{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("song{i}"),
                "performedBy",
                &format!("musician{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("song{i}"),
                "partOfAlbum",
                &format!("album{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("album{i}"),
                "recordedBy",
                &format!("band{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("movie{i}"),
                "directedBy",
                &format!("director{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("actor{i}"),
                "actsIn",
                &format!("movie{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("book{i}"),
                "writtenBy",
                &format!("author{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("city{i}"),
                "locatedIn",
                &format!("country{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("stadium{i}"),
                "locatedIn",
                &format!("city{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("museum{i}"),
                "locatedIn",
                &format!("city{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("river{i}"),
                "flowsThrough",
                &format!("country{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("mountain{i}"),
                "locatedIn",
                &format!("country{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("university{i}"),
                "locatedIn",
                &format!("city{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("scientist{i}"),
                "worksAt",
                &format!("university{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("politician{i}"),
                "governs",
                &format!("country{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("company{i}"),
                "headquarteredIn",
                &format!("city{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("movie{i}"),
                "wonAward",
                &format!("award{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("musician{i}"),
                "wonAward",
                &format!("award{}", pick(&mut rng)),
            );
            builder.relation(
                &format!("country{i}"),
                "officialLanguage",
                &format!("language{}", pick(&mut rng)),
            );

            // Attributes beyond names.
            builder.attribute(
                &format!("city{i}"),
                "population",
                &format!("{}", 50_000 + 17 * i),
            );
            builder.attribute(
                &format!("country{i}"),
                "population",
                &format!("{}", 1_000_000 + 31 * i),
            );
            builder.attribute(
                &format!("movie{i}"),
                "releaseYear",
                &format!("{}", 1980 + (i % 30)),
            );
            builder.attribute(
                &format!("album{i}"),
                "releaseYear",
                &format!("{}", 1970 + (i % 40)),
            );
            builder.attribute(
                &format!("company{i}"),
                "foundedYear",
                &format!("{}", 1900 + (i % 100)),
            );
        }

        Self {
            graph: builder.finish(),
            instances,
            config,
        }
    }

    fn label_for(class: &str, i: usize, person_counter: &mut usize) -> String {
        let person_classes = [
            "Athlete",
            "Musician",
            "Actor",
            "Director",
            "Politician",
            "Scientist",
            "Author",
        ];
        if person_classes.contains(&class) {
            let name = person_name(*person_counter + 5000);
            *person_counter += 1;
            return name;
        }
        match class {
            "City" => CITIES[i % CITIES.len()].to_string(),
            "Country" => COUNTRIES[i % COUNTRIES.len()].to_string(),
            "SportsTeam" => format!(
                "{} {}",
                CITIES[i % CITIES.len()],
                TEAM_STEMS[i % TEAM_STEMS.len()]
            ),
            "Band" => format!("The {}", ARTIST_STEMS[i % ARTIST_STEMS.len()]),
            "Album" => format!("{} Album", ARTIST_STEMS[(i + 3) % ARTIST_STEMS.len()]),
            "Song" => format!("{} Song", FILM_STEMS[(i + 1) % FILM_STEMS.len()]),
            "Movie" => format!("{} {}", FILM_STEMS[i % FILM_STEMS.len()], i),
            "Book" => format!("Book of {}", FILM_STEMS[(i + 2) % FILM_STEMS.len()]),
            "University" => format!("University of {}", CITIES[i % CITIES.len()]),
            "Stadium" => format!("{} Stadium", CITIES[(i + 5) % CITIES.len()]),
            "Museum" => format!("{} Museum", CITIES[(i + 7) % CITIES.len()]),
            "River" => format!("River {}", ARTIST_STEMS[i % ARTIST_STEMS.len()]),
            "Mountain" => format!("Mount {}", ARTIST_STEMS[(i + 4) % ARTIST_STEMS.len()]),
            "Company" => format!("{} Corp {}", ARTIST_STEMS[(i + 2) % ARTIST_STEMS.len()], i),
            "Sport" => [
                "Football",
                "Basketball",
                "Tennis",
                "Rowing",
                "Cycling",
                "Judo",
                "Golf",
                "Cricket",
            ][i % 8]
                .to_string(),
            "SportsLeague" => format!("{} League", CITIES[(i + 2) % CITIES.len()]),
            "Award" => format!("{} Prize", COUNTRIES[(i + 1) % COUNTRIES.len()]),
            "Language" => [
                "German",
                "Mandarin",
                "Dutch",
                "Spanish",
                "French",
                "Portuguese",
                "Japanese",
                "Swahili",
            ][i % 8]
                .to_string(),
            _ => format!("{class} {i}"),
        }
    }

    /// A small dataset used by unit tests.
    pub fn small() -> Self {
        Self::generate(TapConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::GraphStats;

    #[test]
    fn generation_is_deterministic() {
        let a = TapDataset::small();
        let b = TapDataset::small();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.instances, b.instances);
    }

    #[test]
    fn tap_is_class_rich() {
        let d = TapDataset::small();
        let stats = GraphStats::compute(&d.graph);
        assert!(
            stats.classes >= 30,
            "TAP has many classes, got {}",
            stats.classes
        );
        assert!(stats.relation_labels >= 15);
        // Class-richness relative to instances: far fewer instances per class
        // than DBLP.
        assert!(stats.entities < stats.classes * 20);
    }

    #[test]
    fn instances_have_names_and_relations() {
        let d = TapDataset::small();
        let g = &d.graph;
        let athlete = g.entity("athlete0").unwrap();
        let labels: Vec<&str> = g
            .out_edges(athlete)
            .iter()
            .map(|&e| g.edge_label_name(g.edge(e).label))
            .collect();
        assert!(labels.contains(&"name"));
        assert!(labels.contains(&"playsFor"));
        assert!(labels.contains(&"type"));
    }

    #[test]
    fn instance_registry_matches_the_graph() {
        let d = TapDataset::small();
        for (class, labels) in &d.instances {
            assert!(d.graph.class(class).is_some(), "class {class} exists");
            for label in labels {
                assert!(
                    d.graph.value(label).is_some(),
                    "label {label} of class {class} is a V-vertex"
                );
            }
        }
    }

    #[test]
    fn hierarchy_reaches_thing() {
        let d = TapDataset::small();
        let g = &d.graph;
        let athlete = g.class("Athlete").unwrap();
        let person = g.class("Person").unwrap();
        assert!(g.superclasses_of(athlete).contains(&person));
        let thing = g.class("Thing").unwrap();
        assert!(g.superclasses_of(person).contains(&thing));
    }
}
