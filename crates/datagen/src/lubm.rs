//! A LUBM-like university dataset generator.
//!
//! LUBM (the Lehigh University Benchmark) is itself a synthetic generator;
//! this module reproduces its published schema — universities, departments,
//! professors, students, courses, publications — at a configurable scale.
//! Compared with the DBLP-like dataset it has more classes and relations per
//! entity, and far fewer distinct attribute values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kwsearch_rdf::{DataGraph, GraphBuilder};

use crate::names::{person_name, RESEARCH_AREAS};

/// Configuration of the LUBM-like generator.
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Number of universities (the paper uses LUBM(50, 0), i.e. 50).
    pub universities: usize,
    /// Departments per university.
    pub departments_per_university: usize,
    /// Professors per department (split across the three professor classes).
    pub professors_per_department: usize,
    /// Students per department (split into undergraduate/graduate).
    pub students_per_department: usize,
    /// Courses per department.
    pub courses_per_department: usize,
    /// Publications per professor.
    pub publications_per_professor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        Self {
            universities: 2,
            departments_per_university: 3,
            professors_per_department: 5,
            students_per_department: 20,
            courses_per_department: 8,
            publications_per_professor: 2,
            seed: 50,
        }
    }
}

impl LubmConfig {
    /// Scales the generator by the number of universities.
    pub fn with_universities(universities: usize) -> Self {
        Self {
            universities,
            ..Self::default()
        }
    }
}

/// The generated LUBM-like dataset.
#[derive(Debug, Clone)]
pub struct LubmDataset {
    /// The generated data graph.
    pub graph: DataGraph,
    /// Names of all universities.
    pub university_names: Vec<String>,
    /// Names of all departments.
    pub department_names: Vec<String>,
    /// Names of all professors.
    pub professor_names: Vec<String>,
    /// Names of all courses.
    pub course_names: Vec<String>,
    /// The configuration used.
    pub config: LubmConfig,
}

impl LubmDataset {
    /// Generates a dataset from a configuration.
    pub fn generate(config: LubmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut builder = GraphBuilder::new();

        // Class hierarchy (subset of the LUBM ontology).
        builder.subclass("University", "Organization");
        builder.subclass("Department", "Organization");
        builder.subclass("ResearchGroup", "Organization");
        builder.subclass("Organization", "Thing");
        builder.subclass("FullProfessor", "Professor");
        builder.subclass("AssociateProfessor", "Professor");
        builder.subclass("AssistantProfessor", "Professor");
        builder.subclass("Professor", "Faculty");
        builder.subclass("Lecturer", "Faculty");
        builder.subclass("Faculty", "Person");
        builder.subclass("UndergraduateStudent", "Student");
        builder.subclass("GraduateStudent", "Student");
        builder.subclass("Student", "Person");
        builder.subclass("Person", "Thing");
        builder.subclass("GraduateCourse", "Course");
        builder.subclass("Course", "Work");
        builder.subclass("Publication", "Work");
        builder.subclass("Work", "Thing");

        let professor_classes = ["FullProfessor", "AssociateProfessor", "AssistantProfessor"];

        let mut university_names = Vec::new();
        let mut department_names = Vec::new();
        let mut professor_names = Vec::new();
        let mut course_names = Vec::new();

        let mut person_counter = 0usize;
        let mut publication_counter = 0usize;

        for u in 0..config.universities {
            let uni_iri = format!("university{u}");
            let uni_name = format!("University{u}");
            builder.entity(&uni_iri, "University");
            builder.attribute(&uni_iri, "name", &uni_name);
            university_names.push(uni_name);

            for d in 0..config.departments_per_university {
                let dept_iri = format!("department{u}_{d}");
                let dept_name = format!(
                    "{} Department {d} of University{u}",
                    RESEARCH_AREAS
                        [(u * config.departments_per_university + d) % RESEARCH_AREAS.len()]
                );
                builder.entity(&dept_iri, "Department");
                builder.attribute(&dept_iri, "name", &dept_name);
                builder.relation(&dept_iri, "subOrganizationOf", &uni_iri);
                department_names.push(dept_name);

                // A research group per department.
                let group_iri = format!("group{u}_{d}");
                builder.entity(&group_iri, "ResearchGroup");
                builder.relation(&group_iri, "subOrganizationOf", &dept_iri);

                // Courses.
                let mut dept_courses = Vec::new();
                for c in 0..config.courses_per_department {
                    let course_iri = format!("course{u}_{d}_{c}");
                    let class = if c % 3 == 0 {
                        "GraduateCourse"
                    } else {
                        "Course"
                    };
                    let course_name = format!(
                        "{} Course {c}",
                        RESEARCH_AREAS[(c + d) % RESEARCH_AREAS.len()]
                    );
                    builder.entity(&course_iri, class);
                    builder.attribute(&course_iri, "name", &course_name);
                    course_names.push(course_name);
                    dept_courses.push(course_iri);
                }

                // Professors.
                let mut dept_professors = Vec::new();
                for p in 0..config.professors_per_department {
                    let prof_iri = format!("professor{u}_{d}_{p}");
                    let class = professor_classes[p % professor_classes.len()];
                    let name = person_name(person_counter);
                    person_counter += 1;
                    builder.entity(&prof_iri, class);
                    builder.attribute(&prof_iri, "name", &name);
                    builder.attribute(&prof_iri, "emailAddress", &format!("{}@u{u}.edu", prof_iri));
                    builder.attribute(
                        &prof_iri,
                        "researchInterest",
                        RESEARCH_AREAS[rng.gen_range(0..RESEARCH_AREAS.len())],
                    );
                    builder.relation(&prof_iri, "worksFor", &dept_iri);
                    builder.relation(
                        &prof_iri,
                        "undergraduateDegreeFrom",
                        &format!("university{}", rng.gen_range(0..config.universities)),
                    );
                    if p == 0 {
                        builder.relation(&prof_iri, "headOf", &dept_iri);
                    }
                    // Teaching.
                    if !dept_courses.is_empty() {
                        let course = &dept_courses[rng.gen_range(0..dept_courses.len())];
                        builder.relation(&prof_iri, "teacherOf", course);
                    }
                    // Publications.
                    for _ in 0..config.publications_per_professor {
                        let pub_iri = format!("lubmpub{publication_counter}");
                        publication_counter += 1;
                        builder.entity(&pub_iri, "Publication");
                        builder.attribute(
                            &pub_iri,
                            "name",
                            &format!(
                                "Publication {publication_counter} on {}",
                                RESEARCH_AREAS[rng.gen_range(0..RESEARCH_AREAS.len())]
                            ),
                        );
                        builder.relation(&pub_iri, "publicationAuthor", &prof_iri);
                    }
                    professor_names.push(name);
                    dept_professors.push(prof_iri);
                }

                // Students.
                for s in 0..config.students_per_department {
                    let student_iri = format!("student{u}_{d}_{s}");
                    let class = if s % 4 == 0 {
                        "GraduateStudent"
                    } else {
                        "UndergraduateStudent"
                    };
                    builder.entity(&student_iri, class);
                    builder.attribute(&student_iri, "name", &person_name(person_counter));
                    person_counter += 1;
                    builder.relation(&student_iri, "memberOf", &dept_iri);
                    if !dept_professors.is_empty() {
                        let advisor = &dept_professors[rng.gen_range(0..dept_professors.len())];
                        builder.relation(&student_iri, "advisor", advisor);
                    }
                    for _ in 0..2 {
                        if !dept_courses.is_empty() {
                            let course = &dept_courses[rng.gen_range(0..dept_courses.len())];
                            builder.relation(&student_iri, "takesCourse", course);
                        }
                    }
                }
            }
        }

        Self {
            graph: builder.finish(),
            university_names,
            department_names,
            professor_names,
            course_names,
            config,
        }
    }

    /// A small dataset used by unit tests.
    pub fn small() -> Self {
        Self::generate(LubmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::GraphStats;

    #[test]
    fn generation_is_deterministic() {
        let a = LubmDataset::small();
        let b = LubmDataset::small();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.professor_names, b.professor_names);
    }

    #[test]
    fn entity_counts_follow_the_configuration() {
        let d = LubmDataset::small();
        let c = &d.config;
        assert_eq!(d.university_names.len(), c.universities);
        assert_eq!(
            d.department_names.len(),
            c.universities * c.departments_per_university
        );
        assert_eq!(
            d.professor_names.len(),
            c.universities * c.departments_per_university * c.professors_per_department
        );
    }

    #[test]
    fn schema_has_a_rich_class_hierarchy() {
        let d = LubmDataset::small();
        let stats = GraphStats::compute(&d.graph);
        assert!(
            stats.classes >= 15,
            "LUBM has many classes, got {}",
            stats.classes
        );
        assert!(stats.subclass_edges >= 15);
        assert!(stats.relation_labels >= 8);
    }

    #[test]
    fn structural_relations_exist() {
        let d = LubmDataset::small();
        let g = &d.graph;
        for name in [
            "worksFor",
            "memberOf",
            "advisor",
            "takesCourse",
            "teacherOf",
            "subOrganizationOf",
            "publicationAuthor",
            "headOf",
        ] {
            assert!(
                !g.edge_labels_named(name).is_empty(),
                "relation {name} must exist"
            );
        }
        assert!(g.class("FullProfessor").is_some());
        assert!(g.class("UndergraduateStudent").is_some());
    }

    #[test]
    fn departments_belong_to_their_university() {
        let d = LubmDataset::small();
        let g = &d.graph;
        let dept = g.entity("department0_0").unwrap();
        let uni = g.entity("university0").unwrap();
        let connected = g.out_edges(dept).iter().any(|&e| {
            let edge = g.edge(e);
            g.edge_label_name(edge.label) == "subOrganizationOf" && edge.to == uni
        });
        assert!(connected);
    }

    #[test]
    fn scaling_by_universities_grows_the_graph() {
        let small = LubmDataset::generate(LubmConfig::with_universities(1));
        let large = LubmDataset::generate(LubmConfig::with_universities(3));
        assert!(large.graph.edge_count() > 2 * small.graph.edge_count());
    }
}
