//! Label vocabulary for the generators.
//!
//! The generators need human-readable labels (person names, title terms,
//! venue names, place names) so that keyword queries look like the ones real
//! users typed in the paper's study. The vocabulary is fixed and the
//! generators combine entries deterministically from a seeded RNG.

/// Given names used for person labels.
pub const GIVEN_NAMES: &[&str] = &[
    "Anna",
    "Bernd",
    "Carla",
    "Daniel",
    "Elena",
    "Frank",
    "Grace",
    "Hannes",
    "Ines",
    "Jorge",
    "Katja",
    "Liam",
    "Maria",
    "Nina",
    "Oliver",
    "Petra",
    "Quentin",
    "Rosa",
    "Stefan",
    "Tanja",
    "Ulrich",
    "Vera",
    "Walter",
    "Xenia",
    "Yusuf",
    "Zoe",
    "Philipp",
    "Thanh",
    "Sebastian",
    "Haofen",
];

/// Family names used for person labels.
pub const FAMILY_NAMES: &[&str] = &[
    "Mueller",
    "Schmidt",
    "Schneider",
    "Fischer",
    "Weber",
    "Meyer",
    "Wagner",
    "Becker",
    "Schulz",
    "Hoffmann",
    "Koch",
    "Bauer",
    "Richter",
    "Klein",
    "Wolf",
    "Neumann",
    "Schwarz",
    "Zimmermann",
    "Braun",
    "Krueger",
    "Tran",
    "Cimiano",
    "Rudolph",
    "Wang",
    "Lopez",
    "Silva",
    "Tanaka",
    "Kumar",
    "Ivanov",
    "Haddad",
];

/// Terms used to build publication titles (computer-science flavoured, so
/// that keyword queries like "keyword search graph" hit many titles).
pub const TITLE_TERMS: &[&str] = &[
    "keyword",
    "search",
    "graph",
    "data",
    "query",
    "processing",
    "efficient",
    "scalable",
    "semantic",
    "web",
    "database",
    "index",
    "ranking",
    "optimization",
    "distributed",
    "parallel",
    "stream",
    "mining",
    "learning",
    "knowledge",
    "ontology",
    "schema",
    "storage",
    "retrieval",
    "algorithm",
    "structure",
    "network",
    "analysis",
    "system",
    "engine",
    "exploration",
    "integration",
    "evaluation",
    "benchmark",
    "cache",
    "transaction",
    "recovery",
    "clustering",
    "classification",
    "embedding",
];

/// Venue name stems.
pub const VENUE_STEMS: &[&str] = &[
    "VLDB", "SIGMOD", "ICDE", "EDBT", "CIKM", "WWW", "ISWC", "ESWC", "KDD", "SIGIR", "PODS",
    "TKDE", "JWS", "TODS", "DEXA", "WISE",
];

/// Research-area names (used by LUBM and TAP).
pub const RESEARCH_AREAS: &[&str] = &[
    "Databases",
    "Information Retrieval",
    "Semantic Web",
    "Machine Learning",
    "Networks",
    "Operating Systems",
    "Compilers",
    "Graphics",
    "Security",
    "Theory",
    "Bioinformatics",
    "Human Computer Interaction",
];

/// City names (used by TAP and LUBM).
pub const CITIES: &[&str] = &[
    "Karlsruhe",
    "Shanghai",
    "Delft",
    "Berlin",
    "Vienna",
    "Madrid",
    "Lyon",
    "Porto",
    "Krakow",
    "Oslo",
    "Boston",
    "Seattle",
    "Kyoto",
    "Melbourne",
    "Toronto",
    "Nairobi",
];

/// Country names (used by TAP).
pub const COUNTRIES: &[&str] = &[
    "Germany",
    "China",
    "Netherlands",
    "Austria",
    "Spain",
    "France",
    "Portugal",
    "Poland",
    "Norway",
    "United States",
    "Japan",
    "Australia",
    "Canada",
    "Kenya",
    "Brazil",
    "India",
];

/// Sports team stems, music artist stems and film stems (used by TAP).
pub const TEAM_STEMS: &[&str] = &[
    "Rhinos", "Falcons", "Mariners", "Titans", "Comets", "Wolves", "Dragons", "Pioneers",
];

/// Music artist name stems (used by TAP).
pub const ARTIST_STEMS: &[&str] = &[
    "Aurora", "Cascade", "Delta", "Echo", "Fjord", "Glacier", "Harbor", "Ion",
];

/// Film title stems (used by TAP).
pub const FILM_STEMS: &[&str] = &[
    "Horizon",
    "Eclipse",
    "Voyage",
    "Labyrinth",
    "Monsoon",
    "Satellite",
    "Harvest",
    "Midnight",
];

/// Builds the i-th person name deterministically (round-robin over the name
/// tables with a numeric suffix once combinations are exhausted).
pub fn person_name(i: usize) -> String {
    let given = GIVEN_NAMES[i % GIVEN_NAMES.len()];
    let family = FAMILY_NAMES[(i / GIVEN_NAMES.len()) % FAMILY_NAMES.len()];
    let round = i / (GIVEN_NAMES.len() * FAMILY_NAMES.len());
    if round == 0 {
        format!("{given} {family}")
    } else {
        format!("{given} {family} {round}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn person_names_are_unique() {
        let names: HashSet<String> = (0..2000).map(person_name).collect();
        assert_eq!(names.len(), 2000);
    }

    #[test]
    fn person_names_reuse_the_vocabulary() {
        assert_eq!(person_name(0), "Anna Mueller");
        assert!(person_name(1).starts_with("Bernd"));
    }

    #[test]
    fn vocabularies_are_nonempty_and_distinct() {
        assert!(GIVEN_NAMES.len() >= 20);
        assert!(FAMILY_NAMES.len() >= 20);
        assert!(TITLE_TERMS.len() >= 30);
        let set: HashSet<&str> = TITLE_TERMS.iter().copied().collect();
        assert_eq!(set.len(), TITLE_TERMS.len());
    }
}
