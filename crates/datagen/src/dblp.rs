//! A DBLP-like bibliographic dataset generator.
//!
//! Structure (mirroring the RDF export of DBLP used in the paper's
//! evaluation): few classes, many entities, and a very large number of
//! V-vertices (titles, names, years, page ranges) — which is why DBLP's
//! keyword index dwarfs its graph index in Fig. 6b.
//!
//! Classes: `Publication` (with subclasses `Article` and `InProceedings`),
//! `Person`, `Venue` (with subclasses `Journal` and `Conference`).
//! Relations: `author`, `publishedIn`, `cites`, `editedBy`.
//! Attributes: `title`, `year`, `pages`, `name`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kwsearch_rdf::{DataGraph, GraphBuilder};

use crate::names::{person_name, TITLE_TERMS, VENUE_STEMS};
use crate::zipf::ZipfSampler;

/// Configuration of the DBLP-like generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of publication entities.
    pub publications: usize,
    /// Number of person entities.
    pub authors: usize,
    /// Number of venue entities.
    pub venues: usize,
    /// Inclusive year range for the `year` attribute.
    pub year_range: (u32, u32),
    /// Maximum number of authors per publication (at least 1 is used).
    pub max_authors_per_publication: usize,
    /// Probability that a publication cites another one.
    pub citation_probability: f64,
    /// Fraction of publications that additionally carry a subclass type
    /// (`Article` or `InProceedings`).
    pub subclass_fraction: f64,
    /// RNG seed; the generator is deterministic for a given configuration.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            publications: 2_000,
            authors: 800,
            venues: 16,
            year_range: (1990, 2008),
            max_authors_per_publication: 4,
            citation_probability: 0.3,
            subclass_fraction: 0.2,
            seed: 20090001,
        }
    }
}

impl DblpConfig {
    /// A configuration scaled by the number of publications (authors and
    /// venues follow proportionally).
    pub fn with_scale(publications: usize) -> Self {
        Self {
            publications,
            authors: (publications * 2 / 5).max(4),
            venues: (publications / 125).clamp(4, 64),
            ..Self::default()
        }
    }
}

/// The generated dataset: the data graph plus the label pools the workload
/// generator draws keywords from.
#[derive(Debug, Clone)]
pub struct DblpDataset {
    /// The generated data graph.
    pub graph: DataGraph,
    /// All person names, indexed by author number.
    pub author_names: Vec<String>,
    /// All venue names.
    pub venue_names: Vec<String>,
    /// All publication titles, indexed by publication number.
    pub titles: Vec<String>,
    /// The year (as text) of every publication.
    pub years: Vec<String>,
    /// Author indices of every publication (first author first).
    pub authorship: Vec<Vec<usize>>,
    /// Venue index of every publication.
    pub publication_venue: Vec<usize>,
    /// The configuration used.
    pub config: DblpConfig,
}

impl DblpDataset {
    /// Generates a dataset from a configuration.
    pub fn generate(config: DblpConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut builder = GraphBuilder::new();

        // Class hierarchy.
        builder.subclass("Article", "Publication");
        builder.subclass("InProceedings", "Publication");
        builder.subclass("Journal", "Venue");
        builder.subclass("Conference", "Venue");
        builder.subclass("Publication", "Thing");
        builder.subclass("Person", "Thing");
        builder.subclass("Venue", "Thing");

        // People.
        let author_names: Vec<String> = (0..config.authors).map(person_name).collect();
        for (i, name) in author_names.iter().enumerate() {
            let iri = format!("person{i}");
            builder.entity(&iri, "Person");
            builder.attribute(&iri, "name", name);
        }

        // Venues.
        let mut venue_names = Vec::with_capacity(config.venues);
        for i in 0..config.venues {
            let stem = VENUE_STEMS[i % VENUE_STEMS.len()];
            let series = i / VENUE_STEMS.len() + 1;
            let name = if series == 1 {
                stem.to_string()
            } else {
                format!("{stem} {series}")
            };
            let iri = format!("venue{i}");
            let class = if i % 2 == 0 { "Conference" } else { "Journal" };
            builder.entity(&iri, class);
            builder.add_type(&iri, "Venue");
            builder.attribute(&iri, "name", &name);
            venue_names.push(name);
        }

        // Publications: Zipfian author productivity and venue popularity.
        let author_sampler = ZipfSampler::new(config.authors.max(1), 1.0);
        let venue_sampler = ZipfSampler::new(config.venues.max(1), 0.9);
        let term_sampler = ZipfSampler::new(TITLE_TERMS.len(), 0.8);

        let mut titles = Vec::with_capacity(config.publications);
        let mut years = Vec::with_capacity(config.publications);
        let mut authorship = Vec::with_capacity(config.publications);
        let mut publication_venue = Vec::with_capacity(config.publications);
        for p in 0..config.publications {
            let iri = format!("pub{p}");
            builder.entity(&iri, "Publication");
            if rng.gen_bool(config.subclass_fraction) {
                let sub = if rng.gen_bool(0.5) {
                    "Article"
                } else {
                    "InProceedings"
                };
                builder.add_type(&iri, sub);
            }

            // Title: 3–6 Zipf-sampled terms, capitalised.
            let term_count = rng.gen_range(3..=6);
            let mut words = Vec::with_capacity(term_count);
            for _ in 0..term_count {
                let term = TITLE_TERMS[term_sampler.sample(&mut rng)];
                let mut cap = term.to_string();
                if let Some(first) = cap.get_mut(0..1) {
                    first.make_ascii_uppercase();
                }
                words.push(cap);
            }
            let title = words.join(" ");
            builder.attribute(&iri, "title", &title);
            titles.push(title);

            // Year.
            let year = rng.gen_range(config.year_range.0..=config.year_range.1);
            let year_text = year.to_string();
            builder.attribute(&iri, "year", &year_text);
            years.push(year_text);

            // Pages (adds V-vertices without further structure).
            let first_page = rng.gen_range(1..500);
            builder.attribute(
                &iri,
                "pages",
                &format!("{first_page}-{}", first_page + rng.gen_range(5..20)),
            );

            // Authors.
            let author_count = rng.gen_range(1..=config.max_authors_per_publication.max(1));
            let mut pub_authors = Vec::with_capacity(author_count);
            while pub_authors.len() < author_count {
                let a = author_sampler.sample(&mut rng);
                if !pub_authors.contains(&a) {
                    pub_authors.push(a);
                }
                if pub_authors.len() >= config.authors {
                    break;
                }
            }
            for &a in &pub_authors {
                builder.relation(&iri, "author", &format!("person{a}"));
            }
            authorship.push(pub_authors);

            // Venue.
            let v = venue_sampler.sample(&mut rng);
            builder.relation(&iri, "publishedIn", &format!("venue{v}"));
            publication_venue.push(v);

            // Citations to already-generated publications.
            if p > 0 && rng.gen_bool(config.citation_probability) {
                let cited = rng.gen_range(0..p);
                builder.relation(&iri, "cites", &format!("pub{cited}"));
            }
        }

        // A few venues have editors.
        for i in 0..config.venues.min(config.authors) {
            if i % 3 == 0 {
                builder.relation(&format!("venue{i}"), "editedBy", &format!("person{i}"));
            }
        }

        Self {
            graph: builder.finish(),
            author_names,
            venue_names,
            titles,
            years,
            authorship,
            publication_venue,
            config,
        }
    }

    /// Generates a dataset with roughly `publications` publications and
    /// proportional numbers of authors and venues.
    pub fn scaled(publications: usize) -> Self {
        Self::generate(DblpConfig::with_scale(publications))
    }

    /// A small dataset used by unit tests throughout the workspace.
    pub fn small() -> Self {
        Self::generate(DblpConfig {
            publications: 120,
            authors: 60,
            venues: 6,
            ..DblpConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::{GraphStats, VertexKind};

    #[test]
    fn generation_is_deterministic() {
        let a = DblpDataset::small();
        let b = DblpDataset::small();
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.titles, b.titles);
    }

    #[test]
    fn sizes_match_the_configuration() {
        let d = DblpDataset::small();
        assert_eq!(d.titles.len(), 120);
        assert_eq!(d.author_names.len(), 60);
        assert_eq!(d.venue_names.len(), 6);
        assert_eq!(d.authorship.len(), 120);
        let stats = GraphStats::compute(&d.graph);
        // 120 publications + 60 people + 6 venues entities.
        assert_eq!(stats.entities, 186);
        assert!(stats.values > 150, "titles, names, years, pages");
    }

    #[test]
    fn dblp_shape_has_many_values_and_few_classes() {
        let d = DblpDataset::small();
        let stats = GraphStats::compute(&d.graph);
        assert!(stats.classes <= 10);
        assert!(
            stats.values > stats.classes * 10,
            "DBLP is V-vertex heavy: {} values vs {} classes",
            stats.values,
            stats.classes
        );
    }

    #[test]
    fn every_publication_has_author_year_and_venue() {
        let d = DblpDataset::small();
        for p in 0..d.titles.len() {
            let iri = format!("pub{p}");
            let v = d.graph.entity(&iri).expect("publication exists");
            let out = d.graph.out_edges(v);
            let labels: Vec<&str> = out
                .iter()
                .map(|&e| d.graph.edge_label_name(d.graph.edge(e).label))
                .collect();
            assert!(labels.contains(&"author"), "pub{p} has an author");
            assert!(labels.contains(&"year"));
            assert!(labels.contains(&"publishedIn"));
            assert!(labels.contains(&"title"));
        }
    }

    #[test]
    fn authorship_is_skewed() {
        let d = DblpDataset::generate(DblpConfig {
            publications: 400,
            authors: 100,
            ..DblpConfig::default()
        });
        // Count publications per author.
        let mut counts = vec![0usize; 100];
        for authors in &d.authorship {
            for &a in authors {
                counts[a] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        let median = {
            let mut sorted = counts.clone();
            sorted.sort_unstable();
            sorted[50]
        };
        assert!(
            max >= median * 3,
            "Zipfian authorship expected: max {max}, median {median}"
        );
    }

    #[test]
    fn labels_exist_as_value_vertices() {
        let d = DblpDataset::small();
        assert!(d.graph.value(&d.author_names[0]).is_some());
        assert!(d.graph.value(&d.titles[0]).is_some());
        assert!(d.graph.value(&d.years[0]).is_some());
        assert!(d.graph.vertices_of_kind(VertexKind::Value).count() > 0);
    }

    #[test]
    fn scaled_configurations_grow() {
        let small = DblpConfig::with_scale(200);
        let large = DblpConfig::with_scale(2000);
        assert!(large.authors > small.authors);
        assert!(large.venues >= small.venues);
    }
}
