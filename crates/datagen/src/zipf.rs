//! Zipfian sampling.
//!
//! Real bibliographic data is heavily skewed: a few authors write many
//! papers, a few venues host most publications, and popular title terms
//! recur constantly. The generators use a Zipf distribution over their
//! vocabulary so that the produced graphs show the same skew — which is what
//! makes the popularity cost (C2) meaningful.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to `1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with exponent `s` (typically 0.8–1.2).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one item");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true — `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // lint: allow(no-unwrap, reason = "sample() on an empty sampler is a caller bug; is_empty() exists for the check")
        let total = *self.cumulative.last().expect("sampler is non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let sampler = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 10);
        }
        assert_eq!(sampler.len(), 10);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn low_indices_are_sampled_more_often() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn exponent_zero_is_roughly_uniform() {
        let sampler = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..8000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1500, "uniform-ish counts expected, got {counts:?}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_sampler_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let sampler = ZipfSampler::new(50, 1.1);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<usize> = (0..100).map(|_| sampler.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..100).map(|_| sampler.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
