//! Benchmark workloads: keyword queries with gold-standard interpretations.
//!
//! The paper's effectiveness study (Fig. 4) uses 30 DBLP and 9 TAP keyword
//! queries collected from 12 participants, each accompanied by a natural
//! language description of the intended meaning; a generated query is
//! "correct" if it matches that description. We regenerate an equivalent
//! workload programmatically: every [`EffectivenessQuery`] carries the
//! keywords, a description and the **gold conjunctive query** that encodes
//! the intent, so the Reciprocal Rank of the gold query can be computed
//! exactly.
//!
//! The performance study (Fig. 5) uses the ten queries Q1–Q10 of the BLINKS
//! evaluation with an increasing number of keywords;
//! [`dblp_performance_queries`] rebuilds that progression on the generated
//! dataset (Q1–Q3: two keywords, Q4–Q6: three, Q7–Q10: four or five).

use std::collections::BTreeSet;

use kwsearch_query::{ConjunctiveQuery, QueryBuilder};

use crate::dblp::DblpDataset;
use crate::tap::TapDataset;

/// A keyword query with a known intended interpretation.
#[derive(Debug, Clone)]
pub struct EffectivenessQuery {
    /// Identifier (`Q1`, `Q2`, …).
    pub id: String,
    /// The keywords the "user" types.
    pub keywords: Vec<String>,
    /// Natural-language description of the information need.
    pub description: String,
    /// The gold-standard conjunctive query.
    pub gold: ConjunctiveQuery,
}

impl EffectivenessQuery {
    /// Whether `candidate` matches the intended interpretation.
    ///
    /// Two queries are considered equivalent when they use the same set of
    /// predicates and the same set of constants — a variable-renaming-
    /// insensitive proxy for query equivalence that is exact for the
    /// template-generated gold queries of this workload.
    pub fn is_match(&self, candidate: &ConjunctiveQuery) -> bool {
        self.gold.predicates() == candidate.predicates()
            && self.gold.constants() == candidate.constants()
    }

    /// Reciprocal rank of the gold query within a ranked candidate list
    /// (1/rank, or 0.0 if absent) — the RR measure of the paper.
    pub fn reciprocal_rank<'a, I>(&self, ranked: I) -> f64
    where
        I: IntoIterator<Item = &'a ConjunctiveQuery>,
    {
        for (i, candidate) in ranked.into_iter().enumerate() {
            if self.is_match(candidate) {
                return 1.0 / (i + 1) as f64;
            }
        }
        0.0
    }
}

/// A keyword query used in the performance comparison (no gold needed).
#[derive(Debug, Clone)]
pub struct PerformanceQuery {
    /// Identifier (`Q1`…`Q10`).
    pub id: String,
    /// The keywords.
    pub keywords: Vec<String>,
}

impl PerformanceQuery {
    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Whether the query has no keywords (never true for generated
    /// workloads).
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }
}

/// Family name of a full person name.
fn family_name(full: &str) -> String {
    full.split_whitespace().nth(1).unwrap_or(full).to_string()
}

/// A publication index whose author list is non-empty (always true for the
/// generator) selected deterministically.
fn pick_publication(dataset: &DblpDataset, salt: usize) -> usize {
    (salt * 37 + 11) % dataset.titles.len()
}

/// Builds the 30-query DBLP effectiveness workload (Fig. 4).
///
/// The queries cycle through templates of increasing ambiguity and length
/// (two to four keywords, as in the paper's collected workload):
/// full author name + year, family name + year, author + "publications",
/// venue + year, two co-authors, relation keyword + year,
/// author + venue + year, and title term + author + venue + year.
pub fn dblp_effectiveness_workload(dataset: &DblpDataset, n: usize) -> Vec<EffectivenessQuery> {
    let mut queries = Vec::with_capacity(n);
    for i in 0..n {
        let p = pick_publication(dataset, i);
        let author_idx = dataset.authorship[p][0];
        let author = dataset.author_names[author_idx].clone();
        let year = dataset.years[p].clone();
        let venue = dataset.venue_names[dataset.publication_venue[p]].clone();

        let q = match i % 8 {
            0 => EffectivenessQuery {
                id: format!("Q{}", i + 1),
                keywords: vec![author.clone(), year.clone()],
                description: format!("All publications by {author} in {year}"),
                gold: QueryBuilder::new()
                    .class_pattern("x", "Publication")
                    .attribute_pattern("x", "year", &year)
                    .relation_pattern("x", "author", "y")
                    .class_pattern("y", "Person")
                    .attribute_pattern("y", "name", &author)
                    .distinguish_all()
                    .build(),
            },
            1 => EffectivenessQuery {
                id: format!("Q{}", i + 1),
                keywords: vec![family_name(&author), year.clone()],
                description: format!(
                    "All publications by an author named {} in {year}",
                    family_name(&author)
                ),
                gold: QueryBuilder::new()
                    .class_pattern("x", "Publication")
                    .attribute_pattern("x", "year", &year)
                    .relation_pattern("x", "author", "y")
                    .class_pattern("y", "Person")
                    .attribute_pattern("y", "name", &author)
                    .distinguish_all()
                    .build(),
            },
            2 => EffectivenessQuery {
                id: format!("Q{}", i + 1),
                keywords: vec![author.clone(), "publications".to_string()],
                description: format!("All publications authored by {author}"),
                gold: QueryBuilder::new()
                    .class_pattern("x", "Publication")
                    .relation_pattern("x", "author", "y")
                    .class_pattern("y", "Person")
                    .attribute_pattern("y", "name", &author)
                    .distinguish_all()
                    .build(),
            },
            3 => EffectivenessQuery {
                id: format!("Q{}", i + 1),
                keywords: vec![venue.clone(), year.clone()],
                description: format!("Publications that appeared in {venue} in {year}"),
                gold: QueryBuilder::new()
                    .class_pattern("x", "Publication")
                    .attribute_pattern("x", "year", &year)
                    .relation_pattern("x", "publishedIn", "v")
                    .class_pattern("v", "Venue")
                    .attribute_pattern("v", "name", &venue)
                    .distinguish_all()
                    .build(),
            },
            4 => {
                // Two authors of the same publication when available, else
                // the first author twice removed.
                let second_idx = dataset.authorship[p]
                    .get(1)
                    .copied()
                    .unwrap_or((author_idx + 1) % dataset.author_names.len());
                let second = dataset.author_names[second_idx].clone();
                EffectivenessQuery {
                    id: format!("Q{}", i + 1),
                    keywords: vec![author.clone(), second.clone()],
                    description: format!("Publications co-authored by {author} and {second}"),
                    gold: QueryBuilder::new()
                        .class_pattern("x", "Publication")
                        .relation_pattern("x", "author", "y")
                        .class_pattern("y", "Person")
                        .attribute_pattern("y", "name", &author)
                        .relation_pattern("x", "author", "z")
                        .class_pattern("z", "Person")
                        .attribute_pattern("z", "name", &second)
                        .distinguish_all()
                        .build(),
                }
            }
            5 => EffectivenessQuery {
                id: format!("Q{}", i + 1),
                keywords: vec!["author".to_string(), year.clone()],
                description: format!("Authors of publications from {year}"),
                gold: QueryBuilder::new()
                    .class_pattern("x", "Publication")
                    .attribute_pattern("x", "year", &year)
                    .relation_pattern("x", "author", "y")
                    .class_pattern("y", "Person")
                    .distinguish_all()
                    .build(),
            },
            6 => EffectivenessQuery {
                id: format!("Q{}", i + 1),
                keywords: vec![author.clone(), venue.clone(), year.clone()],
                description: format!("Publications by {author} that appeared in {venue} in {year}"),
                gold: QueryBuilder::new()
                    .class_pattern("x", "Publication")
                    .attribute_pattern("x", "year", &year)
                    .relation_pattern("x", "author", "y")
                    .class_pattern("y", "Person")
                    .attribute_pattern("y", "name", &author)
                    .relation_pattern("x", "publishedIn", "v")
                    .class_pattern("v", "Venue")
                    .attribute_pattern("v", "name", &venue)
                    .distinguish_all()
                    .build(),
            },
            _ => {
                let title = dataset.titles[p].clone();
                let title_term = title
                    .split_whitespace()
                    .next()
                    .unwrap_or("search")
                    .to_string();
                EffectivenessQuery {
                    id: format!("Q{}", i + 1),
                    keywords: vec![title_term, author.clone(), venue.clone(), year.clone()],
                    description: format!(
                        "The publication titled '{title}' by {author} in {venue}, {year}"
                    ),
                    gold: QueryBuilder::new()
                        .class_pattern("x", "Publication")
                        .attribute_pattern("x", "title", &title)
                        .attribute_pattern("x", "year", &year)
                        .relation_pattern("x", "author", "y")
                        .class_pattern("y", "Person")
                        .attribute_pattern("y", "name", &author)
                        .relation_pattern("x", "publishedIn", "v")
                        .class_pattern("v", "Venue")
                        .attribute_pattern("v", "name", &venue)
                        .distinguish_all()
                        .build(),
                }
            }
        };
        queries.push(q);
    }
    queries
}

/// Builds the 9-query TAP effectiveness workload.
pub fn tap_effectiveness_workload(dataset: &TapDataset) -> Vec<EffectivenessQuery> {
    let label = |class: &str, i: usize| -> String {
        dataset
            .instances
            .iter()
            .find(|(c, _)| c == class)
            .map(|(_, labels)| labels[i % labels.len()].clone())
            .unwrap_or_else(|| format!("{class} {i}"))
    };

    let templates: Vec<(Vec<String>, String, ConjunctiveQuery)> = vec![
        (
            vec![label("Athlete", 0), "team".to_string()],
            "The team the athlete plays for".to_string(),
            QueryBuilder::new()
                .class_pattern("a", "Athlete")
                .attribute_pattern("a", "name", &label("Athlete", 0))
                .relation_pattern("a", "playsFor", "t")
                .class_pattern("t", "SportsTeam")
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("City", 1), "country".to_string()],
            "The country the city is located in".to_string(),
            QueryBuilder::new()
                .class_pattern("c", "City")
                .attribute_pattern("c", "name", &label("City", 1))
                .relation_pattern("c", "locatedIn", "k")
                .class_pattern("k", "Country")
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("Movie", 2), "director".to_string()],
            "The director of the movie".to_string(),
            QueryBuilder::new()
                .class_pattern("m", "Movie")
                .attribute_pattern("m", "name", &label("Movie", 2))
                .relation_pattern("m", "directedBy", "d")
                .class_pattern("d", "Director")
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("Song", 3), label("Album", 3)],
            "The song on the given album".to_string(),
            QueryBuilder::new()
                .class_pattern("s", "Song")
                .attribute_pattern("s", "name", &label("Song", 3))
                .relation_pattern("s", "partOfAlbum", "a")
                .class_pattern("a", "Album")
                .attribute_pattern("a", "name", &label("Album", 3))
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("Musician", 4), "award".to_string()],
            "Awards won by the musician".to_string(),
            QueryBuilder::new()
                .class_pattern("m", "Musician")
                .attribute_pattern("m", "name", &label("Musician", 4))
                .relation_pattern("m", "wonAward", "a")
                .class_pattern("a", "Award")
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("University", 5), label("City", 5)],
            "The university located in the city".to_string(),
            QueryBuilder::new()
                .class_pattern("u", "University")
                .attribute_pattern("u", "name", &label("University", 5))
                .relation_pattern("u", "locatedIn", "c")
                .class_pattern("c", "City")
                .attribute_pattern("c", "name", &label("City", 5))
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("Scientist", 0), "university".to_string()],
            "The university the scientist works at".to_string(),
            QueryBuilder::new()
                .class_pattern("s", "Scientist")
                .attribute_pattern("s", "name", &label("Scientist", 0))
                .relation_pattern("s", "worksAt", "u")
                .class_pattern("u", "University")
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("SportsTeam", 1), "league".to_string()],
            "The league the team plays in".to_string(),
            QueryBuilder::new()
                .class_pattern("t", "SportsTeam")
                .attribute_pattern("t", "name", &label("SportsTeam", 1))
                .relation_pattern("t", "memberOfLeague", "l")
                .class_pattern("l", "SportsLeague")
                .distinguish_all()
                .build(),
        ),
        (
            vec![label("Book", 2), "author".to_string()],
            "The author who wrote the book".to_string(),
            QueryBuilder::new()
                .class_pattern("b", "Book")
                .attribute_pattern("b", "name", &label("Book", 2))
                .relation_pattern("b", "writtenBy", "a")
                .class_pattern("a", "Author")
                .distinguish_all()
                .build(),
        ),
    ];

    templates
        .into_iter()
        .enumerate()
        .map(|(i, (keywords, description, gold))| EffectivenessQuery {
            id: format!("T{}", i + 1),
            keywords,
            description,
            gold,
        })
        .collect()
}

/// Builds the Q1–Q10 performance workload (Fig. 5) with an increasing
/// number of keywords, drawn from the dataset's labels.
pub fn dblp_performance_queries(dataset: &DblpDataset) -> Vec<PerformanceQuery> {
    let author = |i: usize| dataset.author_names[i % dataset.author_names.len()].clone();
    let year = |i: usize| dataset.years[i % dataset.years.len()].clone();
    let venue = |i: usize| dataset.venue_names[i % dataset.venue_names.len()].clone();
    let title_term = |i: usize| {
        dataset.titles[i % dataset.titles.len()]
            .split_whitespace()
            .next()
            .unwrap_or("search")
            .to_string()
    };

    let specs: Vec<Vec<String>> = vec![
        // Q1-Q3: two keywords.
        vec![author(0), year(0)],
        vec![venue(1), year(3)],
        vec![author(5), "publications".to_string()],
        // Q4-Q6: three keywords.
        vec![author(2), venue(0), year(7)],
        vec![author(7), author(12), year(11)],
        vec![title_term(4), author(9), year(5)],
        // Q7-Q10: four and five keywords.
        vec![author(1), author(3), venue(2), year(13)],
        vec![title_term(8), author(6), venue(3), year(17)],
        vec![author(4), author(8), author(15), year(19)],
        vec![title_term(2), author(10), author(20), venue(1), year(23)],
    ];

    specs
        .into_iter()
        .enumerate()
        .map(|(i, keywords)| PerformanceQuery {
            id: format!("Q{}", i + 1),
            keywords,
        })
        .collect()
}

/// Distinct keyword counts of a performance workload, useful for reports.
pub fn keyword_counts(queries: &[PerformanceQuery]) -> BTreeSet<usize> {
    queries.iter().map(PerformanceQuery::len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_query::QueryBuilder;

    #[test]
    fn dblp_workload_has_the_requested_size_and_valid_golds() {
        let dataset = DblpDataset::small();
        let workload = dblp_effectiveness_workload(&dataset, 30);
        assert_eq!(workload.len(), 30);
        for q in &workload {
            assert!(!q.keywords.is_empty());
            assert!(!q.gold.is_empty());
            assert!(!q.description.is_empty());
            assert!(q.gold.predicates().contains("type"));
        }
    }

    #[test]
    fn tap_workload_has_nine_queries() {
        let dataset = TapDataset::small();
        let workload = tap_effectiveness_workload(&dataset);
        assert_eq!(workload.len(), 9);
        for q in &workload {
            assert_eq!(q.keywords.len(), 2);
            assert!(!q.gold.is_empty());
        }
    }

    #[test]
    fn performance_queries_grow_in_keyword_count() {
        let dataset = DblpDataset::small();
        let queries = dblp_performance_queries(&dataset);
        assert_eq!(queries.len(), 10);
        assert_eq!(queries[0].len(), 2);
        assert_eq!(queries[4].len(), 3);
        assert_eq!(queries[9].len(), 5);
        assert!(keyword_counts(&queries).contains(&4));
        for q in &queries {
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn gold_matching_is_insensitive_to_variable_names() {
        let dataset = DblpDataset::small();
        let workload = dblp_effectiveness_workload(&dataset, 1);
        let gold = &workload[0];
        // Rebuild the same query with different variable names.
        let author = dataset.author_names[dataset.authorship[pick(&dataset, 0)][0]].clone();
        let year = dataset.years[pick(&dataset, 0)].clone();
        let candidate = QueryBuilder::new()
            .class_pattern("a", "Publication")
            .attribute_pattern("a", "year", &year)
            .relation_pattern("a", "author", "b")
            .class_pattern("b", "Person")
            .attribute_pattern("b", "name", &author)
            .distinguish_all()
            .build();
        assert!(gold.is_match(&candidate));
        // A query about a different year must not match.
        let other = QueryBuilder::new()
            .class_pattern("a", "Publication")
            .attribute_pattern("a", "year", "1600")
            .distinguish_all()
            .build();
        assert!(!gold.is_match(&other));
    }

    fn pick(dataset: &DblpDataset, salt: usize) -> usize {
        super::pick_publication(dataset, salt)
    }

    #[test]
    fn reciprocal_rank_honours_the_position() {
        let dataset = DblpDataset::small();
        let workload = dblp_effectiveness_workload(&dataset, 1);
        let gold = &workload[0];
        let wrong = QueryBuilder::new()
            .class_pattern("x", "Venue")
            .distinguish_all()
            .build();
        let right = gold.gold.clone();
        assert_eq!(gold.reciprocal_rank([&right]), 1.0);
        assert_eq!(gold.reciprocal_rank([&wrong, &right]), 0.5);
        assert_eq!(gold.reciprocal_rank([&wrong]), 0.0);
        assert_eq!(gold.reciprocal_rank([]), 0.0);
    }

    #[test]
    fn workloads_are_deterministic() {
        let dataset = DblpDataset::small();
        let a = dblp_effectiveness_workload(&dataset, 10);
        let b = dblp_effectiveness_workload(&dataset, 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.keywords, y.keywords);
            assert_eq!(x.gold, y.gold);
        }
    }
}
