//! Property-based tests of the keyword index: analyzer normalisation,
//! Levenshtein metric properties and lookup guarantees.

use proptest::prelude::*;

use kwsearch_keyword_index::{levenshtein, porter_stem, Analyzer, KeywordIndex};
use kwsearch_rdf::{DataGraph, Triple};

fn word() -> impl Strategy<Value = String> {
    "[a-zA-Z]{1,12}"
}

fn phrase() -> impl Strategy<Value = String> {
    proptest::collection::vec(word(), 1..5).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Levenshtein distance is a metric: identity, symmetry and the
    /// triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// The bounded variant agrees with the exact distance whenever it
    /// returns a value, and only gives up when the bound is truly exceeded.
    #[test]
    fn bounded_levenshtein_is_consistent(a in word(), b in word(), max in 0usize..6) {
        let exact = levenshtein(&a, &b);
        match kwsearch_keyword_index::bounded_levenshtein(&a, &b, max) {
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d <= max);
            }
            None => prop_assert!(exact > max),
        }
    }

    /// Analysis produces lower-case terms, never stop words, and is
    /// idempotent on its own output.
    #[test]
    fn analyzer_output_is_normalised(text in phrase()) {
        let analyzer = Analyzer::new();
        let terms = analyzer.analyze(&text);
        for term in &terms {
            prop_assert_eq!(term, &term.to_lowercase());
            prop_assert!(!term.is_empty());
        }
        // Re-analysing the joined output never produces *more* terms.
        let reanalyzed = analyzer.analyze(&terms.join(" "));
        prop_assert!(reanalyzed.len() <= terms.len());
    }

    /// Stemming never produces an empty string for non-empty alphabetic
    /// input and never grows the word.
    #[test]
    fn stemming_shrinks_words(w in word()) {
        let lower = w.to_lowercase();
        let stem = porter_stem(&lower);
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.len() <= lower.len());
    }

    /// Every value vertex can be found again through the keyword index by
    /// querying with its own label (exact self-retrieval), and all returned
    /// scores stay within (0, 1].
    #[test]
    fn values_are_self_retrievable(labels in proptest::collection::btree_set("[a-z]{3,10}", 1..8)) {
        let mut graph = DataGraph::new();
        for (i, label) in labels.iter().enumerate() {
            let subject = format!("e{i}");
            graph.insert_triple(&Triple::typed(&subject, "Item")).unwrap();
            graph.insert_triple(&Triple::attribute(&subject, "label", label)).unwrap();
        }
        let index = KeywordIndex::build(&graph);
        for label in &labels {
            let matches = index.lookup(label);
            prop_assert!(!matches.is_empty(), "label {} must be retrievable", label);
            let value_vertex = graph.value(label).unwrap();
            let found = matches.iter().any(|m| match &m.element {
                kwsearch_keyword_index::MatchedElement::Value { value, .. } => *value == value_vertex,
                _ => false,
            });
            prop_assert!(found, "the exact value vertex must be among the matches");
            for m in &matches {
                prop_assert!(m.score > 0.0 && m.score <= 1.0 + 1e-9);
            }
        }
    }
}
