//! Semantic expansion of terms.
//!
//! The paper links every indexed term with "semantically similar entries
//! such as synonyms, hyponyms and hypernyms … extracted from WordNet" so
//! that a keyword can match a label it does not share any token with.
//! WordNet itself is not redistributable inside this repository, so the
//! [`Thesaurus`] ships with a compact built-in synonym table covering the
//! vocabulary of the evaluation datasets (bibliographic, university and
//! general-knowledge domains) and can be extended programmatically. The
//! lookup interface is the same as a WordNet-backed implementation would
//! offer: given a term, return related terms with a relatedness weight.
//!
//! This substitution is recorded in `DESIGN.md`.

use std::collections::HashMap;

use kwsearch_rdf::snapshot::{SectionDecoder, SectionEncoder, SnapshotError};

/// Relation between a term and a related term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Same meaning (synonym) — full weight.
    Synonym,
    /// More general term (hypernym) — dampened weight.
    Hypernym,
    /// More specific term (hyponym) — dampened weight.
    Hyponym,
}

impl Relation {
    /// The score multiplier applied to matches found through this relation.
    pub fn weight(self) -> f64 {
        match self {
            Relation::Synonym => 0.9,
            Relation::Hypernym => 0.7,
            Relation::Hyponym => 0.7,
        }
    }

    /// Stable numeric tag used by the snapshot format.
    fn tag(self) -> u32 {
        match self {
            Relation::Synonym => 0,
            Relation::Hypernym => 1,
            Relation::Hyponym => 2,
        }
    }

    /// Inverse of [`Self::tag`].
    fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            0 => Some(Relation::Synonym),
            1 => Some(Relation::Hypernym),
            2 => Some(Relation::Hyponym),
            _ => None,
        }
    }
}

/// A related term together with its relation to the queried term.
#[derive(Debug, Clone, PartialEq)]
pub struct RelatedTerm {
    /// The related word (not stemmed).
    pub term: String,
    /// How the word relates to the queried term.
    pub relation: Relation,
}

/// An in-memory synonym/hypernym/hyponym table.
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    entries: HashMap<String, Vec<RelatedTerm>>,
}

/// Built-in synonym groups: every word in a group is a synonym of every
/// other word in the group.
const SYNONYM_GROUPS: &[&[&str]] = &[
    &["publication", "paper", "article"],
    &["author", "writer", "creator"],
    &["researcher", "scientist", "academic"],
    &["institute", "institution", "organization", "organisation"],
    &["university", "college"],
    &["project", "undertaking"],
    &["person", "human", "individual"],
    &["student", "pupil", "learner"],
    &["professor", "lecturer", "instructor"],
    &["course", "class", "lecture"],
    &["department", "faculty", "division"],
    &["conference", "venue", "proceedings"],
    &["journal", "periodical", "magazine"],
    &["year", "date"],
    &["name", "label", "title"],
    &["work", "employment", "job"],
    &["location", "place", "region"],
    &["city", "town"],
    &["country", "nation", "state"],
    &["sport", "game", "athletics"],
    &["music", "song", "melody"],
    &["film", "movie", "picture"],
    &["book", "volume"],
    &["team", "club", "squad"],
];

/// Built-in (hyponym, hypernym) pairs: the first word is a more specific
/// kind of the second.
const HYPERNYM_PAIRS: &[(&str, &str)] = &[
    ("researcher", "person"),
    ("professor", "person"),
    ("student", "person"),
    ("author", "person"),
    ("university", "organization"),
    ("institute", "organization"),
    ("department", "organization"),
    ("publication", "document"),
    ("article", "document"),
    ("book", "document"),
    ("thesis", "document"),
    ("city", "location"),
    ("country", "location"),
    ("conference", "event"),
    ("workshop", "event"),
];

impl Thesaurus {
    /// An empty thesaurus (no semantic expansion).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The built-in thesaurus covering the evaluation vocabulary.
    pub fn builtin() -> Self {
        let mut t = Self::default();
        for group in SYNONYM_GROUPS {
            for &a in *group {
                for &b in *group {
                    if a != b {
                        t.add(a, b, Relation::Synonym);
                    }
                }
            }
        }
        for &(hypo, hyper) in HYPERNYM_PAIRS {
            t.add(hypo, hyper, Relation::Hypernym);
            t.add(hyper, hypo, Relation::Hyponym);
        }
        t
    }

    /// Adds a directed relation `term → related`.
    pub fn add(&mut self, term: &str, related: &str, relation: Relation) {
        let entry = self.entries.entry(term.to_lowercase()).or_default();
        let related = related.to_lowercase();
        if !entry
            .iter()
            .any(|r| r.term == related && r.relation == relation)
        {
            entry.push(RelatedTerm {
                term: related,
                relation,
            });
        }
    }

    /// Adds a bidirectional synonym pair.
    pub fn add_synonyms(&mut self, a: &str, b: &str) {
        self.add(a, b, Relation::Synonym);
        self.add(b, a, Relation::Synonym);
    }

    /// All terms related to `term` (lower-cased lookup).
    pub fn related(&self, term: &str) -> &[RelatedTerm] {
        self.entries
            .get(&term.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of terms with at least one relation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the thesaurus has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialises the table with terms in sorted order, so equal thesauri
    /// produce byte-identical snapshots.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        let mut terms: Vec<&String> = self
            .entries
            // lint: unordered-ok(reason = "keys are collected and sorted before serialisation, erasing hash order")
            .keys()
            .collect();
        terms.sort_unstable();
        enc.put_u64(terms.len() as u64);
        for term in terms {
            enc.put_str(term);
            let related = &self.entries[term];
            enc.put_u64(related.len() as u64);
            for r in related {
                enc.put_str(&r.term);
                enc.put_u32(r.relation.tag());
            }
        }
    }

    /// Reads a table serialised by [`Self::write_snapshot`]. The thesaurus
    /// is small (hundreds of entries), so rebuilding the hash map here does
    /// not threaten the O(bytes) load budget.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        let term_count = dec.get_u64()?;
        let mut entries = HashMap::new();
        for _ in 0..term_count {
            let term = dec.get_string()?;
            let related_count = dec.get_u64()?;
            let mut related = Vec::new();
            for _ in 0..related_count {
                let related_term = dec.get_string()?;
                let relation = Relation::from_tag(dec.get_u32()?)
                    .ok_or_else(|| dec.corrupt("unknown thesaurus relation tag"))?;
                related.push(RelatedTerm {
                    term: related_term,
                    relation,
                });
            }
            if entries.insert(term, related).is_some() {
                return Err(dec.corrupt("duplicate thesaurus term"));
            }
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contains_bibliographic_synonyms() {
        let t = Thesaurus::builtin();
        let related: Vec<&str> = t
            .related("publication")
            .iter()
            .map(|r| r.term.as_str())
            .collect();
        assert!(related.contains(&"paper"));
        assert!(related.contains(&"article"));
    }

    #[test]
    fn synonym_groups_are_symmetric() {
        let t = Thesaurus::builtin();
        assert!(t.related("paper").iter().any(|r| r.term == "publication"));
        assert!(t.related("publication").iter().any(|r| r.term == "paper"));
    }

    #[test]
    fn hypernyms_and_hyponyms_are_directional() {
        let t = Thesaurus::builtin();
        assert!(t
            .related("researcher")
            .iter()
            .any(|r| r.term == "person" && r.relation == Relation::Hypernym));
        assert!(t
            .related("person")
            .iter()
            .any(|r| r.term == "researcher" && r.relation == Relation::Hyponym));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let t = Thesaurus::builtin();
        assert!(!t.related("Publication").is_empty());
        assert!(!t.related("AUTHOR").is_empty());
    }

    #[test]
    fn unknown_terms_have_no_relations() {
        let t = Thesaurus::builtin();
        assert!(t.related("xyzzy").is_empty());
    }

    #[test]
    fn custom_entries_can_be_added() {
        let mut t = Thesaurus::empty();
        assert!(t.is_empty());
        t.add_synonyms("rdf", "resource description framework");
        assert!(t.related("rdf").iter().any(|r| r.term.contains("resource")));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_relations_are_not_stored_twice() {
        let mut t = Thesaurus::empty();
        t.add("a", "b", Relation::Synonym);
        t.add("a", "b", Relation::Synonym);
        assert_eq!(t.related("a").len(), 1);
    }

    #[test]
    fn relation_weights_order_synonyms_first() {
        assert!(Relation::Synonym.weight() > Relation::Hypernym.weight());
        assert_eq!(Relation::Hypernym.weight(), Relation::Hyponym.weight());
    }

    #[test]
    fn snapshot_round_trips_and_is_deterministic() {
        use kwsearch_rdf::snapshot::{SnapshotReader, SnapshotWriter};
        let t = Thesaurus::builtin();
        let bytes_of = |t: &Thesaurus| {
            let mut enc = SectionEncoder::new();
            t.write_snapshot(&mut enc);
            let mut writer = SnapshotWriter::new();
            writer.add_section(1, enc);
            let mut bytes = Vec::new();
            writer.write_to(&mut bytes).unwrap();
            bytes
        };
        let bytes = bytes_of(&t);
        // Deterministic despite the HashMap backing store.
        assert_eq!(bytes, bytes_of(&Thesaurus::builtin()));
        let reader = SnapshotReader::read_from(bytes.as_slice()).unwrap();
        let mut dec = reader.section(1).unwrap();
        let loaded = Thesaurus::read_snapshot(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(loaded.len(), t.len());
        for term in ["publication", "researcher", "person", "film"] {
            assert_eq!(loaded.related(term), t.related(term));
        }
    }
}
