//! A generic term → posting-list inverted index.
//!
//! The keyword-element map of Section IV-A is "implemented as an inverted
//! index": every analysed term of every indexed label points to the list of
//! graph elements whose label produced the term. The index is generic over
//! the posting payload so it can be unit-tested independently of the graph
//! model.

use std::collections::HashMap;

/// A term → postings map.
#[derive(Debug, Clone)]
pub struct InvertedIndex<T> {
    postings: HashMap<String, Vec<T>>,
    posting_count: usize,
}

impl<T> Default for InvertedIndex<T> {
    fn default() -> Self {
        Self {
            postings: HashMap::new(),
            posting_count: 0,
        }
    }
}

impl<T: Clone + PartialEq> InvertedIndex<T> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `payload` to the posting list of `term`, ignoring exact
    /// duplicates.
    pub fn insert(&mut self, term: &str, payload: T) {
        let list = self.postings.entry(term.to_string()).or_default();
        if !list.contains(&payload) {
            list.push(payload);
            self.posting_count += 1;
        }
    }

    /// The posting list of `term` (empty slice if unknown).
    pub fn get(&self, term: &str) -> &[T] {
        self.postings.get(term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `term` has at least one posting.
    pub fn contains_term(&self, term: &str) -> bool {
        self.postings.contains_key(term)
    }

    /// Iterates over the vocabulary in unspecified order.
    ///
    /// Callers that care about ordering must sort; the fuzzy matcher folds
    /// every term through an order-independent best-score accumulator.
    pub fn terms(&self) -> impl Iterator<Item = &str> + '_ {
        // lint: unordered-ok(reason = "documented as unspecified order; the sole production caller accumulates a per-element max score, which is commutative")
        self.postings.keys().map(String::as_str)
    }

    /// Iterates over `(term, postings)` pairs in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[T])> + '_ {
        self.postings
            // lint: unordered-ok(reason = "documented as unspecified order; used only by inspection paths and tests that sort or count")
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings across all terms.
    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Whether the index holds no terms.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Approximate heap usage in bytes (Fig. 6b index-size report).
    pub fn heap_bytes(&self) -> usize {
        let term_bytes: usize = self
            .postings
            // lint: unordered-ok(reason = "summing byte sizes — addition over usize is commutative, so hash order cannot change the total")
            .keys()
            .map(|k| k.len() + std::mem::size_of::<String>())
            .sum();
        let posting_bytes = self.posting_count * std::mem::size_of::<T>();
        term_bytes + posting_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut idx = InvertedIndex::new();
        idx.insert("publication", 1u32);
        idx.insert("publication", 2);
        idx.insert("author", 3);
        assert_eq!(idx.get("publication"), &[1, 2]);
        assert_eq!(idx.get("author"), &[3]);
        assert!(idx.get("missing").is_empty());
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut idx = InvertedIndex::new();
        idx.insert("term", 7u32);
        idx.insert("term", 7);
        assert_eq!(idx.get("term").len(), 1);
        assert_eq!(idx.posting_count(), 1);
    }

    #[test]
    fn counts_and_vocabulary() {
        let mut idx = InvertedIndex::new();
        assert!(idx.is_empty());
        idx.insert("a", 1u32);
        idx.insert("b", 1);
        idx.insert("b", 2);
        assert_eq!(idx.term_count(), 2);
        assert_eq!(idx.posting_count(), 3);
        let mut terms: Vec<&str> = idx.terms().collect();
        terms.sort_unstable();
        assert_eq!(terms, vec!["a", "b"]);
        assert!(idx.contains_term("a"));
        assert!(!idx.contains_term("c"));
    }

    #[test]
    fn heap_bytes_scales_with_content() {
        let mut small = InvertedIndex::new();
        small.insert("x", 1u64);
        let mut large = InvertedIndex::new();
        for i in 0..100u64 {
            large.insert(&format!("term-{i}"), i);
        }
        assert!(large.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn entries_expose_all_postings() {
        let mut idx = InvertedIndex::new();
        idx.insert("a", 1u32);
        idx.insert("a", 2);
        idx.insert("b", 3);
        let total: usize = idx.entries().map(|(_, p)| p.len()).sum();
        assert_eq!(total, 3);
    }
}
