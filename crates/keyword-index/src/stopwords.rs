//! English stop words removed during lexical analysis.

/// The built-in stop-word list. Kept deliberately small: labels in RDF data
/// are short, so aggressive stop-wording would delete informative terms.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "in",
    "into", "is", "it", "its", "of", "on", "or", "that", "the", "their", "then", "there", "these",
    "this", "to", "was", "were", "which", "will", "with",
];

/// Returns `true` if `word` (already lower-cased) is a stop word.
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOP_WORDS, "STOP_WORDS must stay sorted");
    }

    #[test]
    fn common_stop_words_are_detected() {
        for w in ["the", "and", "of", "with"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_kept() {
        for w in ["publication", "cimiano", "algorithm", "1999", "aifb"] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }
}
