//! Edit distance for syntactic similarity.
//!
//! "In order to incorporate syntactic similarities, the Levenshtein distance
//! is used for an imprecise matching of keywords to terms." (Section IV-A)

/// Computes the (unbounded) Levenshtein distance between two strings,
/// operating on Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    // lint: allow(no-unwrap, reason = "bounded_levenshtein returns None only when the distance exceeds the bound, which usize::MAX never allows")
    bounded_levenshtein(a, b, usize::MAX).expect("unbounded distance always returned")
}

/// Computes the Levenshtein distance, giving up early when it can prove the
/// distance exceeds `max`. Returns `None` in that case.
///
/// The early exit keeps the fuzzy vocabulary scan of the keyword index cheap:
/// most vocabulary terms differ from the query keyword by far more than the
/// acceptance threshold.
pub fn bounded_levenshtein(a: &str, b: &str, max: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    let (n, m) = (a_chars.len(), b_chars.len());
    if n == 0 {
        return (m <= max).then_some(m);
    }
    if m == 0 {
        return (n <= max).then_some(n);
    }
    if n.abs_diff(m) > max {
        return None;
    }

    let mut prev: Vec<usize> = (0..=m).collect();
    let mut current = vec![0usize; m + 1];
    for i in 1..=n {
        current[0] = i;
        let mut row_min = current[0];
        for j in 1..=m {
            let cost = usize::from(a_chars[i - 1] != b_chars[j - 1]);
            current[j] = (prev[j] + 1)
                .min(current[j - 1] + 1)
                .min(prev[j - 1] + cost);
            row_min = row_min.min(current[j]);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut current);
    }
    let d = prev[m];
    (d <= max).then_some(d)
}

/// Normalised similarity in `[0, 1]`: `1 - distance / max(|a|, |b|)`.
///
/// Comparison is case-insensitive, matching the keyword index's analyzer
/// which lower-cases all terms.
pub fn similarity(a: &str, b: &str) -> f64 {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    let longest = a.chars().count().max(b.chars().count());
    if longest == 0 {
        return 1.0;
    }
    let d = levenshtein(&a, &b);
    1.0 - d as f64 / longest as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let pairs = [
            ("cimiano", "cimano"),
            ("aifb", "afib"),
            ("publication", "publikation"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn bounded_distance_gives_up_when_exceeded() {
        assert_eq!(bounded_levenshtein("kitten", "sitting", 3), Some(3));
        assert_eq!(bounded_levenshtein("kitten", "sitting", 2), None);
        assert_eq!(
            bounded_levenshtein("short", "a very long different string", 3),
            None
        );
        assert_eq!(bounded_levenshtein("same", "same", 0), Some(0));
    }

    #[test]
    fn typo_similarity_is_high() {
        assert!(similarity("cimiano", "cimano") > 0.8);
        assert!(similarity("publication", "publications") > 0.9);
        assert!(similarity("aifb", "xyz") < 0.3);
    }

    #[test]
    fn similarity_is_case_insensitive() {
        assert_eq!(similarity("AIFB", "aifb"), 1.0);
        assert_eq!(similarity("Cimiano", "cimiano"), 1.0);
    }

    #[test]
    fn unicode_is_handled_per_character() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("naïve", "naive"), 1);
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let words = ["graph", "grape", "grove", "growth"];
        for a in words {
            for b in words {
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
