//! The keyword index of Section IV-A.
//!
//! The keyword index is "in fact an IR engine, which lexically analyzes a
//! given keyword, performs an imprecise matching, and finally returns a list
//! of graph elements having labels that are syntactically or semantically
//! similar". This crate provides exactly that engine:
//!
//! * [`analyzer`] — the lexical analysis pipeline (tokenisation, stop-word
//!   removal, stemming),
//! * [`stemmer`] — a Porter stemmer,
//! * [`stopwords`] — the built-in English stop-word list,
//! * [`levenshtein`](mod@levenshtein) — bounded edit distance for syntactic similarity,
//! * [`thesaurus`] — synonym/hypernym expansion standing in for WordNet,
//! * [`inverted`] — the build-time term → posting-list accumulator,
//! * [`postings`] — the frozen flat posting lists and augmentation side
//!   tables that lookups and disk snapshots operate on,
//! * [`keyword_index`] — the keyword-to-element map returning, for each
//!   keyword, the matching classes, values, relations and attributes with
//!   their neighbourhood data structures (`[V-vertex, A-edge, (C-vertex…)]`)
//!   and matching scores `s_m ∈ [0, 1]`.
//!
//! E-vertices (entity URIs) are deliberately not indexed, following the
//! paper: "it can be assumed the user will enter keywords corresponding to
//! attribute values such as a name rather than using the verbose URI".

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyzer;
pub mod inverted;
pub mod keyword_index;
pub mod levenshtein;
pub mod postings;
pub mod stemmer;
pub mod stopwords;
pub mod thesaurus;

pub use analyzer::Analyzer;
pub use inverted::InvertedIndex;
pub use keyword_index::{
    ElementRef, KeywordIndex, KeywordIndexConfig, KeywordMatch, MatchedElement, ValueConnection,
};
pub use levenshtein::{bounded_levenshtein, levenshtein, similarity};
pub use postings::PostingLists;
pub use stemmer::porter_stem;
pub use thesaurus::Thesaurus;
