//! Lexical analysis of labels and keywords.
//!
//! "A lexical analysis (stemming, removal of stopwords) as supported by
//! standard IR engines is performed on the labels of elements … in order to
//! obtain terms. Processing labels consisting of more than one word might
//! result in many terms." (Section IV-A)
//!
//! The [`Analyzer`] turns a label such as `"Efficient RDF Keyword-Search"`
//! or a camel-cased identifier such as `worksAt` into a list of normalised
//! terms (`efficient`, `rdf`, `keyword`, `search` / `works`, `at`). The same
//! pipeline is applied to user keywords so that query terms and index terms
//! live in the same space.

use crate::stemmer::porter_stem;
use crate::stopwords::is_stop_word;

/// Configuration of the analysis pipeline.
#[derive(Debug, Clone)]
pub struct Analyzer {
    /// Whether to apply the Porter stemmer.
    pub stemming: bool,
    /// Whether to drop stop words.
    pub remove_stop_words: bool,
    /// Whether to split camel-case identifiers (`worksAt` → `works`, `at`).
    pub split_camel_case: bool,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self {
            stemming: true,
            remove_stop_words: true,
            split_camel_case: true,
        }
    }
}

impl Analyzer {
    /// The default pipeline (stemming + stop words + camel-case splitting).
    pub fn new() -> Self {
        Self::default()
    }

    /// An analyzer that only tokenises and lower-cases, useful for tests and
    /// for exact-label matching.
    pub fn minimal() -> Self {
        Self {
            stemming: false,
            remove_stop_words: false,
            split_camel_case: false,
        }
    }

    /// Splits `text` into raw lower-cased tokens without stemming or
    /// stop-word removal.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        for rough in text.split(|c: char| !c.is_alphanumeric()) {
            if rough.is_empty() {
                continue;
            }
            if self.split_camel_case {
                for part in split_camel(rough) {
                    tokens.push(part.to_lowercase());
                }
            } else {
                tokens.push(rough.to_lowercase());
            }
        }
        tokens
    }

    /// Runs the full pipeline: tokenise, remove stop words, stem.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        self.tokenize(text)
            .into_iter()
            .filter(|t| !self.remove_stop_words || !is_stop_word(t))
            .map(|t| if self.stemming { porter_stem(&t) } else { t })
            .filter(|t| !t.is_empty())
            .collect()
    }

    /// Analyzes and deduplicates, preserving first-occurrence order.
    pub fn analyze_unique(&self, text: &str) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        self.analyze(text)
            .into_iter()
            .filter(|t| seen.insert(t.clone()))
            .collect()
    }
}

/// Splits a single token at lower-to-upper case boundaries and digit
/// boundaries: `worksAt` → `[works, At]`, `LUBM50` → `[LUBM, 50]`.
fn split_camel(token: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let chars: Vec<(usize, char)> = token.char_indices().collect();
    for window in chars.windows(2) {
        let (_, current) = window[0];
        let (next_idx, next) = window[1];
        let case_boundary = current.is_lowercase() && next.is_uppercase();
        let digit_boundary = current.is_ascii_digit() != next.is_ascii_digit();
        if case_boundary || digit_boundary {
            parts.push(&token[start..next_idx]);
            start = next_idx;
        }
    }
    parts.push(&token[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenization_splits_on_punctuation_and_whitespace() {
        let a = Analyzer::minimal();
        assert_eq!(
            a.tokenize("P. Cimiano, AIFB (Karlsruhe)"),
            vec!["p", "cimiano", "aifb", "karlsruhe"]
        );
        assert_eq!(a.tokenize("X-Media"), vec!["x", "media"]);
    }

    #[test]
    fn camel_case_identifiers_are_split() {
        let a = Analyzer::new();
        assert_eq!(a.tokenize("worksAt"), vec!["works", "at"]);
        assert_eq!(a.tokenize("hasProject"), vec!["has", "project"]);
        assert_eq!(a.tokenize("LUBM50"), vec!["lubm", "50"]);
    }

    #[test]
    fn stop_words_are_removed_and_terms_stemmed() {
        let a = Analyzer::new();
        let terms = a.analyze("The publications of the institute");
        assert!(terms.contains(&porter_stem("publication")));
        assert!(terms.contains(&porter_stem("institute")));
        assert!(!terms.iter().any(|t| t == "the" || t == "of"));
    }

    #[test]
    fn keywords_and_labels_normalise_to_the_same_terms() {
        let a = Analyzer::new();
        // A user typing "publications" must match a class labelled "Publication".
        assert_eq!(a.analyze("publications"), a.analyze("Publication"));
        // "works at" (keyword) matches the camel-cased edge label "worksAt"
        // up to stop-wording of "at".
        let keyword = a.analyze("working at");
        let label = a.analyze("worksAt");
        assert_eq!(keyword[0], label[0]);
    }

    #[test]
    fn analyze_unique_deduplicates() {
        let a = Analyzer::new();
        let terms = a.analyze_unique("search search searching");
        assert_eq!(terms.len(), 1);
    }

    #[test]
    fn numbers_survive_analysis() {
        let a = Analyzer::new();
        assert_eq!(a.analyze("2006"), vec!["2006"]);
        assert_eq!(
            a.analyze("ICDE 2009"),
            vec![porter_stem("icde"), "2009".to_string()]
        );
    }

    #[test]
    fn empty_and_symbol_only_labels_yield_no_terms() {
        let a = Analyzer::new();
        assert!(a.analyze("").is_empty());
        assert!(a.analyze("--- !!! ---").is_empty());
    }

    #[test]
    fn minimal_analyzer_keeps_everything() {
        let a = Analyzer::minimal();
        assert_eq!(a.analyze("The Publications"), vec!["the", "publications"]);
    }
}
