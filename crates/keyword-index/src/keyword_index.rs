//! The keyword-to-element map of Section IV-A.
//!
//! For every keyword the index returns the graph elements whose labels are
//! syntactically or semantically similar, together with a matching score
//! `s_m ∈ [0, 1]` and — for V-vertices and A-edges — the neighbourhood data
//! structures (`[V-vertex, A-edge, (C-vertex1…n)]` and
//! `[A-edge, (C-vertex1…n)]`) that the summary-graph augmentation
//! (Definition 5) needs in order to attach the matched element to the right
//! classes.
//!
//! E-vertices are not indexed; classes, values, relation labels and
//! attribute labels are.

use std::collections::HashMap;
use std::sync::Arc;

use kwsearch_rdf::snapshot::{SectionDecoder, SectionEncoder, SnapshotError};
use kwsearch_rdf::{DataGraph, EdgeLabel, EdgeLabelId, VertexId, VertexKind};

use crate::analyzer::Analyzer;
use crate::inverted::InvertedIndex;
use crate::levenshtein::bounded_levenshtein;
use crate::postings::{unpack, AttributeTable, ConnectionTable, PostingLists};
use crate::thesaurus::Thesaurus;

/// Reference to an indexable graph element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementRef {
    /// A class (C-vertex).
    Class(VertexId),
    /// A data value (V-vertex).
    Value(VertexId),
    /// A relation edge label (R-edge label).
    Relation(EdgeLabelId),
    /// An attribute edge label (A-edge label).
    Attribute(EdgeLabelId),
}

/// How a matched V-vertex connects to the schema: through which attribute
/// edge, into entities of which classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueConnection {
    /// The A-edge label connecting an entity to the matched value.
    pub attribute: EdgeLabelId,
    /// The classes of the entities carrying that attribute value.
    pub classes: Vec<VertexId>,
    /// Whether at least one of those entities has no `type` edge (it will be
    /// attached to `Thing` during augmentation).
    pub has_untyped_source: bool,
}

/// A matched graph element, enriched with the neighbourhood information
/// required by the summary-graph augmentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchedElement {
    /// The keyword matched a class label.
    Class {
        /// The matched C-vertex.
        class: VertexId,
    },
    /// The keyword matched a relation (R-edge) label.
    Relation {
        /// The matched relation label.
        label: EdgeLabelId,
    },
    /// The keyword matched an attribute (A-edge) label.
    Attribute {
        /// The matched attribute label.
        label: EdgeLabelId,
        /// Classes of the entities using this attribute.
        classes: Vec<VertexId>,
        /// Whether some entity using this attribute is untyped.
        has_untyped_source: bool,
    },
    /// The keyword matched a data value (V-vertex).
    Value {
        /// The matched V-vertex.
        value: VertexId,
        /// The `[V-vertex, A-edge, (C-vertex…)]` structures: one entry per
        /// attribute label through which the value is reachable.
        connections: Vec<ValueConnection>,
    },
}

impl MatchedElement {
    /// The bare element reference (without neighbourhood data).
    pub fn element_ref(&self) -> ElementRef {
        match self {
            MatchedElement::Class { class } => ElementRef::Class(*class),
            MatchedElement::Relation { label } => ElementRef::Relation(*label),
            MatchedElement::Attribute { label, .. } => ElementRef::Attribute(*label),
            MatchedElement::Value { value, .. } => ElementRef::Value(*value),
        }
    }
}

/// One keyword → element match with its score `s_m`.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordMatch {
    /// The matched element with neighbourhood data.
    pub element: MatchedElement,
    /// The matching score in `[0, 1]` combining syntactic and semantic
    /// similarity (Section V, used by the C3 cost function).
    pub score: f64,
}

/// Configuration of the matching behaviour.
#[derive(Debug, Clone)]
pub struct KeywordIndexConfig {
    /// Enable Levenshtein-based fuzzy matching.
    pub fuzzy: bool,
    /// Maximum accepted edit distance for fuzzy matches.
    pub max_edit_distance: usize,
    /// Minimum normalised similarity for fuzzy matches.
    pub min_fuzzy_similarity: f64,
    /// Enable thesaurus-based semantic expansion.
    pub semantic: bool,
    /// Maximum number of matches returned per keyword.
    pub max_matches_per_keyword: usize,
}

impl Default for KeywordIndexConfig {
    fn default() -> Self {
        Self {
            fuzzy: true,
            max_edit_distance: 2,
            min_fuzzy_similarity: 0.7,
            semantic: true,
            max_matches_per_keyword: 20,
        }
    }
}

/// Post-freeze additions unioned into every lookup — the live-update
/// overlay. Kept deliberately small: it only ever holds what a handful of
/// write batches touched, and compaction folds it back into the frozen
/// columns.
///
/// Lookup results over base + delta are bit-identical to a from-scratch
/// build over the merged graph: [`record`] keeps the *maximum* score per
/// (element, query term), so visiting an element through both the frozen
/// and the delta side (or in a different order) cannot change any score,
/// and the final match list is canonically sorted.
#[derive(Debug, Clone, Default)]
struct DeltaIndex {
    /// Extra `term → packed postings`, sorted by term (binary-searched and
    /// iterated in order, like the frozen vocabulary).
    terms: Vec<(String, Vec<u32>)>,
    /// Overridden `[V-vertex, A-edge, (C-vertex…)]` structures for values
    /// that are new or whose neighbourhood changed; consulted before the
    /// frozen [`ConnectionTable`].
    values: HashMap<VertexId, Vec<ValueConnection>>,
    /// Overridden `(C-vertex…)` structures for attribute labels that are
    /// new or whose usage changed; consulted before the frozen
    /// [`AttributeTable`].
    attributes: HashMap<EdgeLabelId, (Vec<VertexId>, bool)>,
}

impl DeltaIndex {
    fn is_empty(&self) -> bool {
        self.terms.is_empty() && self.values.is_empty() && self.attributes.is_empty()
    }

    fn get_packed(&self, term: &str) -> &[u32] {
        match self.terms.binary_search_by(|(t, _)| t.as_str().cmp(term)) {
            Ok(i) => &self.terms[i].1,
            Err(_) => &[],
        }
    }

    /// Registers `element` under `term`, keeping the vocabulary sorted and
    /// each posting list duplicate-free.
    fn insert(&mut self, term: &str, element: ElementRef) {
        let packed = crate::postings::pack(element);
        match self.terms.binary_search_by(|(t, _)| t.as_str().cmp(term)) {
            Ok(i) => {
                if !self.terms[i].1.contains(&packed) {
                    self.terms[i].1.push(packed);
                }
            }
            Err(i) => self.terms.insert(i, (term.to_string(), vec![packed])),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.terms
            .iter()
            .map(|(t, p)| t.len() + p.len() * std::mem::size_of::<u32>())
            .sum::<usize>()
            + (self.values.len() + self.attributes.len()) * 64
    }
}

/// The keyword index: an IR engine over the labels of the data graph.
///
/// Construction accumulates into a hash-based [`InvertedIndex`] and then
/// freezes everything into flat, offset-indexed columns
/// ([`PostingLists`], [`ConnectionTable`], [`AttributeTable`]) — the shape
/// that both lookups and disk snapshots operate on. The frozen columns are
/// `Arc`-shared, so cloning an index (the live-update snapshot path) costs
/// O(delta), and live writes land in a small `DeltaIndex` overlay that
/// every lookup unions with the frozen side.
#[derive(Debug, Clone)]
pub struct KeywordIndex {
    analyzer: Analyzer,
    thesaurus: Thesaurus,
    config: KeywordIndexConfig,
    postings: Arc<PostingLists>,
    values: Arc<ConnectionTable>,
    attributes: Arc<AttributeTable>,
    delta: DeltaIndex,
    indexed_elements: usize,
}

impl KeywordIndex {
    /// Builds the keyword index with the default analyzer, thesaurus and
    /// configuration.
    pub fn build(graph: &DataGraph) -> Self {
        Self::build_with(
            graph,
            Analyzer::new(),
            Thesaurus::builtin(),
            KeywordIndexConfig::default(),
        )
    }

    /// Builds the keyword index with custom components.
    pub fn build_with(
        graph: &DataGraph,
        analyzer: Analyzer,
        thesaurus: Thesaurus,
        config: KeywordIndexConfig,
    ) -> Self {
        let mut index = InvertedIndex::new();
        let mut indexed_elements = 0usize;

        // Classes.
        for class in graph.vertices_of_kind(VertexKind::Class) {
            let label = graph.vertex_label(class);
            for term in analyzer.analyze_unique(label) {
                index.insert(&term, ElementRef::Class(class));
            }
            indexed_elements += 1;
        }

        // Values, together with their [V-vertex, A-edge, (C-vertex…)] data.
        // `vertices_of_kind` yields ascending vertex ids, the push order the
        // frozen table requires.
        let mut values = ConnectionTable::default();
        for value in graph.vertices_of_kind(VertexKind::Value) {
            let label = graph.vertex_label(value);
            for term in analyzer.analyze_unique(label) {
                index.insert(&term, ElementRef::Value(value));
            }
            indexed_elements += 1;
            values.push(value, &Self::connections_of_value(graph, value));
        }

        // Edge labels (relations and attributes), together with the
        // [A-edge, (C-vertex…)] data for attributes. `edge_labels` yields
        // ascending label ids.
        let mut attributes = AttributeTable::default();
        for (label_id, label) in graph.edge_labels() {
            match label {
                EdgeLabel::Relation(sym) => {
                    let name = graph.resolve(sym);
                    for term in analyzer.analyze_unique(name) {
                        index.insert(&term, ElementRef::Relation(label_id));
                    }
                    indexed_elements += 1;
                }
                EdgeLabel::Attribute(sym) => {
                    let name = graph.resolve(sym);
                    for term in analyzer.analyze_unique(name) {
                        index.insert(&term, ElementRef::Attribute(label_id));
                    }
                    indexed_elements += 1;
                    let (classes, has_untyped) = Self::classes_of_attribute(graph, label_id);
                    attributes.push(label_id, &classes, has_untyped);
                }
                EdgeLabel::Type | EdgeLabel::SubClass => {}
            }
        }

        Self {
            analyzer,
            thesaurus,
            config,
            postings: Arc::new(PostingLists::from_inverted(&index)),
            values: Arc::new(values),
            attributes: Arc::new(attributes),
            delta: DeltaIndex::default(),
            indexed_elements,
        }
    }

    /// Extends the index in place with a live-update delta against the
    /// *merged* (post-write) `graph`.
    ///
    /// `new_elements` are elements that did not exist before the write:
    /// their labels are analyzed and indexed into the delta vocabulary.
    /// `touched` are pre-existing values and attribute labels whose
    /// neighbourhood data (`[V-vertex, A-edge, (C-vertex…)]` or
    /// `(C-vertex…)`) may have changed; their enrichment is recomputed from
    /// `graph` and overrides the frozen side tables. Both recomputations
    /// use exactly the code paths of a from-scratch build, so lookups stay
    /// bit-identical to a fresh index over the merged graph.
    pub fn apply_delta(
        &mut self,
        graph: &DataGraph,
        new_elements: &[ElementRef],
        touched: &[ElementRef],
    ) {
        for &element in new_elements {
            let label = match element {
                ElementRef::Class(v) | ElementRef::Value(v) => graph.vertex_label(v).to_string(),
                ElementRef::Relation(l) | ElementRef::Attribute(l) => {
                    graph.edge_label_name(l).to_string()
                }
            };
            for term in self.analyzer.analyze_unique(&label) {
                self.delta.insert(&term, element);
            }
            self.indexed_elements += 1;
        }
        for &element in new_elements.iter().chain(touched) {
            match element {
                ElementRef::Value(v) => {
                    self.delta
                        .values
                        .insert(v, Self::connections_of_value(graph, v));
                }
                ElementRef::Attribute(l) => {
                    self.delta
                        .attributes
                        .insert(l, Self::classes_of_attribute(graph, l));
                }
                ElementRef::Class(_) | ElementRef::Relation(_) => {}
            }
        }
    }

    /// Whether a live-update delta is overlaid on the frozen columns
    /// (snapshots refuse to serialise such an index — compact first).
    pub fn has_delta(&self) -> bool {
        !self.delta.is_empty()
    }

    /// Rebuilds the index from scratch over `graph` with the same analyzer,
    /// thesaurus and configuration — the compaction path, folding the delta
    /// overlay back into frozen columns. Lookups over the result are
    /// bit-identical to lookups over the delta'd index (pinned by the
    /// `delta_lookups_are_bit_identical_to_a_rebuild` test), and the result
    /// has no delta, so it serialises.
    pub fn rebuilt(&self, graph: &DataGraph) -> Self {
        Self::build_with(
            graph,
            self.analyzer.clone(),
            self.thesaurus.clone(),
            self.config.clone(),
        )
    }

    /// Collects, for one V-vertex, the attribute labels and source-entity
    /// classes through which it is reachable.
    fn connections_of_value(graph: &DataGraph, value: VertexId) -> Vec<ValueConnection> {
        let mut per_attribute: HashMap<EdgeLabelId, (Vec<VertexId>, bool)> = HashMap::new();
        for &e in graph.in_edges(value) {
            let edge = graph.edge(e);
            let entry = per_attribute.entry(edge.label).or_default();
            let classes = graph.classes_of(edge.from);
            if classes.is_empty() {
                entry.1 = true;
            }
            for c in classes {
                if !entry.0.contains(&c) {
                    entry.0.push(c);
                }
            }
        }
        let mut connections: Vec<ValueConnection> = per_attribute
            // lint: unordered-ok(reason = "drained into a Vec that is sorted by attribute id two lines below, erasing hash order")
            .into_iter()
            .map(|(attribute, (mut classes, has_untyped_source))| {
                // Canonical class order (ascending vertex id), matching
                // `classes_of_attribute`: the list must be a function of the
                // edge *set*, not the edge insertion order, so that indexes
                // built over edge-disjoint shards of one graph merge back to
                // exactly this list (see `kwsearch_core::shard`).
                classes.sort_unstable();
                ValueConnection {
                    attribute,
                    classes,
                    has_untyped_source,
                }
            })
            .collect();
        connections.sort_by_key(|c| c.attribute);
        connections
    }

    /// Collects the classes of all entities that carry the given attribute.
    fn classes_of_attribute(graph: &DataGraph, label: EdgeLabelId) -> (Vec<VertexId>, bool) {
        let mut classes = Vec::new();
        let mut has_untyped = false;
        for e in graph.edges() {
            let edge = graph.edge(e);
            if edge.label != label {
                continue;
            }
            let entity_classes = graph.classes_of(edge.from);
            if entity_classes.is_empty() {
                has_untyped = true;
            }
            for c in entity_classes {
                if !classes.contains(&c) {
                    classes.push(c);
                }
            }
        }
        classes.sort();
        (classes, has_untyped)
    }

    /// The normalized query terms of a keyword: tokenized and stop-word
    /// filtered — exactly the per-term input [`Self::lookup`] matches on
    /// (stemming, fuzzy and thesaurus expansion are all derived from these
    /// terms). Two keywords with equal normalized terms therefore produce
    /// identical matches, which makes the terms a sound cache key for
    /// everything downstream of the keyword-to-element mapping.
    pub fn normalized_query_terms(&self, keyword: &str) -> Vec<String> {
        self.analyzer
            .tokenize(keyword)
            .into_iter()
            .filter(|t| !crate::stopwords::is_stop_word(t))
            .collect()
    }

    /// Looks up one keyword, returning matches sorted by descending score.
    pub fn lookup(&self, keyword: &str) -> Vec<KeywordMatch> {
        let raw_tokens = self.normalized_query_terms(keyword);
        if raw_tokens.is_empty() {
            return Vec::new();
        }

        // element -> per-query-term best score
        let mut per_element: HashMap<ElementRef, Vec<f64>> = HashMap::new();
        let num_terms = raw_tokens.len();

        for (term_idx, raw) in raw_tokens.iter().enumerate() {
            let stemmed = crate::stemmer::porter_stem(raw);

            // 1. Exact (post-analysis) matches, frozen side and delta side.
            for &packed in self.postings.get_packed(&stemmed) {
                record(&mut per_element, unpack(packed), term_idx, num_terms, 1.0);
            }
            for &packed in self.delta.get_packed(&stemmed) {
                record(&mut per_element, unpack(packed), term_idx, num_terms, 1.0);
            }

            // 2. Fuzzy matches against the (sorted) vocabulary — the frozen
            // one, then the delta one. A term living on both sides is
            // visited twice with the same similarity, which `record`'s
            // max-per-(element, term) semantics make a no-op.
            if self.config.fuzzy {
                let delta_vocab = self
                    .delta
                    .terms
                    .iter()
                    .map(|(t, p)| (t.as_str(), p.as_slice()));
                for (vocab_term, packed_postings) in self.postings.iter().chain(delta_vocab) {
                    if vocab_term == stemmed {
                        continue;
                    }
                    let Some(distance) =
                        bounded_levenshtein(&stemmed, vocab_term, self.config.max_edit_distance)
                    else {
                        continue;
                    };
                    let longest = stemmed.chars().count().max(vocab_term.chars().count());
                    if longest == 0 {
                        continue;
                    }
                    let sim = 1.0 - distance as f64 / longest as f64;
                    if sim < self.config.min_fuzzy_similarity {
                        continue;
                    }
                    for &packed in packed_postings {
                        record(&mut per_element, unpack(packed), term_idx, num_terms, sim);
                    }
                }
            }

            // 3. Semantic expansion through the thesaurus. The thesaurus is
            // keyed by full (unstemmed) words, so besides the raw token we
            // also try its stem and a naive singular form.
            if self.config.semantic {
                let mut variants = vec![raw.clone(), stemmed.clone()];
                if let Some(singular) = raw.strip_suffix('s') {
                    variants.push(singular.to_string());
                }
                variants.dedup();
                for variant in variants {
                    for related in self.thesaurus.related(&variant) {
                        let weight = related.relation.weight();
                        for expanded in self.analyzer.analyze_unique(&related.term) {
                            for &packed in self
                                .postings
                                .get_packed(&expanded)
                                .iter()
                                .chain(self.delta.get_packed(&expanded))
                            {
                                record(
                                    &mut per_element,
                                    unpack(packed),
                                    term_idx,
                                    num_terms,
                                    weight,
                                );
                            }
                        }
                    }
                }
            }
        }

        // Aggregate: the score of an element is the mean over the query terms
        // of the best per-term score, so an element matching every keyword
        // token scores higher than one matching only some.
        let mut matches: Vec<KeywordMatch> = per_element
            // lint: unordered-ok(reason = "drained into a Vec that is immediately sorted by (total_cmp score, element ref), erasing hash order")
            .into_iter()
            .map(|(element, term_scores)| {
                let score = term_scores.iter().sum::<f64>() / num_terms as f64;
                KeywordMatch {
                    element: self.enrich(element),
                    score,
                }
            })
            .collect();
        matches.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.element.element_ref().cmp(&b.element.element_ref()))
        });
        matches.truncate(self.config.max_matches_per_keyword);
        matches
    }

    /// Looks up several keywords at once; the result has one entry per
    /// keyword (empty if the keyword matched nothing).
    pub fn lookup_all<S: AsRef<str>>(&self, keywords: &[S]) -> Vec<Vec<KeywordMatch>> {
        keywords.iter().map(|k| self.lookup(k.as_ref())).collect()
    }

    fn enrich(&self, element: ElementRef) -> MatchedElement {
        match element {
            ElementRef::Class(class) => MatchedElement::Class { class },
            ElementRef::Relation(label) => MatchedElement::Relation { label },
            ElementRef::Attribute(label) => {
                let (classes, has_untyped_source) = self
                    .delta
                    .attributes
                    .get(&label)
                    .cloned()
                    .or_else(|| self.attributes.get(label))
                    .unwrap_or_default();
                MatchedElement::Attribute {
                    label,
                    classes,
                    has_untyped_source,
                }
            }
            ElementRef::Value(value) => MatchedElement::Value {
                value,
                connections: self
                    .delta
                    .values
                    .get(&value)
                    .cloned()
                    .unwrap_or_else(|| self.values.get(value)),
            },
        }
    }

    /// Number of distinct terms in the index.
    pub fn term_count(&self) -> usize {
        self.postings.term_count()
    }

    /// Number of indexed graph elements.
    pub fn element_count(&self) -> usize {
        self.indexed_elements
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.postings.posting_count()
    }

    /// Approximate heap size in bytes (Fig. 6b index-size report).
    pub fn heap_bytes(&self) -> usize {
        self.postings.heap_bytes()
            + self.values.heap_bytes()
            + self.attributes.heap_bytes()
            + self.delta.heap_bytes()
    }

    /// The configuration in use.
    pub fn config(&self) -> &KeywordIndexConfig {
        &self.config
    }

    /// Serialises the complete index — analysis configuration, thesaurus,
    /// frozen posting lists and augmentation side tables — into one section.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        assert!(
            !self.has_delta(),
            "a keyword index with a live delta cannot be snapshotted; compact first"
        );
        enc.put_u32(u32::from(self.analyzer.stemming));
        enc.put_u32(u32::from(self.analyzer.remove_stop_words));
        enc.put_u32(u32::from(self.analyzer.split_camel_case));
        enc.put_u32(u32::from(self.config.fuzzy));
        enc.put_u64(self.config.max_edit_distance as u64);
        enc.put_f64(self.config.min_fuzzy_similarity);
        enc.put_u32(u32::from(self.config.semantic));
        enc.put_u64(self.config.max_matches_per_keyword as u64);
        self.thesaurus.write_snapshot(enc);
        self.postings.write_snapshot(enc);
        self.values.write_snapshot(enc);
        self.attributes.write_snapshot(enc);
        enc.put_u64(self.indexed_elements as u64);
    }

    /// Reads an index serialised by [`Self::write_snapshot`]. The posting
    /// lists and side tables load as bulk buffer reads; only the small
    /// thesaurus is re-hashed.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        let analyzer = Analyzer {
            stemming: dec.get_u32()? != 0,
            remove_stop_words: dec.get_u32()? != 0,
            split_camel_case: dec.get_u32()? != 0,
        };
        let config = KeywordIndexConfig {
            fuzzy: dec.get_u32()? != 0,
            max_edit_distance: dec.get_u64()? as usize,
            min_fuzzy_similarity: dec.get_f64()?,
            semantic: dec.get_u32()? != 0,
            max_matches_per_keyword: dec.get_u64()? as usize,
        };
        let thesaurus = Thesaurus::read_snapshot(dec)?;
        let postings = Arc::new(PostingLists::read_snapshot(dec)?);
        let values = Arc::new(ConnectionTable::read_snapshot(dec)?);
        let attributes = Arc::new(AttributeTable::read_snapshot(dec)?);
        let indexed_elements = dec.get_u64()? as usize;
        Ok(Self {
            analyzer,
            thesaurus,
            config,
            postings,
            values,
            attributes,
            delta: DeltaIndex::default(),
            indexed_elements,
        })
    }
}

fn record(
    per_element: &mut HashMap<ElementRef, Vec<f64>>,
    element: ElementRef,
    term_idx: usize,
    num_terms: usize,
    score: f64,
) {
    let scores = per_element
        .entry(element)
        .or_insert_with(|| vec![0.0; num_terms]);
    if score > scores[term_idx] {
        scores[term_idx] = score;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::fixtures::figure1_graph;

    fn index() -> (KeywordIndex, DataGraph) {
        let g = figure1_graph();
        (KeywordIndex::build(&g), g)
    }

    fn top_match(matches: &[KeywordMatch]) -> &MatchedElement {
        &matches
            .first()
            .expect("expected at least one match")
            .element
    }

    #[test]
    fn class_keywords_match_classes() {
        let (idx, g) = index();
        let matches = idx.lookup("publications");
        match top_match(&matches) {
            MatchedElement::Class { class } => {
                assert_eq!(g.vertex_label(*class), "Publication");
            }
            other => panic!("expected class match, got {other:?}"),
        }
    }

    #[test]
    fn value_keywords_return_neighbourhood_structures() {
        let (idx, g) = index();
        let matches = idx.lookup("AIFB");
        match top_match(&matches) {
            MatchedElement::Value { value, connections } => {
                assert_eq!(g.vertex_label(*value), "AIFB");
                assert_eq!(connections.len(), 1);
                let conn = &connections[0];
                assert_eq!(g.edge_label_name(conn.attribute), "name");
                let classes: Vec<&str> = conn.classes.iter().map(|&c| g.vertex_label(c)).collect();
                assert_eq!(classes, vec!["Institute"]);
                assert!(!conn.has_untyped_source);
            }
            other => panic!("expected value match, got {other:?}"),
        }
    }

    #[test]
    fn relation_and_attribute_labels_are_matched() {
        let (idx, g) = index();
        let matches = idx.lookup("author");
        assert!(matches.iter().any(|m| matches!(
            &m.element,
            MatchedElement::Relation { label } if g.edge_label_name(*label) == "author"
        )));

        let matches = idx.lookup("year");
        let attr = matches
            .iter()
            .find_map(|m| match &m.element {
                MatchedElement::Attribute { label, classes, .. }
                    if g.edge_label_name(*label) == "year" =>
                {
                    Some(classes)
                }
                _ => None,
            })
            .expect("year should match the attribute label");
        let class_labels: Vec<&str> = attr.iter().map(|&c| g.vertex_label(c)).collect();
        assert_eq!(class_labels, vec!["Publication"]);
    }

    #[test]
    fn entity_uris_are_not_indexed() {
        let (idx, _) = index();
        assert!(idx.lookup("pub1URI").iter().all(|m| !matches!(
            m.element,
            MatchedElement::Value { .. } | MatchedElement::Class { .. }
        ) || m.score < 1.0));
        // A keyword that only occurs as an entity URI yields nothing exact.
        let matches = idx.lookup("inst2URI");
        assert!(matches.iter().all(|m| m.score < 1.0));
    }

    #[test]
    fn multi_word_keywords_score_by_coverage() {
        let (idx, g) = index();
        let matches = idx.lookup("Thanh Tran");
        match top_match(&matches) {
            MatchedElement::Value { value, .. } => {
                assert_eq!(g.vertex_label(*value), "Thanh Tran");
            }
            other => panic!("expected value match, got {other:?}"),
        }
        assert!((matches[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fuzzy_matching_tolerates_typos() {
        let (idx, g) = index();
        let matches = idx.lookup("cimano"); // missing the second "i"
        let found = matches.iter().any(|m| match &m.element {
            MatchedElement::Value { value, .. } => g.vertex_label(*value) == "P. Cimiano",
            _ => false,
        });
        assert!(found, "typo should still match P. Cimiano");
        assert!(
            matches[0].score < 1.0,
            "fuzzy matches score below exact matches"
        );
    }

    #[test]
    fn semantic_matching_uses_the_thesaurus() {
        let (idx, g) = index();
        // "paper" is a synonym of "publication" in the built-in thesaurus.
        let matches = idx.lookup("papers");
        let found = matches.iter().any(|m| match &m.element {
            MatchedElement::Class { class } => g.vertex_label(*class) == "Publication",
            _ => false,
        });
        assert!(found, "synonym should match the Publication class");
    }

    #[test]
    fn scores_are_within_bounds_and_sorted() {
        let (idx, _) = index();
        for keyword in ["publication", "cimiano", "2006", "name", "agent"] {
            let matches = idx.lookup(keyword);
            for w in matches.windows(2) {
                assert!(w[0].score >= w[1].score, "matches must be sorted by score");
            }
            for m in &matches {
                assert!(m.score > 0.0 && m.score <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn normalized_query_terms_predict_lookup_equality() {
        let (idx, _) = index();
        // Same normalized terms (case, stop words) => identical matches.
        for (a, b) in [("Cimiano", "cimiano"), ("the publication", "publication")] {
            assert_eq!(idx.normalized_query_terms(a), idx.normalized_query_terms(b));
            assert_eq!(idx.lookup(a), idx.lookup(b));
        }
        // Stop-word-only input normalizes to nothing, like lookup.
        assert!(idx.normalized_query_terms("the of and").is_empty());
        assert!(idx.normalized_query_terms("").is_empty());
    }

    #[test]
    fn unknown_keywords_return_nothing() {
        let (idx, _) = index();
        assert!(idx.lookup("quetzalcoatl").is_empty());
        assert!(idx.lookup("").is_empty());
        assert!(idx.lookup("the of and").is_empty());
    }

    #[test]
    fn lookup_all_preserves_keyword_order() {
        let (idx, _) = index();
        let all = idx.lookup_all(&["2006", "cimiano", "aifb"]);
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|m| !m.is_empty()));
    }

    #[test]
    fn max_matches_is_respected() {
        let g = figure1_graph();
        let config = KeywordIndexConfig {
            max_matches_per_keyword: 1,
            ..KeywordIndexConfig::default()
        };
        let idx = KeywordIndex::build_with(&g, Analyzer::new(), Thesaurus::builtin(), config);
        assert!(idx.lookup("name").len() <= 1);
    }

    #[test]
    fn untyped_sources_are_flagged() {
        let mut g = DataGraph::new();
        g.insert_triple(&kwsearch_rdf::Triple::attribute("x", "label", "orphan"))
            .unwrap();
        let idx = KeywordIndex::build(&g);
        let matches = idx.lookup("orphan");
        match top_match(&matches) {
            MatchedElement::Value { connections, .. } => {
                assert_eq!(connections.len(), 1);
                assert!(connections[0].has_untyped_source);
                assert!(connections[0].classes.is_empty());
            }
            other => panic!("expected value match, got {other:?}"),
        }
    }

    #[test]
    fn index_statistics_are_populated() {
        let (idx, _) = index();
        assert!(idx.term_count() > 10);
        assert!(idx.element_count() > 10);
        assert!(idx.posting_count() >= idx.term_count());
        assert!(idx.heap_bytes() > 0);
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        use kwsearch_rdf::snapshot::{SnapshotReader, SnapshotWriter};
        let (idx, _) = index();
        let bytes_of = |idx: &KeywordIndex| {
            let mut enc = SectionEncoder::new();
            idx.write_snapshot(&mut enc);
            let mut writer = SnapshotWriter::new();
            writer.add_section(4, enc);
            let mut bytes = Vec::new();
            writer.write_to(&mut bytes).unwrap();
            bytes
        };
        let bytes = bytes_of(&idx);
        let reader = SnapshotReader::read_from(bytes.as_slice()).unwrap();
        let mut dec = reader.section(4).unwrap();
        let loaded = KeywordIndex::read_snapshot(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(loaded.term_count(), idx.term_count());
        assert_eq!(loaded.element_count(), idx.element_count());
        assert_eq!(loaded.posting_count(), idx.posting_count());
        for keyword in ["publications", "AIFB", "author", "year", "cimano", "papers"] {
            assert_eq!(loaded.lookup(keyword), idx.lookup(keyword), "{keyword}");
        }
        // Save → load → save is byte-identical.
        assert_eq!(bytes_of(&loaded), bytes);
    }

    #[test]
    fn delta_lookups_are_bit_identical_to_a_rebuild() {
        use kwsearch_rdf::Triple;
        let mut g = figure1_graph();
        let mut idx = KeywordIndex::build(&g);
        assert!(!idx.has_delta());

        // A write batch: a new publication with a new title value, a new
        // class, a year attribute on a fresh entity, plus a new type edge —
        // touching an existing attribute label ("year") and the existing
        // "2006" value's neighbourhood is left alone.
        let batch = [
            Triple::relation("pub9URI", "type", "Poster"),
            Triple::attribute("pub9URI", "title", "Graph Summaries"),
            Triple::attribute("pub9URI", "year", "2006"),
        ];
        for t in &batch {
            g.insert_triple(t).unwrap();
        }
        // New elements: class Poster, value "Graph Summaries", attribute
        // label "title" (if new). Touched: attribute "year" (new source
        // class set), value "2006" (new in-edge).
        let poster = g.class("Poster").unwrap();
        let title_value = g.value("Graph Summaries").unwrap();
        let title_label = g
            .edge_label_id(&kwsearch_rdf::EdgeLabel::Attribute(
                g.symbol("title").unwrap(),
            ))
            .unwrap();
        let year_label = g
            .edge_label_id(&kwsearch_rdf::EdgeLabel::Attribute(
                g.symbol("year").unwrap(),
            ))
            .unwrap();
        let value_2006 = g.value("2006").unwrap();
        idx.apply_delta(
            &g,
            &[ElementRef::Class(poster), ElementRef::Value(title_value)],
            &[
                // "title" and "year" predate the batch but gained a source.
                ElementRef::Attribute(title_label),
                ElementRef::Attribute(year_label),
                ElementRef::Value(value_2006),
            ],
        );
        assert!(idx.has_delta());

        let fresh = KeywordIndex::build(&g);
        for keyword in [
            "poster",
            "graph summaries",
            "title",
            "year",
            "2006",
            "publications",
            "cimiano",
            "AIFB",
            "papers",
            "cimano",
            "summaries",
            "postr", // fuzzy against the delta vocabulary
        ] {
            let live = idx.lookup(keyword);
            let rebuilt = fresh.lookup(keyword);
            assert_eq!(live.len(), rebuilt.len(), "{keyword}: match count");
            for (a, b) in live.iter().zip(rebuilt.iter()) {
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{keyword}: score bits"
                );
                assert_eq!(a.element, b.element, "{keyword}: element");
            }
        }
        assert_eq!(idx.element_count(), fresh.element_count());
    }

    #[test]
    #[should_panic(expected = "compact first")]
    fn snapshotting_a_delta_index_panics() {
        use kwsearch_rdf::Triple;
        let mut g = figure1_graph();
        let mut idx = KeywordIndex::build(&g);
        g.insert_triple(&Triple::attribute("pub1URI", "note", "Addendum"))
            .unwrap();
        let note_value = g.value("Addendum").unwrap();
        idx.apply_delta(&g, &[ElementRef::Value(note_value)], &[]);
        let mut enc = SectionEncoder::new();
        idx.write_snapshot(&mut enc);
    }

    #[test]
    fn disabling_fuzzy_and_semantic_matching_works() {
        let g = figure1_graph();
        let config = KeywordIndexConfig {
            fuzzy: false,
            semantic: false,
            ..KeywordIndexConfig::default()
        };
        let idx = KeywordIndex::build_with(&g, Analyzer::new(), Thesaurus::builtin(), config);
        assert!(idx.lookup("cimano").is_empty(), "no fuzzy matching");
        assert!(
            !idx.lookup("cimiano").is_empty(),
            "exact matching still works"
        );
    }
}
