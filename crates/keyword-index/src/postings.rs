//! Frozen, snapshot-friendly storage for the keyword index.
//!
//! [`InvertedIndex`] is the *build-time* accumulator;
//! once construction finishes it is frozen into [`PostingLists`]: the sorted
//! vocabulary as one string blob plus an offsets column, and all posting
//! lists as one packed `u32` column sliced by a second offsets column.
//! Lookups binary-search the vocabulary, and a snapshot load is a handful of
//! bulk buffer reads — no per-term allocation, hashing or parsing.
//!
//! The same flattening is applied to the two augmentation side tables:
//! [`ConnectionTable`] (per V-vertex `[V-vertex, A-edge, (C-vertex…)]`
//! structures) and [`AttributeTable`] (per A-edge label `(C-vertex…)`
//! structures).

use kwsearch_rdf::snapshot::{SectionDecoder, SectionEncoder, SnapshotError};
use kwsearch_rdf::{EdgeLabelId, VertexId};

use crate::inverted::InvertedIndex;
use crate::keyword_index::{ElementRef, ValueConnection};

const TAG_CLASS: u32 = 0;
const TAG_VALUE: u32 = 1;
const TAG_RELATION: u32 = 2;
const TAG_ATTRIBUTE: u32 = 3;
const TAG_SHIFT: u32 = 30;
const ID_MASK: u32 = (1 << TAG_SHIFT) - 1;

/// Packs an element reference into one `u32`: a 2-bit kind tag plus a
/// 30-bit dense id. 2³⁰ vertices/labels is two orders of magnitude above
/// the `huge` (10⁷ triple) tier.
pub(crate) fn pack(element: ElementRef) -> u32 {
    let (tag, id) = match element {
        ElementRef::Class(v) => (TAG_CLASS, v.index() as u32),
        ElementRef::Value(v) => (TAG_VALUE, v.index() as u32),
        ElementRef::Relation(l) => (TAG_RELATION, l.index() as u32),
        ElementRef::Attribute(l) => (TAG_ATTRIBUTE, l.index() as u32),
    };
    assert!(
        id <= ID_MASK,
        "dense id exceeds 30-bit packed posting space"
    );
    (tag << TAG_SHIFT) | id
}

/// Inverse of [`pack`].
pub(crate) fn unpack(packed: u32) -> ElementRef {
    let id = packed & ID_MASK;
    match packed >> TAG_SHIFT {
        TAG_CLASS => ElementRef::Class(VertexId::from_index(id)),
        TAG_VALUE => ElementRef::Value(VertexId::from_index(id)),
        TAG_RELATION => ElementRef::Relation(EdgeLabelId::from_index(id)),
        _ => ElementRef::Attribute(EdgeLabelId::from_index(id)),
    }
}

/// The frozen term → packed-posting map.
#[derive(Debug, Clone, Default)]
pub struct PostingLists {
    /// All vocabulary terms concatenated in sorted order.
    term_bytes: String,
    /// `term_offsets[i]..term_offsets[i + 1]` delimits term `i`.
    term_offsets: Vec<u32>,
    /// `posting_offsets[i]..posting_offsets[i + 1]` delimits the postings
    /// of term `i`.
    posting_offsets: Vec<u32>,
    /// All packed postings, concatenated per term.
    postings: Vec<u32>,
}

impl PostingLists {
    /// Freezes a build-time inverted index. Terms are sorted; each posting
    /// list keeps its insertion order.
    pub fn from_inverted(index: &InvertedIndex<ElementRef>) -> Self {
        let mut entries: Vec<(&str, &[ElementRef])> = index.entries().collect();
        entries.sort_unstable_by_key(|(term, _)| *term);
        let mut out = Self {
            term_offsets: vec![0],
            posting_offsets: vec![0],
            ..Self::default()
        };
        for (term, postings) in entries {
            out.term_bytes.push_str(term);
            out.term_offsets.push(out.term_bytes.len() as u32);
            out.postings.extend(postings.iter().map(|&e| pack(e)));
            out.posting_offsets.push(out.postings.len() as u32);
        }
        out
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.term_offsets.len() - 1
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.postings.len()
    }

    #[inline]
    fn term_at(&self, i: usize) -> &str {
        &self.term_bytes[self.term_offsets[i] as usize..self.term_offsets[i + 1] as usize]
    }

    #[inline]
    fn postings_at(&self, i: usize) -> &[u32] {
        &self.postings[self.posting_offsets[i] as usize..self.posting_offsets[i + 1] as usize]
    }

    /// The packed posting list of `term` (empty if unknown); binary search
    /// over the sorted vocabulary.
    pub fn get_packed(&self, term: &str) -> &[u32] {
        let mut lo = 0usize;
        let mut hi = self.term_count();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.term_at(mid) < term {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.term_count() && self.term_at(lo) == term {
            self.postings_at(lo)
        } else {
            &[]
        }
    }

    /// Iterates `(term, packed postings)` in sorted term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u32])> + '_ {
        (0..self.term_count()).map(|i| (self.term_at(i), self.postings_at(i)))
    }

    /// Approximate heap bytes (Fig. 6b index-size report).
    pub fn heap_bytes(&self) -> usize {
        self.term_bytes.len()
            + (self.term_offsets.len() + self.posting_offsets.len() + self.postings.len())
                * std::mem::size_of::<u32>()
    }

    /// Serialises the four flat buffers verbatim.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        enc.put_str(&self.term_bytes);
        enc.put_u32_slice(&self.term_offsets);
        enc.put_u32_slice(&self.posting_offsets);
        enc.put_u32_slice(&self.postings);
    }

    /// Bulk-loads the four flat buffers, validating the offset structure and
    /// sorted vocabulary.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        let term_bytes = dec.get_string()?;
        let term_offsets = dec.get_u32_vec()?;
        let posting_offsets = dec.get_u32_vec()?;
        let postings = dec.get_u32_vec()?;
        validate_offsets(dec, &term_offsets, term_bytes.len(), "posting term")?;
        if term_offsets
            .iter()
            .any(|&o| !term_bytes.is_char_boundary(o as usize))
        {
            return Err(dec.corrupt("posting term offset splits a UTF-8 character"));
        }
        if posting_offsets.len() != term_offsets.len() {
            return Err(dec.corrupt("posting offsets do not match the term count"));
        }
        validate_offsets(dec, &posting_offsets, postings.len(), "posting list")?;
        let out = Self {
            term_bytes,
            term_offsets,
            posting_offsets,
            postings,
        };
        for i in 1..out.term_count() {
            if out.term_at(i - 1) >= out.term_at(i) {
                return Err(dec.corrupt("posting vocabulary is not sorted"));
            }
        }
        Ok(out)
    }
}

/// An offsets column must start at 0, be monotone, and end at `total`.
fn validate_offsets(
    dec: &SectionDecoder<'_>,
    offsets: &[u32],
    total: usize,
    what: &str,
) -> Result<(), SnapshotError> {
    if offsets.first() != Some(&0) || offsets.last().map(|&o| o as usize) != Some(total) {
        return Err(dec.corrupt(format!("{what} offsets do not cover the buffer")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(dec.corrupt(format!("{what} offsets are not monotone")));
    }
    Ok(())
}

/// Frozen per-V-vertex `[V-vertex, A-edge, (C-vertex…)]` structures.
///
/// Three-level CSR: value → connections → classes, with one flag column per
/// connection. Lookup is a binary search over the sorted value ids;
/// [`Self::get`] materialises the `Vec<ValueConnection>` shape the
/// augmentation consumes (the previous `HashMap` representation also cloned
/// per lookup, so the output and its cost are unchanged).
#[derive(Debug, Clone, Default)]
pub struct ConnectionTable {
    values: Vec<u32>,
    conn_offsets: Vec<u32>,
    attrs: Vec<u32>,
    flags: Vec<u32>,
    class_offsets: Vec<u32>,
    classes: Vec<u32>,
}

impl ConnectionTable {
    /// Builds from `(value, connections)` pairs; `push` order must be by
    /// ascending value id (the build loop iterates vertices in id order).
    pub fn push(&mut self, value: VertexId, connections: &[ValueConnection]) {
        if self.conn_offsets.is_empty() {
            self.conn_offsets.push(0);
            self.class_offsets.push(0);
        }
        debug_assert!(self.values.last().is_none_or(|&v| v < value.index() as u32));
        self.values.push(value.index() as u32);
        for conn in connections {
            self.attrs.push(conn.attribute.index() as u32);
            self.flags.push(u32::from(conn.has_untyped_source));
            self.classes
                .extend(conn.classes.iter().map(|c| c.index() as u32));
            self.class_offsets.push(self.classes.len() as u32);
        }
        self.conn_offsets.push(self.attrs.len() as u32);
    }

    /// The connections of `value` (empty if the vertex carries none).
    pub fn get(&self, value: VertexId) -> Vec<ValueConnection> {
        let Ok(i) = self.values.binary_search(&(value.index() as u32)) else {
            return Vec::new();
        };
        let (start, end) = (
            self.conn_offsets[i] as usize,
            self.conn_offsets[i + 1] as usize,
        );
        (start..end)
            .map(|c| ValueConnection {
                attribute: EdgeLabelId::from_index(self.attrs[c]),
                classes: self.classes
                    [self.class_offsets[c] as usize..self.class_offsets[c + 1] as usize]
                    .iter()
                    .map(|&v| VertexId::from_index(v))
                    .collect(),
                has_untyped_source: self.flags[c] != 0,
            })
            .collect()
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.values.len()
            + self.conn_offsets.len()
            + self.attrs.len()
            + self.flags.len()
            + self.class_offsets.len()
            + self.classes.len())
            * std::mem::size_of::<u32>()
    }

    /// Serialises the six flat columns verbatim.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        enc.put_u32_slice(&self.values);
        enc.put_u32_slice(&self.conn_offsets);
        enc.put_u32_slice(&self.attrs);
        enc.put_u32_slice(&self.flags);
        enc.put_u32_slice(&self.class_offsets);
        enc.put_u32_slice(&self.classes);
    }

    /// Bulk-loads the six flat columns, validating the CSR structure.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        let values = dec.get_u32_vec()?;
        let conn_offsets = dec.get_u32_vec()?;
        let attrs = dec.get_u32_vec()?;
        let flags = dec.get_u32_vec()?;
        let class_offsets = dec.get_u32_vec()?;
        let classes = dec.get_u32_vec()?;
        if values.is_empty() && conn_offsets.is_empty() {
            // An empty table round-trips to all-empty columns.
            return Ok(Self::default());
        }
        if values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(dec.corrupt("connection table values are not sorted"));
        }
        if conn_offsets.len() != values.len() + 1 {
            return Err(dec.corrupt("connection offsets do not match the value count"));
        }
        validate_offsets(dec, &conn_offsets, attrs.len(), "connection")?;
        if flags.len() != attrs.len() {
            return Err(dec.corrupt("connection flag column length mismatch"));
        }
        if class_offsets.len() != attrs.len() + 1 {
            return Err(dec.corrupt("class offsets do not match the connection count"));
        }
        validate_offsets(dec, &class_offsets, classes.len(), "connection class")?;
        Ok(Self {
            values,
            conn_offsets,
            attrs,
            flags,
            class_offsets,
            classes,
        })
    }
}

/// Frozen per-attribute-label `(C-vertex…)` structures plus untyped flag.
#[derive(Debug, Clone, Default)]
pub struct AttributeTable {
    attrs: Vec<u32>,
    flags: Vec<u32>,
    class_offsets: Vec<u32>,
    classes: Vec<u32>,
}

impl AttributeTable {
    /// Builds from entries pushed in ascending attribute-label-id order.
    pub fn push(&mut self, label: EdgeLabelId, classes: &[VertexId], has_untyped: bool) {
        if self.class_offsets.is_empty() {
            self.class_offsets.push(0);
        }
        debug_assert!(self.attrs.last().is_none_or(|&a| a < label.index() as u32));
        self.attrs.push(label.index() as u32);
        self.flags.push(u32::from(has_untyped));
        self.classes
            .extend(classes.iter().map(|c| c.index() as u32));
        self.class_offsets.push(self.classes.len() as u32);
    }

    /// The classes and untyped flag of `label`, if it is an indexed
    /// attribute.
    pub fn get(&self, label: EdgeLabelId) -> Option<(Vec<VertexId>, bool)> {
        let i = self.attrs.binary_search(&(label.index() as u32)).ok()?;
        let classes = self.classes
            [self.class_offsets[i] as usize..self.class_offsets[i + 1] as usize]
            .iter()
            .map(|&v| VertexId::from_index(v))
            .collect();
        Some((classes, self.flags[i] != 0))
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.attrs.len() + self.flags.len() + self.class_offsets.len() + self.classes.len())
            * std::mem::size_of::<u32>()
    }

    /// Serialises the four flat columns verbatim.
    pub fn write_snapshot(&self, enc: &mut SectionEncoder) {
        enc.put_u32_slice(&self.attrs);
        enc.put_u32_slice(&self.flags);
        enc.put_u32_slice(&self.class_offsets);
        enc.put_u32_slice(&self.classes);
    }

    /// Bulk-loads the four flat columns, validating the structure.
    pub fn read_snapshot(dec: &mut SectionDecoder<'_>) -> Result<Self, SnapshotError> {
        let attrs = dec.get_u32_vec()?;
        let flags = dec.get_u32_vec()?;
        let class_offsets = dec.get_u32_vec()?;
        let classes = dec.get_u32_vec()?;
        if attrs.is_empty() && class_offsets.is_empty() {
            return Ok(Self::default());
        }
        if attrs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(dec.corrupt("attribute table labels are not sorted"));
        }
        if flags.len() != attrs.len() {
            return Err(dec.corrupt("attribute flag column length mismatch"));
        }
        if class_offsets.len() != attrs.len() + 1 {
            return Err(dec.corrupt("attribute class offsets do not match the label count"));
        }
        validate_offsets(dec, &class_offsets, classes.len(), "attribute class")?;
        Ok(Self {
            attrs,
            flags,
            class_offsets,
            classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        let elements = [
            ElementRef::Class(VertexId::from_index(0)),
            ElementRef::Value(VertexId::from_index(12345)),
            ElementRef::Relation(EdgeLabelId::from_index(ID_MASK)),
            ElementRef::Attribute(EdgeLabelId::from_index(7)),
        ];
        for e in elements {
            assert_eq!(unpack(pack(e)), e);
        }
    }

    #[test]
    fn frozen_lists_match_the_inverted_index() {
        let mut inv = InvertedIndex::new();
        inv.insert("beta", ElementRef::Class(VertexId::from_index(1)));
        inv.insert("alpha", ElementRef::Value(VertexId::from_index(2)));
        inv.insert("alpha", ElementRef::Value(VertexId::from_index(3)));
        inv.insert("gamma", ElementRef::Relation(EdgeLabelId::from_index(0)));
        let frozen = PostingLists::from_inverted(&inv);
        assert_eq!(frozen.term_count(), 3);
        assert_eq!(frozen.posting_count(), inv.posting_count());
        // Sorted vocabulary.
        let terms: Vec<&str> = frozen.iter().map(|(t, _)| t).collect();
        assert_eq!(terms, vec!["alpha", "beta", "gamma"]);
        // Postings preserved in insertion order.
        let alpha: Vec<ElementRef> = frozen
            .get_packed("alpha")
            .iter()
            .map(|&p| unpack(p))
            .collect();
        assert_eq!(
            alpha,
            vec![
                ElementRef::Value(VertexId::from_index(2)),
                ElementRef::Value(VertexId::from_index(3)),
            ]
        );
        assert!(frozen.get_packed("missing").is_empty());
        assert!(frozen.get_packed("").is_empty());
    }

    #[test]
    fn posting_snapshot_round_trips() {
        use kwsearch_rdf::snapshot::{SnapshotReader, SnapshotWriter};
        let mut inv = InvertedIndex::new();
        for (i, term) in ["x", "yy", "zzz", "aa"].iter().enumerate() {
            inv.insert(term, ElementRef::Class(VertexId::from_index(i as u32)));
        }
        let frozen = PostingLists::from_inverted(&inv);
        let mut enc = SectionEncoder::new();
        frozen.write_snapshot(&mut enc);
        let mut writer = SnapshotWriter::new();
        writer.add_section(9, enc);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        let reader = SnapshotReader::read_from(bytes.as_slice()).unwrap();
        let mut dec = reader.section(9).unwrap();
        let loaded = PostingLists::read_snapshot(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(loaded.term_count(), frozen.term_count());
        for (a, b) in loaded.iter().zip(frozen.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn connection_table_lookups() {
        let mut table = ConnectionTable::default();
        table.push(
            VertexId::from_index(3),
            &[ValueConnection {
                attribute: EdgeLabelId::from_index(1),
                classes: vec![VertexId::from_index(9)],
                has_untyped_source: false,
            }],
        );
        table.push(
            VertexId::from_index(8),
            &[
                ValueConnection {
                    attribute: EdgeLabelId::from_index(0),
                    classes: vec![],
                    has_untyped_source: true,
                },
                ValueConnection {
                    attribute: EdgeLabelId::from_index(2),
                    classes: vec![VertexId::from_index(4), VertexId::from_index(5)],
                    has_untyped_source: false,
                },
            ],
        );
        assert_eq!(table.get(VertexId::from_index(3)).len(), 1);
        let conns = table.get(VertexId::from_index(8));
        assert_eq!(conns.len(), 2);
        assert!(conns[0].has_untyped_source);
        assert_eq!(conns[1].classes.len(), 2);
        assert!(table.get(VertexId::from_index(7)).is_empty());
    }

    #[test]
    fn attribute_table_lookups() {
        let mut table = AttributeTable::default();
        table.push(
            EdgeLabelId::from_index(2),
            &[VertexId::from_index(1)],
            false,
        );
        table.push(EdgeLabelId::from_index(5), &[], true);
        let (classes, untyped) = table.get(EdgeLabelId::from_index(2)).unwrap();
        assert_eq!(classes, vec![VertexId::from_index(1)]);
        assert!(!untyped);
        let (classes, untyped) = table.get(EdgeLabelId::from_index(5)).unwrap();
        assert!(classes.is_empty());
        assert!(untyped);
        assert!(table.get(EdgeLabelId::from_index(3)).is_none());
    }
}
