//! Porter stemmer.
//!
//! The keyword index performs "lexical analysis (stemming, removal of
//! stopwords) as supported by standard IR engines". This is a
//! self-contained implementation of M. Porter's 1980 suffix-stripping
//! algorithm, operating on lower-case ASCII words (non-ASCII words are
//! returned unchanged).

/// Stems a single lower-case word with the Porter algorithm.
///
/// Words shorter than three characters and words containing non-ASCII
/// characters are returned unchanged.
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.is_ascii() {
        return word.to_string();
    }
    let mut stemmer = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    stemmer.step1a();
    stemmer.step1b();
    stemmer.step1c();
    stemmer.step2();
    stemmer.step3();
    stemmer.step4();
    stemmer.step5a();
    stemmer.step5b();
    // lint: allow(no-unwrap, reason = "the input is filtered to ASCII before stemming and every step only removes or appends ASCII bytes")
    String::from_utf8(stemmer.b).expect("stemming preserves ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measure of the word prefix of length `upto` (the `m` in Porter's
    /// paper): the number of vowel-consonant sequences.
    fn measure(&self, upto: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < upto && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < upto && !self.is_consonant(i) {
                i += 1;
            }
            if i >= upto {
                return m;
            }
            // Skip consonants.
            while i < upto && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    fn stem_len_for_suffix(&self, suffix: &str) -> Option<usize> {
        let s = suffix.as_bytes();
        if self.b.len() < s.len() {
            return None;
        }
        let start = self.b.len() - s.len();
        if &self.b[start..] == s {
            Some(start)
        } else {
            None
        }
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.stem_len_for_suffix(suffix).is_some()
    }

    fn has_vowel(&self, upto: usize) -> bool {
        (0..upto).any(|i| !self.is_consonant(i))
    }

    fn double_consonant(&self, at_end_of: usize) -> bool {
        if at_end_of < 2 {
            return false;
        }
        self.b[at_end_of - 1] == self.b[at_end_of - 2] && self.is_consonant(at_end_of - 1)
    }

    /// consonant-vowel-consonant, where the final consonant is not w, x or y.
    fn cvc(&self, at_end_of: usize) -> bool {
        if at_end_of < 3 {
            return false;
        }
        let i = at_end_of - 1;
        if !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    fn truncate(&mut self, len: usize) {
        self.b.truncate(len);
    }

    fn replace_suffix(&mut self, suffix: &str, replacement: &str) {
        let start = self.b.len() - suffix.len();
        self.b.truncate(start);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// Replaces `suffix` by `replacement` if the preceding stem has measure
    /// greater than `min_measure`. Returns whether the suffix was present.
    fn replace_if_measure(&mut self, suffix: &str, replacement: &str, min_measure: usize) -> bool {
        if let Some(stem_len) = self.stem_len_for_suffix(suffix) {
            if self.measure(stem_len) > min_measure {
                self.truncate(stem_len);
                self.b.extend_from_slice(replacement.as_bytes());
            }
            true
        } else {
            false
        }
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.replace_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // keep
        } else if self.ends_with("s") {
            self.replace_suffix("s", "");
        }
    }

    fn step1b(&mut self) {
        if let Some(stem_len) = self.stem_len_for_suffix("eed") {
            if self.measure(stem_len) > 0 {
                self.replace_suffix("eed", "ee");
            }
            return;
        }
        let matched = if let Some(stem_len) = self.stem_len_for_suffix("ed") {
            if self.has_vowel(stem_len) {
                self.truncate(stem_len);
                true
            } else {
                false
            }
        } else if let Some(stem_len) = self.stem_len_for_suffix("ing") {
            if self.has_vowel(stem_len) {
                self.truncate(stem_len);
                true
            } else {
                false
            }
        } else {
            false
        };
        if matched {
            if self.ends_with("at") || self.ends_with("bl") || self.ends_with("iz") {
                self.b.push(b'e');
            } else if self.double_consonant(self.b.len()) {
                // lint: allow(no-unwrap, reason = "double_consonant(len) just returned true, which requires at least two buffered bytes")
                let last = *self.b.last().unwrap();
                if !matches!(last, b'l' | b's' | b'z') {
                    self.b.pop();
                }
            } else if self.measure(self.b.len()) == 1 && self.cvc(self.b.len()) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if let Some(stem_len) = self.stem_len_for_suffix("y") {
            if self.has_vowel(stem_len) {
                self.replace_suffix("y", "i");
            }
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.replace_if_measure(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in RULES {
            if self.replace_if_measure(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
            "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        // "ion" needs the extra condition that the stem ends in s or t.
        if let Some(stem_len) = self.stem_len_for_suffix("ion") {
            if stem_len > 0
                && matches!(self.b[stem_len - 1], b's' | b't')
                && self.measure(stem_len) > 1
            {
                self.truncate(stem_len);
                return;
            }
        }
        for suffix in SUFFIXES {
            if let Some(stem_len) = self.stem_len_for_suffix(suffix) {
                if self.measure(stem_len) > 1 {
                    self.truncate(stem_len);
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if let Some(stem_len) = self.stem_len_for_suffix("e") {
            let m = self.measure(stem_len);
            if m > 1 || (m == 1 && !self.cvc(stem_len)) {
                self.truncate(stem_len);
            }
        }
    }

    fn step5b(&mut self) {
        let len = self.b.len();
        if len > 1 && self.b[len - 1] == b'l' && self.double_consonant(len) && self.measure(len) > 1
        {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_porter_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn domain_terms_stem_consistently() {
        // The keyword index matches query terms to label terms after
        // stemming, so morphological variants must collapse.
        assert_eq!(porter_stem("publications"), porter_stem("publication"));
        assert_eq!(porter_stem("algorithms"), porter_stem("algorithm"));
        assert_eq!(porter_stem("searching"), porter_stem("searched"));
        assert_eq!(porter_stem("universities"), porter_stem("universiti"));
        assert_eq!(porter_stem("databases"), porter_stem("database"));
    }

    #[test]
    fn short_and_non_ascii_words_are_untouched() {
        assert_eq!(porter_stem("db"), "db");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("2006"), "2006");
    }
}
