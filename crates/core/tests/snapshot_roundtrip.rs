//! Snapshot round-trip suite: a loaded [`PreparedGraph`] must be
//! *bit-identical* to the one it was saved from — same cost bits, canonical
//! query strings, element sets and answer rows, for all three scoring
//! functions — on the paper's Figure 1 graph and on randomly generated
//! graphs. Corrupt input (truncation, bit flips, foreign files, future
//! format versions) must yield a typed [`SnapshotError`], never a panic or
//! a partially-initialised graph.

use proptest::prelude::*;

use kwsearch_core::{PreparedGraph, ScoringFunction, SearchConfig};
use kwsearch_rdf::fixtures::figure1_graph;
use kwsearch_rdf::snapshot::{SnapshotError, FORMAT_VERSION};
use kwsearch_rdf::{DataGraph, Triple};

/// One emitted query's identity: cost bits, canonical conjunctive query and
/// sorted element labels.
type QueryKey = (u64, String, Vec<String>);

/// A drained session's identity: queries in emission order plus the sorted
/// answer rows of an `answers_until` phase.
type SessionKey = (Vec<QueryKey>, Vec<String>);

/// The bit-identity fingerprint of draining one session: per emitted query
/// the cost bits, canonical conjunctive query and sorted element labels,
/// plus the sorted answer rows of an `answers_until` phase.
fn fingerprint(prepared: &PreparedGraph, keywords: &[String], config: SearchConfig) -> SessionKey {
    let mut session = match prepared.session(keywords, config) {
        Ok(session) => session,
        Err(_) => return (Vec::new(), Vec::new()),
    };
    let phase = session.answers_until(2);
    let mut answers: Vec<String> = phase
        .answers
        .iter()
        .flat_map(|set| set.rows().iter().map(|row| format!("{row:?}")))
        .collect();
    answers.sort_unstable();
    let mut queries: Vec<QueryKey> = session
        .queries()
        .iter()
        .map(|ranked| {
            let mut elements: Vec<String> = ranked
                .subgraph
                .elements()
                .iter()
                .map(|e| format!("{e:?}"))
                .collect();
            elements.sort_unstable();
            (
                ranked.cost.to_bits(),
                ranked.query.canonicalized().to_string(),
                elements,
            )
        })
        .collect();
    while let Some(ranked) = session.next_query() {
        let mut elements: Vec<String> = ranked
            .subgraph
            .elements()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect();
        elements.sort_unstable();
        queries.push((
            ranked.cost.to_bits(),
            ranked.query.canonicalized().to_string(),
            elements,
        ));
    }
    (queries, answers)
}

fn saved_bytes(prepared: &PreparedGraph) -> Vec<u8> {
    let mut bytes = Vec::new();
    prepared.save(&mut bytes).expect("in-memory save");
    bytes
}

/// Asserts save → load is invisible to searches: every scoring function,
/// on the given workload, produces bit-identical streams on both sides.
fn assert_roundtrip_invisible(graph: DataGraph, workload: &[Vec<String>]) {
    let built = PreparedGraph::index(graph);
    let loaded = PreparedGraph::load(saved_bytes(&built).as_slice()).expect("load own snapshot");
    assert_eq!(loaded.graph().vertex_count(), built.graph().vertex_count());
    assert_eq!(loaded.graph().edge_count(), built.graph().edge_count());
    for keywords in workload {
        for scoring in ScoringFunction::all() {
            let config = SearchConfig::with_k(5).scoring(scoring);
            assert_eq!(
                fingerprint(&loaded, keywords, config.clone()),
                fingerprint(&built, keywords, config),
                "snapshot round trip changed results for {keywords:?} under {scoring}"
            );
        }
    }
}

#[test]
fn figure1_roundtrip_is_bit_identical() {
    let workload = vec![
        vec![
            "2006".to_string(),
            "cimiano".to_string(),
            "aifb".to_string(),
        ],
        vec!["cimiano".to_string(), "publication".to_string()],
        vec!["publications".to_string()],
    ];
    assert_roundtrip_invisible(figure1_graph(), &workload);
}

#[test]
fn loaded_graphs_accept_further_mutation() {
    // A loaded graph keeps its adjacency in the frozen CSR form; the first
    // mutation must transparently inflate it and leave the graph fully
    // editable — and a re-saved snapshot of the *unmutated* load must be
    // byte-identical to the original.
    let built = PreparedGraph::index(figure1_graph());
    let bytes = saved_bytes(&built);
    let loaded = PreparedGraph::load(bytes.as_slice()).expect("load");
    assert_eq!(saved_bytes(&loaded), bytes, "re-save must be byte-stable");

    let mut graph = loaded.graph().clone();
    let before = graph.edge_count();
    graph
        .insert_triple(&Triple::attribute("pub1URI", "note", "post-load edit"))
        .expect("mutating a loaded graph");
    assert_eq!(graph.edge_count(), before + 1);
    let reindexed = PreparedGraph::index(graph);
    assert_eq!(reindexed.graph().edge_count(), before + 1);
}

// ---------------------------------------------------------------------------
// Corruption robustness: typed errors, never panics.
// ---------------------------------------------------------------------------

#[test]
fn truncated_snapshots_are_rejected_at_every_length() {
    let bytes = saved_bytes(&PreparedGraph::index(figure1_graph()));
    // Sampling every prefix would be slow (the snapshot is tens of KiB);
    // a stride plus the boundary cases covers header, table and payloads.
    let mut cuts: Vec<usize> = (0..bytes.len()).step_by(257).collect();
    cuts.extend([0, 1, 7, 8, 15, 16, bytes.len() - 1]);
    for cut in cuts {
        match PreparedGraph::load(&bytes[..cut]) {
            Err(
                SnapshotError::Truncated | SnapshotError::BadMagic | SnapshotError::Corrupt { .. },
            ) => {}
            other => panic!("prefix of {cut} bytes must be rejected, got {other:?}"),
        }
    }
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    let bytes = saved_bytes(&PreparedGraph::index(figure1_graph()));
    // The last byte belongs to the last section's payload.
    let mut flipped = bytes.clone();
    *flipped.last_mut().expect("non-empty snapshot") ^= 0x01;
    assert!(matches!(
        PreparedGraph::load(flipped.as_slice()),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn foreign_files_are_rejected_by_magic() {
    let mut bytes = saved_bytes(&PreparedGraph::index(figure1_graph()));
    bytes[0] ^= 0xFF;
    assert!(matches!(
        PreparedGraph::load(bytes.as_slice()),
        Err(SnapshotError::BadMagic)
    ));
    assert!(matches!(
        PreparedGraph::load(&b"PK\x03\x04 definitely a zip file"[..]),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn future_format_versions_are_rejected_with_the_found_version() {
    let mut bytes = saved_bytes(&PreparedGraph::index(figure1_graph()));
    // The version field is the little-endian u32 right after the magic.
    let future = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    assert!(matches!(
        PreparedGraph::load(bytes.as_slice()),
        Err(SnapshotError::UnsupportedVersion { found }) if found == future
    ));
}

// ---------------------------------------------------------------------------
// Property: round trips are invisible on random graphs too.
// ---------------------------------------------------------------------------

/// A compact random data graph, mirroring the generator of the core
/// proptest suite: a handful of classes, entities with attributes drawn
/// from a small label pool, and random relations.
#[derive(Debug, Clone)]
struct RandomGraph {
    triples: Vec<Triple>,
    value_labels: Vec<String>,
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    let classes = ["Alpha", "Beta", "Gamma"];
    let values = ["red", "green", "blue", "cyan", "amber"];
    let relations = ["linksTo", "near", "uses"];

    (
        proptest::collection::vec((0usize..12, 0usize..classes.len()), 3..12),
        proptest::collection::vec((0usize..12, 0usize..values.len()), 2..12),
        proptest::collection::vec((0usize..12, 0usize..relations.len(), 0usize..12), 0..16),
    )
        .prop_map(move |(types, attrs, rels)| {
            let mut triples = Vec::new();
            let mut used_values = Vec::new();
            for (e, c) in &types {
                triples.push(Triple::typed(format!("e{e}"), classes[*c]));
            }
            for (e, v) in &attrs {
                triples.push(Triple::attribute(format!("e{e}"), "label", values[*v]));
                if !used_values.contains(&values[*v].to_string()) {
                    used_values.push(values[*v].to_string());
                }
            }
            for (s, r, o) in &rels {
                triples.push(Triple::relation(
                    format!("e{s}"),
                    relations[*r],
                    format!("e{o}"),
                ));
            }
            RandomGraph {
                triples,
                value_labels: used_values,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save → load is invisible on random graphs: all three scoring
    /// functions produce bit-identical query streams and answer rows on
    /// the loaded preparation, and re-saving it is byte-stable.
    #[test]
    fn random_graph_roundtrip_is_bit_identical(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let mut graph = DataGraph::new();
        for t in &spec.triples {
            graph.insert_triple(t).expect("generated triples are well-formed");
        }
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();

        let built = PreparedGraph::index(graph);
        let bytes = saved_bytes(&built);
        let loaded = PreparedGraph::load(bytes.as_slice()).expect("load own snapshot");
        prop_assert_eq!(saved_bytes(&loaded), bytes);

        for scoring in ScoringFunction::all() {
            let config = SearchConfig::with_k(5).scoring(scoring);
            prop_assert_eq!(
                fingerprint(&loaded, &keywords, config.clone()),
                fingerprint(&built, &keywords, config),
                "snapshot round trip changed results under {}",
                scoring
            );
        }
    }
}
