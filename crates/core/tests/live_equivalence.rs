//! Property-based equivalence of the live write path: a [`LiveGraph`]
//! that absorbed a random delta batch (additions, retractions, or both)
//! must answer every query **bit-identically** to a `PreparedGraph`
//! indexed from scratch over the merged data — costs compared as raw
//! `f64` bits, queries by canonical form, subgraphs by element set, and
//! answer rows verbatim — across all three scoring functions.
//!
//! This is the acceptance property of the delta-overlay design: overlays
//! (triple store, adjacency, keyword vocabulary, summary adjustments) are
//! a physical representation choice, never observable through the read
//! path.

use proptest::prelude::*;

use kwsearch_core::{DeltaBatch, LiveGraph, PreparedGraph, ScoringFunction, SearchConfig};
use kwsearch_rdf::{DataGraph, Triple};

/// Entity pool: `e0..e11` exist in the base generator's range; the delta
/// generator reaches up to `e15`, so deltas routinely introduce brand-new
/// entities alongside writes to existing ones.
const CLASSES: [&str; 4] = ["Alpha", "Beta", "Gamma", "Delta"];
const VALUES: [&str; 7] = ["red", "green", "blue", "cyan", "amber", "violet", "ochre"];
const RELATIONS: [&str; 4] = ["linksTo", "near", "uses", "cites"];
const ATTRIBUTES: [&str; 2] = ["label", "tag"];

/// Keywords the tests probe with: every value, plus class and relation
/// names (the keyword index matches those too, case-insensitively).
const KEYWORD_POOL: [&str; 13] = [
    "red", "green", "blue", "cyan", "amber", "violet", "ochre", "alpha", "beta", "gamma", "delta",
    "linksto", "cites",
];

/// A compact random base graph: the first three classes, values and
/// relations only, so deltas can extend every vocabulary dimension.
#[derive(Debug, Clone)]
struct BaseSpec {
    triples: Vec<Triple>,
}

fn base_graph() -> impl Strategy<Value = BaseSpec> {
    (
        proptest::collection::vec((0usize..12, 0usize..3), 2..10),
        proptest::collection::vec((0usize..12, 0usize..5), 2..10),
        proptest::collection::vec((0usize..12, 0usize..3, 0usize..12), 0..10),
    )
        .prop_map(|(types, attrs, rels)| {
            let mut triples = Vec::new();
            for (e, c) in &types {
                triples.push(Triple::typed(format!("e{e}"), CLASSES[*c]));
            }
            for (e, v) in &attrs {
                triples.push(Triple::attribute(format!("e{e}"), "label", VALUES[*v]));
            }
            for (s, r, o) in &rels {
                triples.push(Triple::relation(
                    format!("e{s}"),
                    RELATIONS[*r],
                    format!("e{o}"),
                ));
            }
            BaseSpec { triples }
        })
}

/// A random delta: additions drawn from the *extended* pools (new
/// entities, the `Delta` class, two new values, the `cites` relation, the
/// `tag` attribute label) plus a handful of retraction picks resolved
/// against the base graph's triples at test time (modulo its length).
#[derive(Debug, Clone)]
struct DeltaSpec {
    additions: Vec<Triple>,
    retraction_picks: Vec<usize>,
}

fn random_delta() -> impl Strategy<Value = DeltaSpec> {
    (
        proptest::collection::vec((0usize..16, 0usize..CLASSES.len()), 0..5),
        proptest::collection::vec(
            (0usize..16, 0usize..ATTRIBUTES.len(), 0usize..VALUES.len()),
            0..8,
        ),
        proptest::collection::vec((0usize..16, 0usize..RELATIONS.len(), 0usize..16), 0..8),
        proptest::collection::vec(0usize..1 << 16, 0..4),
    )
        .prop_map(|(types, attrs, rels, retraction_picks)| {
            let mut additions = Vec::new();
            for (e, c) in &types {
                additions.push(Triple::typed(format!("e{e}"), CLASSES[*c]));
            }
            for (e, a, v) in &attrs {
                additions.push(Triple::attribute(
                    format!("e{e}"),
                    ATTRIBUTES[*a],
                    VALUES[*v],
                ));
            }
            for (s, r, o) in &rels {
                additions.push(Triple::relation(
                    format!("e{s}"),
                    RELATIONS[*r],
                    format!("e{o}"),
                ));
            }
            DeltaSpec {
                additions,
                retraction_picks,
            }
        })
}

fn build(triples: &[Triple]) -> DataGraph {
    let mut graph = DataGraph::new();
    for t in triples {
        graph
            .insert_triple(t)
            .expect("generated triples are well-formed");
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: after a random batch of additions and
    /// retractions, the live snapshot and a from-scratch preparation over
    /// the merged triples agree bit-for-bit on every query — result
    /// counts, costs (`f64::to_bits`), canonicalized conjunctive queries,
    /// subgraph element sets, augmented-summary sizes, and the answer
    /// rows of every returned query — for all three scoring functions.
    #[test]
    fn live_writes_read_bit_identically_to_a_fresh_preparation(
        spec in base_graph(),
        delta in random_delta(),
        kw_picks in proptest::collection::vec(0usize..KEYWORD_POOL.len(), 1..3),
    ) {
        let base = build(&spec.triples);
        let base_triples = base.triples();
        // Round-trip the base through the snapshot path so its adjacency
        // is the frozen CSR: overlay edges (not list pushes) then carry
        // every delta, which is the production shape of a live graph.
        let mut base_bytes = Vec::new();
        PreparedGraph::index(base)
            .save(&mut base_bytes)
            .expect("base snapshot");
        let live = LiveGraph::new(PreparedGraph::load(&base_bytes[..]).expect("base loads"));

        // Resolve retraction picks against the canonical triple listing,
        // deduplicating positions (the graph stores each triple once, so a
        // duplicate pick would be a spurious MissingRetraction).
        let mut positions: Vec<usize> = delta
            .retraction_picks
            .iter()
            .filter(|_| !base_triples.is_empty())
            .map(|pick| pick % base_triples.len())
            .collect();
        positions.sort_unstable();
        positions.dedup();
        let retracted: Vec<Triple> = positions
            .iter()
            .map(|&i| base_triples[i].clone())
            .collect();

        let mut batch = DeltaBatch::new();
        for t in &retracted {
            batch = batch.retract(t.clone());
        }
        for t in &delta.additions {
            batch = batch.add(t.clone());
        }
        live.apply(&batch).expect("generated batches are well-formed");
        let snapshot = live.snapshot();

        // The reference: the surviving base triples in canonical order,
        // then the additions in batch order, indexed entirely from scratch
        // — the same merge the live path claims to represent.
        let mut merged = DataGraph::new();
        for t in &base_triples {
            if !retracted.contains(t) {
                merged.insert_triple(t).expect("base triples re-insert");
            }
        }
        for t in &delta.additions {
            merged.insert_triple(t).expect("delta triples insert");
        }
        let fresh = PreparedGraph::index(merged);

        let mut keywords: Vec<String> = kw_picks
            .iter()
            .map(|&pick| KEYWORD_POOL[pick].to_string())
            .collect();
        keywords.dedup();

        for scoring in ScoringFunction::all() {
            let config = SearchConfig::with_k(5).scoring(scoring);
            let got = snapshot.session(&keywords, config.clone());
            let want = fresh.session(&keywords, config);
            let (got, want) = match (got, want) {
                (Err(_), Err(_)) => continue, // both reject: no keyword matched
                (Ok(g), Ok(w)) => (g.into_outcome(), w.into_outcome()),
                (g, w) => panic!(
                    "session acceptance diverged for {keywords:?} under {scoring:?}: \
                     live={} fresh={}",
                    g.is_ok(),
                    w.is_ok()
                ),
            };
            prop_assert_eq!(
                got.augmented_elements,
                want.augmented_elements,
                "augmented size under {:?}",
                scoring
            );
            prop_assert_eq!(
                got.queries.len(),
                want.queries.len(),
                "result count under {:?}",
                scoring
            );
            for (g, w) in got.queries.iter().zip(&want.queries) {
                prop_assert_eq!(g.rank, w.rank);
                prop_assert_eq!(
                    g.cost.to_bits(),
                    w.cost.to_bits(),
                    "cost of rank {} under {:?}",
                    w.rank,
                    scoring
                );
                prop_assert_eq!(
                    g.query.canonicalized(),
                    w.query.canonicalized(),
                    "query of rank {} under {:?}",
                    w.rank,
                    scoring
                );
                prop_assert_eq!(
                    g.subgraph.canonical_key(),
                    w.subgraph.canonical_key(),
                    "element set of rank {} under {:?}",
                    w.rank,
                    scoring
                );
                match (snapshot.answers(&g.query, None), fresh.answers(&w.query, None)) {
                    (Ok(g_set), Ok(w_set)) => {
                        prop_assert_eq!(
                            g_set.variables(),
                            w_set.variables(),
                            "answer variables of rank {} under {:?}",
                            w.rank,
                            scoring
                        );
                        prop_assert_eq!(
                            g_set.rows(),
                            w_set.rows(),
                            "answer rows of rank {} under {:?}",
                            w.rank,
                            scoring
                        );
                    }
                    (g_set, w_set) => panic!(
                        "answer evaluation diverged at rank {} under {scoring:?}: \
                         live={} fresh={}",
                        w.rank,
                        g_set.is_ok(),
                        w_set.is_ok()
                    ),
                }
            }
        }
    }

    /// Splitting the same delta across several batches lands on the same
    /// state as applying it at once: after compaction (which itself proves
    /// each lineage byte-identical to a from-scratch preparation), the two
    /// snapshots save to the same bytes regardless of write granularity —
    /// physical overlay layout cannot leak into the durable form.
    ///
    /// The epochs differ (one write vs. many), so the comparison goes
    /// through the saved snapshot, which carries data, not epochs.
    #[test]
    fn write_granularity_does_not_change_the_compacted_snapshot(
        spec in base_graph(),
        delta in random_delta(),
    ) {
        prop_assume!(!delta.additions.is_empty());
        // Both lineages start from the *same* saved base — the snapshot
        // META carries the measured index-build time, so two independent
        // `index` calls would already differ in their durable form.
        let mut base_bytes = Vec::new();
        PreparedGraph::index(build(&spec.triples))
            .save(&mut base_bytes)
            .expect("base snapshot");
        let one_shot = LiveGraph::new(PreparedGraph::load(&base_bytes[..]).expect("base loads"));
        let mut batch = DeltaBatch::new();
        for t in &delta.additions {
            batch = batch.add(t.clone());
        }
        one_shot.apply(&batch).expect("additions are well-formed");
        one_shot.compact().expect("compaction proves itself");

        let stepwise = LiveGraph::new(PreparedGraph::load(&base_bytes[..]).expect("base loads"));
        for t in &delta.additions {
            stepwise
                .apply(&DeltaBatch::new().add(t.clone()))
                .expect("additions are well-formed");
        }
        stepwise.compact().expect("compaction proves itself");

        let mut one_bytes = Vec::new();
        one_shot.snapshot().save(&mut one_bytes).expect("snapshot");
        let mut step_bytes = Vec::new();
        stepwise.snapshot().save(&mut step_bytes).expect("snapshot");
        prop_assert_eq!(one_bytes, step_bytes, "saved snapshots diverged");
    }
}
