//! Exhaustive model checking of the `SearchService` job queue
//! (submit/drain, shutdown wake-ups).
//!
//! Runs only under `RUSTFLAGS="--cfg kwsearch_model"` and not under the
//! sabotaging `kwsearch_model_mutation` cfg (see `model_mutations.rs`).
//! The scenarios drive `JobQueue` directly: `SearchService` itself spawns
//! native worker threads that the model scheduler cannot see, so the queue
//! — the only shared mutable state on the serve path — is the model
//! surface.
//!
//! Interleaving counts are asserted exactly; see `model_cache.rs` for the
//! fingerprint rationale.

#![cfg(all(kwsearch_model, not(kwsearch_model_mutation)))]

use kwsearch_core::model_scenarios as scenarios;
use kwsearch_modelcheck::Config;

#[test]
fn queue_drains_exactly_what_was_submitted_in_every_interleaving() {
    let schedules =
        scenarios::service_queue_submit_drain(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 83, "explored-space fingerprint moved");
    println!("queue submit/drain: {schedules} interleavings, all correct");
}

#[test]
fn close_always_wakes_an_idle_worker() {
    let schedules =
        scenarios::service_queue_close_wakes_idle_worker(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 13, "explored-space fingerprint moved");
    println!("close vs idle worker: {schedules} interleavings, all correct");
}
