//! Exhaustive model checking of the `SearchService` job queue
//! (submit/drain, shutdown wake-ups) and the sharded scatter-gather
//! coordinator (rendezvous, deadline-during-merge, shutdown-with-inflight).
//!
//! Runs only under `RUSTFLAGS="--cfg kwsearch_model"` and not under the
//! sabotaging `kwsearch_model_mutation` cfg (see `model_mutations.rs`).
//! The scenarios drive `JobQueue`, `ShardQueue` and `GatherState` directly:
//! `SearchService` and `ShardedService` themselves spawn native worker
//! threads that the model scheduler cannot see, so the queues and the
//! gather — the only shared mutable state on the serve path — are the
//! model surface.
//!
//! Interleaving counts are asserted exactly; see `model_cache.rs` for the
//! fingerprint rationale.

#![cfg(all(kwsearch_model, not(kwsearch_model_mutation)))]

use kwsearch_core::model_scenarios as scenarios;
use kwsearch_modelcheck::Config;

#[test]
fn queue_drains_exactly_what_was_submitted_in_every_interleaving() {
    let schedules =
        scenarios::service_queue_submit_drain(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 83, "explored-space fingerprint moved");
    println!("queue submit/drain: {schedules} interleavings, all correct");
}

#[test]
fn close_always_wakes_an_idle_worker() {
    let schedules =
        scenarios::service_queue_close_wakes_idle_worker(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 13, "explored-space fingerprint moved");
    println!("close vs idle worker: {schedules} interleavings, all correct");
}

#[test]
fn the_shard_rendezvous_merges_the_dense_order_in_every_interleaving() {
    let schedules =
        scenarios::shard_scatter_gather_rendezvous(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 1882, "explored-space fingerprint moved");
    println!("shard rendezvous: {schedules} interleavings, all correct");
}

#[test]
fn backpressure_with_full_buffers_never_strands_a_worker() {
    let schedules =
        scenarios::shard_backpressure_full_buffers(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 10208, "explored-space fingerprint moved");
    println!("backpressure full buffers: {schedules} interleavings, all correct");
}

#[test]
fn a_deadline_during_the_merge_always_discards_the_partial_stream() {
    let schedules =
        scenarios::shard_deadline_fires_during_merge(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 499, "explored-space fingerprint moved");
    println!("deadline during merge: {schedules} interleavings, all correct");
}

#[test]
fn shutdown_with_an_inflight_shard_job_serves_it_exactly_once() {
    let schedules =
        scenarios::shard_shutdown_with_inflight(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 60, "explored-space fingerprint moved");
    println!("shutdown with inflight shard job: {schedules} interleavings, all correct");
}
