//! Seeded-mutation regression tests: prove the model checker actually
//! catches the bug classes it exists for.
//!
//! Under `RUSTFLAGS="--cfg kwsearch_model --cfg kwsearch_model_mutation"`
//! four deliberate bugs are compiled into the serving stack:
//!
//! * **(a)** `InFlight::finish` in `cache.rs` drops its `notify_all` — the
//!   owner publishes, but coalesced waiters blocked on the condvar are
//!   never woken;
//! * **(b)** `JobQueue::pop` in `serve.rs` acquires `metrics` before
//!   `state` — the inverse of `push`'s documented order, an AB-BA lock
//!   cycle;
//! * **(c)** `GatherState::finish` in `shard/coordinator.rs` drops its
//!   shard-completion `notify_one` — a merging coordinator that blocked
//!   before the last shard finished is never woken;
//! * **(d)** `AugmentationCache::insert_resolved` in `cache.rs` skips its
//!   clear-generation check — an owner that took its miss before a
//!   `clear()` resurrects the cleared entry (and its stale replay log)
//!   with its write-back.
//!
//! Each test runs the same healthy scenario the `model_cache.rs` /
//! `model_serve.rs` suites prove correct, and asserts the checker reports
//! the exact failure kind with a non-empty schedule that *replays* to the
//! same failure. A future change that blunts the checker (or accidentally
//! fixes only the healthy path) turns these red.

#![cfg(all(kwsearch_model, kwsearch_model_mutation))]

use kwsearch_core::model_scenarios as scenarios;
use kwsearch_modelcheck::{replay, Config, FailureKind};

#[test]
fn dropped_notify_in_single_flight_release_is_reported_as_lost_wakeup() {
    let report = scenarios::cache_single_flight_coalescing(Config::with_preemptions(2));
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::LostWakeup, "{failure}");
    assert!(!failure.schedule.is_empty(), "schedule must be replayable");
    assert!(!failure.trace.is_empty(), "trace must narrate the hang");
    assert!(
        failure.trace.iter().any(|line| line.contains("condvar")),
        "the trace names the stranded condvar wait: {failure}"
    );
    let replayed = replay(
        Config::with_preemptions(2),
        &failure.schedule,
        scenarios::cache_single_flight_body,
    )
    .expect("replaying the printed schedule must reproduce the hang");
    assert_eq!(replayed.kind, FailureKind::LostWakeup);
}

#[test]
fn inverted_pop_lock_order_is_reported_as_deadlock() {
    let report = scenarios::service_queue_submit_drain(Config::with_preemptions(2));
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(!failure.schedule.is_empty(), "schedule must be replayable");
    assert!(
        failure.trace.iter().any(|line| line.contains("mutex")),
        "the trace names the blocked lock acquisitions: {failure}"
    );
    let replayed = replay(
        Config::with_preemptions(2),
        &failure.schedule,
        scenarios::service_queue_submit_drain_body,
    )
    .expect("replaying the printed schedule must reproduce the deadlock");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
}

#[test]
fn skipped_generation_check_is_reported_as_a_resurrected_entry() {
    let report = scenarios::cache_clear_orphans_inflight_writeback(Config::with_preemptions(2));
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(!failure.schedule.is_empty(), "schedule must be replayable");
    // The scenario has two tripwires for a resurrected entry — the end-state
    // residency count and the follow-up probe — and the checker stops at the
    // first one the provoking schedule reaches; both name the clear.
    assert!(
        failure.message.contains("clear"),
        "the panic names the violated clear contract: {failure}"
    );
    let replayed = replay(
        Config::with_preemptions(2),
        &failure.schedule,
        scenarios::cache_clear_orphans_inflight_writeback_body,
    )
    .expect("replaying the printed schedule must reproduce the resurrection");
    assert_eq!(replayed.kind, FailureKind::Panic);
}

#[test]
fn dropped_shard_completion_notify_is_reported_as_lost_wakeup() {
    let report = scenarios::shard_scatter_gather_rendezvous(Config::with_preemptions(2));
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::LostWakeup, "{failure}");
    assert!(!failure.schedule.is_empty(), "schedule must be replayable");
    assert!(
        failure.trace.iter().any(|line| line.contains("condvar")),
        "the trace names the stranded merge wait: {failure}"
    );
    let replayed = replay(
        Config::with_preemptions(2),
        &failure.schedule,
        scenarios::shard_scatter_gather_rendezvous_body,
    )
    .expect("replaying the printed schedule must reproduce the hang");
    assert_eq!(replayed.kind, FailureKind::LostWakeup);
}
