//! Golden regression test: the explorer's top-k results on the Figure-1
//! fixture, captured from the reference implementation. Costs are compared
//! bit-for-bit (f64 bit patterns) and element sets label-for-label, so any
//! behavioural drift in the exploration order, the candidate list, or the
//! cost functions is caught immediately.
//!
//! Every case is checked twice: once through the batch [`Explorer`] and
//! once by streaming certified subgraphs out of a suspended
//! [`ExplorationState`] one at a time — pinning the *session pop order* to
//! the very same golden tables.

use kwsearch_core::{ExplorationState, Explorer, ScoringFunction, SearchConfig};
use kwsearch_keyword_index::KeywordIndex;
use kwsearch_rdf::fixtures::figure1_graph;
use kwsearch_summary::{AugmentedSummaryGraph, SummaryGraph};

/// One expected subgraph: exact cost bits and the sorted element labels.
struct Golden {
    cost_bits: u64,
    labels: &'static [&'static str],
}

fn check(keywords: &[&str], scoring: ScoringFunction, expected: &[Golden]) {
    let g = figure1_graph();
    let base = SummaryGraph::build(&g);
    let index = KeywordIndex::build(&g);
    let matches = index.lookup_all(keywords);
    let aug = AugmentedSummaryGraph::build(&g, &base, &matches);
    let config = SearchConfig::with_k(10).scoring(scoring);
    let outcome = Explorer::new(&aug, config.clone()).run();
    assert_eq!(
        outcome.subgraphs.len(),
        expected.len(),
        "{keywords:?} {scoring}: result count"
    );
    for (i, (got, want)) in outcome.subgraphs.iter().zip(expected).enumerate() {
        assert_eq!(
            got.cost.to_bits(),
            want.cost_bits,
            "{keywords:?} {scoring} rank {i}: cost {} != expected bits",
            got.cost
        );
        let mut labels: Vec<&str> = got
            .elements()
            .iter()
            .map(|&e| aug.element_label(e))
            .collect();
        labels.sort_unstable();
        assert_eq!(
            labels, want.labels,
            "{keywords:?} {scoring} rank {i}: element set"
        );
    }

    // The streaming pop order reproduces the batch order exactly: popping
    // certified subgraphs one at a time from a suspended exploration yields
    // the same sequence, bit for bit.
    let mut state = ExplorationState::new(&aug, &config);
    for (i, want) in expected.iter().enumerate() {
        let got = state
            .next_certified(&aug, &config)
            .unwrap_or_else(|| panic!("{keywords:?} {scoring} streamed pop {i}: missing"));
        assert_eq!(
            got.cost.to_bits(),
            want.cost_bits,
            "{keywords:?} {scoring} streamed pop {i}: cost {} != expected bits",
            got.cost
        );
        let mut labels: Vec<&str> = got
            .elements()
            .iter()
            .map(|&e| aug.element_label(e))
            .collect();
        labels.sort_unstable();
        assert_eq!(
            labels, want.labels,
            "{keywords:?} {scoring} streamed pop {i}: element set"
        );
    }
    assert!(
        state.next_certified(&aug, &config).is_none(),
        "{keywords:?} {scoring}: the stream ends with the golden table"
    );
}

#[test]
fn golden_2006_cimiano_aifb_c1() {
    check(
        &["2006", "cimiano", "aifb"],
        ScoringFunction::PathLength,
        &[
            Golden {
                cost_bits: 0x402a000000000000,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402a000000000000,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4030000000000000,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4030000000000000,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4032000000000000,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4032000000000000,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4032000000000000,
                labels: &[
                    "2006",
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "subclass",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4032000000000000,
                labels: &[
                    "2008",
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "subclass",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4032000000000000,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4032000000000000,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
        ],
    );
}

#[test]
fn golden_2006_cimiano_aifb_c2() {
    check(
        &["2006", "cimiano", "aifb"],
        ScoringFunction::Popularity,
        &[
            Golden {
                cost_bits: 0x4024155555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4024155555555556,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4029155555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4029155555555556,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402b955555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402b955555555556,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402b955555555556,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402b955555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402beaaaaaaaaaaa,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402beaaaaaaaaaaa,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
        ],
    );
}

#[test]
fn golden_2006_cimiano_aifb_c3() {
    check(
        &["2006", "cimiano", "aifb"],
        ScoringFunction::PopularityAndMatch,
        &[
            Golden {
                cost_bits: 0x4024155555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4024aaaaaaaaaaab,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4029155555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x4029aaaaaaaaaaaa,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402b955555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402b955555555556,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402beaaaaaaaaaaa,
                labels: &[
                    "2006",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402c2aaaaaaaaaaa,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402c2aaaaaaaaaaa,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                    "year",
                    "year",
                ],
            },
            Golden {
                cost_bits: 0x402c800000000000,
                labels: &[
                    "2008",
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                    "year",
                ],
            },
        ],
    );
}

#[test]
fn golden_cimiano_aifb_c1() {
    check(
        &["cimiano", "aifb"],
        ScoringFunction::PathLength,
        &[
            Golden {
                cost_bits: 0x4020000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4028000000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "subclass",
                ],
            },
            Golden {
                cost_bits: 0x4028000000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4028000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4028000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x402c000000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x402c000000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "worksAt",
                ],
            },
        ],
    );
}

#[test]
fn golden_cimiano_aifb_c2() {
    check(
        &["cimiano", "aifb"],
        ScoringFunction::Popularity,
        &[
            Golden {
                cost_bits: 0x4019000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x401d555555555556,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4020000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4020000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4021aaaaaaaaaaab,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024000000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024800000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "subclass",
                ],
            },
            Golden {
                cost_bits: 0x4025000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4027555555555555,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "worksAt",
                ],
            },
        ],
    );
}

#[test]
fn golden_cimiano_aifb_c3() {
    check(
        &["cimiano", "aifb"],
        ScoringFunction::PopularityAndMatch,
        &[
            Golden {
                cost_bits: 0x4019000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x401d555555555556,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4020000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4020000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4021aaaaaaaaaaab,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024000000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4024800000000000,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Person",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "subclass",
                ],
            },
            Golden {
                cost_bits: 0x4025000000000000,
                labels: &[
                    "AIFB",
                    "Institute",
                    "P. Cimiano",
                    "Publication",
                    "Researcher",
                    "author",
                    "hasProject",
                    "name",
                    "name",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4027555555555555,
                labels: &[
                    "AIFB",
                    "Agent",
                    "Institute",
                    "P. Cimiano",
                    "Researcher",
                    "name",
                    "name",
                    "subclass",
                    "subclass",
                    "worksAt",
                ],
            },
        ],
    );
}

#[test]
fn golden_publications_c1() {
    check(
        &["publications"],
        ScoringFunction::PathLength,
        &[
            Golden {
                cost_bits: 0x3ff0000000000000,
                labels: &["Publication"],
            },
            Golden {
                cost_bits: 0x4000000000000000,
                labels: &["Publication", "hasProject"],
            },
            Golden {
                cost_bits: 0x4000000000000000,
                labels: &["Publication", "author"],
            },
            Golden {
                cost_bits: 0x4008000000000000,
                labels: &["Project", "Publication", "hasProject"],
            },
            Golden {
                cost_bits: 0x4008000000000000,
                labels: &["Publication", "Researcher", "author"],
            },
            Golden {
                cost_bits: 0x4010000000000000,
                labels: &["Publication", "Researcher", "author", "worksAt"],
            },
            Golden {
                cost_bits: 0x4010000000000000,
                labels: &["Publication", "Researcher", "author", "subclass"],
            },
            Golden {
                cost_bits: 0x4014000000000000,
                labels: &[
                    "Institute",
                    "Publication",
                    "Researcher",
                    "author",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x4014000000000000,
                labels: &["Person", "Publication", "Researcher", "author", "subclass"],
            },
            Golden {
                cost_bits: 0x4018000000000000,
                labels: &[
                    "Institute",
                    "Publication",
                    "Researcher",
                    "author",
                    "subclass",
                    "worksAt",
                ],
            },
        ],
    );
}

#[test]
fn golden_publications_c2() {
    check(
        &["publications"],
        ScoringFunction::Popularity,
        &[
            Golden {
                cost_bits: 0x3fe8000000000000,
                labels: &["Publication"],
            },
            Golden {
                cost_bits: 0x3ff4000000000000,
                labels: &["Publication", "author"],
            },
            Golden {
                cost_bits: 0x3ff9555555555556,
                labels: &["Publication", "hasProject"],
            },
            Golden {
                cost_bits: 0x4000000000000000,
                labels: &["Publication", "Researcher", "author"],
            },
            Golden {
                cost_bits: 0x4002aaaaaaaaaaab,
                labels: &["Project", "Publication", "hasProject"],
            },
            Golden {
                cost_bits: 0x4005555555555556,
                labels: &["Publication", "Researcher", "author", "worksAt"],
            },
            Golden {
                cost_bits: 0x4006aaaaaaaaaaab,
                labels: &["Publication", "Researcher", "author", "subclass"],
            },
            Golden {
                cost_bits: 0x400b555555555556,
                labels: &[
                    "Institute",
                    "Publication",
                    "Researcher",
                    "author",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x400eaaaaaaaaaaab,
                labels: &["Person", "Publication", "Researcher", "author", "subclass"],
            },
            Golden {
                cost_bits: 0x4011000000000000,
                labels: &[
                    "Institute",
                    "Publication",
                    "Researcher",
                    "author",
                    "subclass",
                    "worksAt",
                ],
            },
        ],
    );
}

#[test]
fn golden_publications_c3() {
    check(
        &["publications"],
        ScoringFunction::PopularityAndMatch,
        &[
            Golden {
                cost_bits: 0x3fe8000000000000,
                labels: &["Publication"],
            },
            Golden {
                cost_bits: 0x3ff4000000000000,
                labels: &["Publication", "author"],
            },
            Golden {
                cost_bits: 0x3ff9555555555556,
                labels: &["Publication", "hasProject"],
            },
            Golden {
                cost_bits: 0x4000000000000000,
                labels: &["Publication", "Researcher", "author"],
            },
            Golden {
                cost_bits: 0x4002aaaaaaaaaaab,
                labels: &["Project", "Publication", "hasProject"],
            },
            Golden {
                cost_bits: 0x4005555555555556,
                labels: &["Publication", "Researcher", "author", "worksAt"],
            },
            Golden {
                cost_bits: 0x4006aaaaaaaaaaab,
                labels: &["Publication", "Researcher", "author", "subclass"],
            },
            Golden {
                cost_bits: 0x400b555555555556,
                labels: &[
                    "Institute",
                    "Publication",
                    "Researcher",
                    "author",
                    "worksAt",
                ],
            },
            Golden {
                cost_bits: 0x400eaaaaaaaaaaab,
                labels: &["Person", "Publication", "Researcher", "author", "subclass"],
            },
            Golden {
                cost_bits: 0x4011000000000000,
                labels: &[
                    "Institute",
                    "Publication",
                    "Researcher",
                    "author",
                    "subclass",
                    "worksAt",
                ],
            },
        ],
    );
}
