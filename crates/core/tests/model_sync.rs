//! Model checking of the `sync` facade's poisoning-recovery contract
//! (`lock_unpoisoned`) under exploration.
//!
//! Runs only under `RUSTFLAGS="--cfg kwsearch_model"` and not under the
//! sabotaging `kwsearch_model_mutation` cfg (see `model_mutations.rs`).
//! The interleaving count is asserted exactly; see `model_cache.rs` for
//! the fingerprint rationale.

#![cfg(all(kwsearch_model, not(kwsearch_model_mutation)))]

use kwsearch_core::model_scenarios as scenarios;
use kwsearch_modelcheck::Config;

#[test]
fn lock_unpoisoned_recovers_in_every_interleaving() {
    let schedules =
        scenarios::sync_lock_unpoisoned_recovery(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 7, "explored-space fingerprint moved");
    println!("poisoning recovery: {schedules} interleavings, all correct");
}
