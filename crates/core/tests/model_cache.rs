//! Exhaustive model checking of the augmentation cache's concurrency
//! contracts (single-flight coalescing, abandonment recovery, negative
//! entries, eviction vs. write-back).
//!
//! Runs only under `RUSTFLAGS="--cfg kwsearch_model"`, where
//! `kwsearch_core::sync` resolves to the `kwsearch-modelcheck` shims — and
//! not under the additional `kwsearch_model_mutation` cfg, which sabotages
//! the code under test on purpose (see `model_mutations.rs`).
//!
//! The asserted interleaving counts are exact: the DFS explorer is
//! deterministic, so the count is a fingerprint of the explored space. A
//! legitimate change to the scenario or to the shims' schedule points moves
//! the number — update the constant after confirming the new exploration
//! still passes. A count that silently *shrinks* without a code change
//! means the explorer stopped exploring.

#![cfg(all(kwsearch_model, not(kwsearch_model_mutation)))]

use kwsearch_core::model_scenarios as scenarios;
use kwsearch_modelcheck::Config;

#[test]
fn single_flight_coalescing_is_exhaustively_correct() {
    let schedules =
        scenarios::cache_single_flight_coalescing(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 49, "explored-space fingerprint moved");
    println!("single-flight coalescing: {schedules} interleavings, all correct");
}

#[test]
fn abandoned_owner_releases_waiters_to_retry() {
    let schedules =
        scenarios::cache_owner_abandons_waiters_retry(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 140, "explored-space fingerprint moved");
    println!("owner abandonment: {schedules} interleavings, all correct");
}

#[test]
fn negative_entries_serve_concurrent_probes_without_recomputing() {
    let schedules =
        scenarios::cache_negative_entry_is_cached(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 49, "explored-space fingerprint moved");
    println!("negative entries: {schedules} interleavings, all correct");
}

#[test]
fn replay_log_write_back_survives_concurrent_eviction() {
    let schedules =
        scenarios::cache_store_results_vs_eviction(Config::with_preemptions(2)).assert_pass();
    assert_eq!(schedules, 41, "explored-space fingerprint moved");
    println!("store vs eviction: {schedules} interleavings, all correct");
}

#[test]
fn clear_orphans_the_inflight_writeback_in_every_interleaving() {
    let schedules = scenarios::cache_clear_orphans_inflight_writeback(Config::with_preemptions(2))
        .assert_pass();
    assert_eq!(schedules, 19, "explored-space fingerprint moved");
    println!("clear vs in-flight write-back: {schedules} interleavings, all correct");
}

#[test]
fn epoch_advance_never_leaks_a_touched_entry_to_the_new_epoch() {
    let schedules =
        scenarios::cache_epoch_advance_races_inflight_writeback(Config::with_preemptions(2))
            .assert_pass();
    assert_eq!(schedules, 25, "explored-space fingerprint moved");
    println!("epoch advance vs write-back: {schedules} interleavings, all correct");
}
