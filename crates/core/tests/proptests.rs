//! Property-based tests of the top-k exploration: result validity,
//! cost ordering, the prefix property of increasing k, agreement across
//! configurations, and the streaming `SearchSession` (drain-equivalence to
//! the batch explorer, `raise_k` resumption) on randomly generated graphs.

use proptest::prelude::*;

use kwsearch_core::{
    map_subgraph_to_query, Explorer, KeywordSearchEngine, RankedQuery, ScoringFunction,
    SearchConfig,
};
use kwsearch_keyword_index::KeywordIndex;
use kwsearch_rdf::{DataGraph, Triple};
use kwsearch_summary::{AugmentedSummaryGraph, SummaryGraph};

/// A compact random data graph: a handful of classes, entities with
/// attributes drawn from a small label pool, and random relations.
#[derive(Debug, Clone)]
struct RandomGraph {
    triples: Vec<Triple>,
    value_labels: Vec<String>,
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    let classes = ["Alpha", "Beta", "Gamma"];
    let values = ["red", "green", "blue", "cyan", "amber"];
    let relations = ["linksTo", "near", "uses"];

    (
        proptest::collection::vec((0usize..12, 0usize..classes.len()), 3..12),
        proptest::collection::vec((0usize..12, 0usize..values.len()), 2..12),
        proptest::collection::vec((0usize..12, 0usize..relations.len(), 0usize..12), 0..16),
    )
        .prop_map(move |(types, attrs, rels)| {
            let mut triples = Vec::new();
            let mut used_values = Vec::new();
            for (e, c) in &types {
                triples.push(Triple::typed(format!("e{e}"), classes[*c]));
            }
            for (e, v) in &attrs {
                triples.push(Triple::attribute(format!("e{e}"), "label", values[*v]));
                if !used_values.contains(&values[*v].to_string()) {
                    used_values.push(values[*v].to_string());
                }
            }
            for (s, r, o) in &rels {
                triples.push(Triple::relation(
                    format!("e{s}"),
                    relations[*r],
                    format!("e{o}"),
                ));
            }
            RandomGraph {
                triples,
                value_labels: used_values,
            }
        })
}

fn build(graph_spec: &RandomGraph) -> DataGraph {
    let mut graph = DataGraph::new();
    for t in &graph_spec.triples {
        graph
            .insert_triple(t)
            .expect("generated triples are well-formed");
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every returned subgraph is connected, covers every keyword, and the
    /// result list is sorted by non-decreasing cost — for all three scoring
    /// functions.
    #[test]
    fn results_are_valid_and_sorted(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();

        let base = SummaryGraph::build(&graph);
        let index = KeywordIndex::build(&graph);
        let matches = index.lookup_all(&keywords);
        let augmented = AugmentedSummaryGraph::build(&graph, &base, &matches);

        for scoring in ScoringFunction::all() {
            let config = SearchConfig::with_k(5).scoring(scoring);
            let outcome = Explorer::new(&augmented, config).run();
            let mut previous = 0.0f64;
            for subgraph in &outcome.subgraphs {
                prop_assert!(subgraph.cost >= previous - 1e-9);
                previous = subgraph.cost;
                prop_assert!(subgraph.is_connected(&augmented));
                prop_assert_eq!(subgraph.keyword_count(), keywords.len());
                // Path costs are consistent with the scoring function.
                for path in subgraph.paths() {
                    let recomputed = scoring.path_cost(&augmented, &path.elements);
                    prop_assert!((recomputed - path.cost).abs() < 1e-6);
                }
            }
        }
    }

    /// Increasing k never changes the cheaper prefix of the result list
    /// (the top-k guarantee), and never returns more than k results.
    #[test]
    fn larger_k_extends_the_result_list(spec in random_graph()) {
        prop_assume!(!spec.value_labels.is_empty());
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();
        let engine = KeywordSearchEngine::builder(graph).build();

        let small = engine
            .search_with(&keywords, &SearchConfig::with_k(2))
            .unwrap();
        let large = engine
            .search_with(&keywords, &SearchConfig::with_k(6))
            .unwrap();
        prop_assert!(small.queries.len() <= 2);
        prop_assert!(large.queries.len() <= 6);
        prop_assert!(large.queries.len() >= small.queries.len());
        for (a, b) in small.queries.iter().zip(large.queries.iter()) {
            prop_assert!((a.cost - b.cost).abs() < 1e-9);
        }
    }

    /// The engine is deterministic: searching twice yields identical
    /// queries and costs.
    #[test]
    fn search_is_deterministic(spec in random_graph()) {
        prop_assume!(!spec.value_labels.is_empty());
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();
        let engine = KeywordSearchEngine::builder(graph).build();
        let first = engine.search(&keywords).unwrap();
        let second = engine.search(&keywords).unwrap();
        prop_assert_eq!(first.queries.len(), second.queries.len());
        for (a, b) in first.queries.iter().zip(second.queries.iter()) {
            prop_assert_eq!(a.query.canonicalized(), b.query.canonicalized());
            prop_assert!((a.cost - b.cost).abs() < 1e-12);
        }
    }

    /// The optimized explorer returns cost-identical top-k results to the
    /// exhaustive reference (a run with `k = usize::MAX / 2`, whose
    /// threshold test never fires, enumerating every candidate within
    /// `dmax`) — across random graphs, keyword choices, and all three
    /// scoring functions. This is the safety net of the dense-id/CSR/global-
    /// queue refactor of the exploration hot path.
    #[test]
    fn topk_is_cost_identical_to_the_exhaustive_reference(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();

        let base = SummaryGraph::build(&graph);
        let index = KeywordIndex::build(&graph);
        let matches = index.lookup_all(&keywords);
        let augmented = AugmentedSummaryGraph::build(&graph, &base, &matches);

        for scoring in ScoringFunction::all() {
            // dmax is kept small so the exhaustive enumeration stays cheap
            // on adversarial random graphs; both runs use the same bound.
            let reference_config = SearchConfig {
                k: usize::MAX / 2,
                ..SearchConfig::default()
            }
            .scoring(scoring)
            .dmax(4);
            let reference = Explorer::new(&augmented, reference_config).run();

            for k in [1usize, 3, 7] {
                let config = SearchConfig::with_k(k).scoring(scoring).dmax(4);
                let topk = Explorer::new(&augmented, config).run();
                prop_assert_eq!(
                    topk.subgraphs.len(),
                    reference.subgraphs.len().min(k),
                    "k = {}, scoring {}: result count",
                    k,
                    scoring
                );
                for (i, (got, want)) in
                    topk.subgraphs.iter().zip(reference.subgraphs.iter()).enumerate()
                {
                    prop_assert!(
                        (got.cost - want.cost).abs() < 1e-9,
                        "k = {}, scoring {}, rank {}: cost {} != reference {}",
                        k,
                        scoring,
                        i,
                        got.cost,
                        want.cost
                    );
                }
            }
        }
    }

    /// Generated queries never contain unknown predicates: every predicate
    /// of every result exists as an edge label of the data graph (or is the
    /// reserved `type`/`subclass`).
    #[test]
    fn generated_queries_use_existing_vocabulary(spec in random_graph()) {
        prop_assume!(!spec.value_labels.is_empty());
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();
        let engine = KeywordSearchEngine::builder(graph).build();
        let outcome = engine.search(&keywords).unwrap();
        for ranked in &outcome.queries {
            for predicate in ranked.query.predicates() {
                prop_assert!(
                    !engine.graph().edge_labels_named(&predicate).is_empty(),
                    "unknown predicate {} in generated query",
                    predicate
                );
            }
            prop_assert!(!ranked.query.distinguished().is_empty());
        }
    }
}

/// The old batch pipeline, reimplemented on the explorer directly: run
/// Algorithm 1 + 2 to completion, then map and deduplicate the subgraphs.
/// The independent reference the streaming `SearchSession` is checked
/// against.
fn batch_reference(
    graph: &DataGraph,
    keywords: &[String],
    config: &SearchConfig,
) -> Vec<RankedQuery> {
    use std::collections::BTreeSet;

    let base = SummaryGraph::build(graph);
    let index = KeywordIndex::build(graph);
    let all_matches = index.lookup_all(keywords);
    let matches: Vec<_> = all_matches.into_iter().filter(|m| !m.is_empty()).collect();
    let augmented = AugmentedSummaryGraph::build(graph, &base, &matches);
    let outcome = Explorer::new(&augmented, config.clone()).run();

    let mut queries: Vec<RankedQuery> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for subgraph in outcome.subgraphs {
        let query = map_subgraph_to_query(&augmented, &subgraph);
        let canonical = query.canonicalized().to_string();
        if !seen.insert(canonical) {
            continue;
        }
        queries.push(RankedQuery {
            rank: queries.len() + 1,
            cost: subgraph.cost,
            query,
            subgraph,
        });
        if queries.len() >= config.k {
            break;
        }
    }
    queries
}

/// Sorted element labels of a ranked query's subgraph — the element-set
/// identity used by the drain-equivalence checks.
fn element_key(ranked: &RankedQuery) -> Vec<String> {
    let mut labels: Vec<String> = ranked
        .subgraph
        .elements()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    labels.sort_unstable();
    labels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fully draining a `SearchSession` yields cost- and element-identical
    /// results to the batch explorer pipeline — across random graphs and
    /// all three scoring functions. Costs are compared bit-for-bit: the
    /// streaming emission must not change a single arithmetic step.
    #[test]
    fn draining_a_session_is_identical_to_batch_search(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();
        let engine = KeywordSearchEngine::builder(graph.clone()).build();

        for scoring in ScoringFunction::all() {
            let config = SearchConfig::with_k(5).scoring(scoring);
            let reference = batch_reference(&graph, &keywords, &config);

            let mut session = engine
                .session_with(&keywords, config.clone())
                .expect("at least one keyword matches");
            let mut streamed: Vec<RankedQuery> = Vec::new();
            while let Some(ranked) = session.next_query() {
                streamed.push(ranked);
            }
            prop_assert!(session.next_query().is_none(), "the stream stays drained");

            prop_assert_eq!(
                streamed.len(),
                reference.len(),
                "scoring {}: result count",
                scoring
            );
            for (got, want) in streamed.iter().zip(reference.iter()) {
                prop_assert_eq!(got.rank, want.rank);
                prop_assert_eq!(
                    got.cost.to_bits(),
                    want.cost.to_bits(),
                    "scoring {}, rank {}: cost {} != {}",
                    scoring,
                    got.rank,
                    got.cost,
                    want.cost
                );
                prop_assert_eq!(element_key(got), element_key(want));
                prop_assert_eq!(got.query.canonicalized(), want.query.canonicalized());
            }
        }
    }

    /// `raise_k` resumption: draining a session at a small k and raising it
    /// delivers the same result *set* as a fresh session at the larger k —
    /// same costs (bit for bit), element sets and canonical queries, with
    /// sequential ranks and non-decreasing costs within each emission run.
    /// (Exact emission order can legitimately differ from the fresh session
    /// on cost ties interacting with the smaller k's tighter pruning — see
    /// the `raise_k` docs — so the order-sensitive check lives in the
    /// deterministic Figure-1 unit test, and this property compares
    /// multisets.)
    #[test]
    fn raise_k_delivers_the_fresh_larger_k_result_set(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();
        let engine = KeywordSearchEngine::builder(graph).build();

        let mut raised = engine
            .session_with(&keywords, SearchConfig::with_k(2))
            .expect("at least one keyword matches");
        let mut collected: Vec<RankedQuery> = Vec::new();
        while let Some(ranked) = raised.next_query() {
            collected.push(ranked);
        }
        raised.raise_k(6);
        while let Some(ranked) = raised.next_query() {
            collected.push(ranked);
        }

        let fresh = engine
            .session_with(&keywords, SearchConfig::with_k(6))
            .expect("at least one keyword matches");
        let fresh_outcome = fresh.into_outcome();

        for (i, ranked) in collected.iter().enumerate() {
            prop_assert_eq!(ranked.rank, i + 1, "ranks stay sequential across the raise");
        }
        let key = |q: &RankedQuery| (q.cost.to_bits(), q.query.canonicalized().to_string(), element_key(q));
        let mut got: Vec<_> = collected.iter().map(key).collect();
        let mut want: Vec<_> = fresh_outcome.queries.iter().map(key).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }
}

/// The bit-identity key of one search outcome: per rank the cost bits, the
/// canonical query string and the sorted element labels — the equality the
/// augmentation-cache coherence properties demand.
fn outcome_key(outcome: &kwsearch_core::SearchOutcome) -> Vec<(u64, String, Vec<String>)> {
    outcome
        .queries
        .iter()
        .map(|q| {
            (
                q.cost.to_bits(),
                q.query.canonicalized().to_string(),
                element_key(q),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cache coherence: for random graphs, keyword sets and all three
    /// scoring functions, a cache-hit search equals a cache-miss search
    /// bit for bit — both compared against an engine whose cache is
    /// disabled, so neither direction of the memoization can drift.
    #[test]
    fn cache_hits_equal_cache_misses_exactly(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();

        let cached = KeywordSearchEngine::builder(graph.clone()).cache_capacity(8).build();
        let uncached = KeywordSearchEngine::builder(graph).cache_capacity(0).build();

        for scoring in ScoringFunction::all() {
            let config = SearchConfig::with_k(5).scoring(scoring);
            let reference = uncached.search_with(&keywords, &config).unwrap();
            let miss = cached.search_with(&keywords, &config).unwrap();
            let hit = cached.search_with(&keywords, &config).unwrap();
            prop_assert_eq!(
                outcome_key(&miss),
                outcome_key(&reference),
                "scoring {}: cache-miss run differs from the uncached engine",
                scoring
            );
            prop_assert_eq!(
                outcome_key(&hit),
                outcome_key(&reference),
                "scoring {}: cache-hit run differs from the uncached engine",
                scoring
            );
        }
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.hits, 3, "one hit per scoring function: {:?}", stats);
    }

    /// Evicting mid-sequence never changes results: a capacity-1 cache is
    /// thrashed by alternating keyword sets (every search after the first
    /// either hits or re-computes a just-evicted entry), and every outcome
    /// stays bit-identical to the uncached engine's.
    #[test]
    fn eviction_mid_sequence_never_changes_results(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let a = vec![spec.value_labels[0].clone()];
        let b = vec![spec.value_labels[1].clone()];
        let config = SearchConfig::with_k(4);

        let thrashed = KeywordSearchEngine::builder(graph.clone()).cache_capacity(1).build();
        let uncached = KeywordSearchEngine::builder(graph).cache_capacity(0).build();

        for round in 0..3 {
            for keywords in [&a, &b] {
                let got = thrashed.search_with(keywords, &config).unwrap();
                let want = uncached.search_with(keywords, &config).unwrap();
                prop_assert_eq!(
                    outcome_key(&got),
                    outcome_key(&want),
                    "round {}, keywords {:?}: thrashed cache drifted",
                    round,
                    keywords
                );
            }
        }
        let stats = thrashed.cache_stats();
        prop_assert!(stats.len <= 1, "capacity bound violated: {:?}", stats);
        prop_assert!(stats.evictions >= 4, "alternation must evict: {:?}", stats);
    }

    /// The LRU capacity bound holds under adversarial key sequences: every
    /// distinct (keyword set, config) pair inserts its own entry, yet the
    /// resident count never exceeds the configured capacity.
    #[test]
    fn lru_capacity_bound_holds_under_adversarial_keys(spec in random_graph()) {
        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let capacity = 3usize;
        let engine = KeywordSearchEngine::builder(graph).cache_capacity(capacity).build();

        // Adversarial mix: distinct keyword sets × distinct ks (distinct
        // config keys), with re-touches of early keys interleaved so
        // recency ordering actually matters.
        for k in [1usize, 2, 3] {
            let config = SearchConfig::with_k(k);
            for width in 1..=spec.value_labels.len().min(3) {
                let keywords: Vec<String> =
                    spec.value_labels.iter().take(width).cloned().collect();
                let _ = engine.search_with(&keywords, &config);
                let _ = engine.search_with(&keywords[..1], &config);
                let stats = engine.cache_stats();
                prop_assert!(
                    stats.len <= capacity,
                    "capacity bound violated: {:?}",
                    stats
                );
            }
        }
        let stats = engine.cache_stats();
        prop_assert!(stats.insertions > capacity as u64, "the sequence overflows: {:?}", stats);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded scatter-gather identity: for random graphs, every shard
    /// count in {1, 2, 3, 7} and all three scoring functions, the
    /// [`ShardedService`]'s streamed merge equals a drained unsharded
    /// session on a fresh cache-disabled preparation — ranks dense, costs
    /// bit-for-bit, canonical queries and element sets equal. This is the
    /// randomized arm of the golden Figure-1 bit-identity tests.
    #[test]
    fn sharded_merge_equals_the_unsharded_stream(spec in random_graph()) {
        use kwsearch_core::serve::SearchRequest;
        use kwsearch_core::shard::ShardedService;
        use kwsearch_core::PreparedGraph;

        prop_assume!(spec.value_labels.len() >= 2);
        let graph = build(&spec);
        let keywords: Vec<String> = spec.value_labels.iter().take(2).cloned().collect();
        let pristine = PreparedGraph::index_with(graph.clone(), Default::default(), 0);

        for shard_count in [1usize, 2, 3, 7] {
            let service = ShardedService::over(&graph, shard_count, SearchConfig::default());
            for scoring in ScoringFunction::all() {
                let config = SearchConfig::with_k(5).scoring(scoring);
                let Ok(mut session) = pristine.session(&keywords, config.clone()) else {
                    // No keyword matched: the service must agree on the miss.
                    prop_assert!(service
                        .search(SearchRequest::new(keywords.iter()).with_config(config))
                        .is_err());
                    continue;
                };
                let mut reference: Vec<RankedQuery> = Vec::new();
                while let Some(ranked) = session.next_query() {
                    reference.push(ranked);
                }
                let outcome = service
                    .search(SearchRequest::new(keywords.iter()).with_config(config))
                    .expect("the unsharded session matched, so the scatter must too");
                prop_assert_eq!(
                    outcome.queries.len(),
                    reference.len(),
                    "{} shards, scoring {}: stream length",
                    shard_count,
                    scoring
                );
                for (got, want) in outcome.queries.iter().zip(reference.iter()) {
                    prop_assert_eq!(got.rank, want.rank);
                    prop_assert_eq!(
                        got.cost.to_bits(),
                        want.cost.to_bits(),
                        "{} shards, scoring {}, rank {}: cost drifted",
                        shard_count,
                        scoring,
                        got.rank
                    );
                    prop_assert_eq!(got.query.canonicalized(), want.query.canonicalized());
                    prop_assert_eq!(element_key(got), element_key(want));
                }
            }
            service.shutdown();
        }
    }
}
