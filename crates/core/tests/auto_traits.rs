//! Compile-time auto-trait guards for the shared serving path.
//!
//! The concurrent architecture rests on `PreparedGraph` (and everything
//! reachable from it) being `Send + Sync`: an `Arc<PreparedGraph>` is handed
//! to worker threads, sessions borrow it, and the augmentation cache is
//! probed from all of them. These assertions make a future regression — say,
//! an `Rc` or `RefCell` slipped into an index or the cache — fail at
//! `cargo test` time with a type error pointing at the offending type,
//! instead of surfacing as a build break in downstream serving code (or not
//! at all until production).

use std::sync::Arc;

use kwsearch_core::serve::{SearchRequest, SearchResponse, SearchTicket};
use kwsearch_core::{
    AnswerPhase, AugmentationCache, AugmentationKey, CacheStats, EngineBuilder,
    KeywordSearchEngine, PreparedGraph, SearchConfig, SearchError, SearchOutcome, SearchService,
    SearchSession,
};
use kwsearch_keyword_index::{KeywordIndex, KeywordIndexConfig};
use kwsearch_rdf::{DataGraph, TripleStore};
use kwsearch_summary::{AugmentationSnapshot, SummaryGraph};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn shared_read_path_is_send_and_sync() {
    assert_send_sync::<PreparedGraph>();
    assert_send_sync::<Arc<PreparedGraph>>();
    assert_send_sync::<AugmentationCache>();
    assert_send_sync::<AugmentationKey>();
    assert_send_sync::<AugmentationSnapshot>();
    assert_send_sync::<KeywordSearchEngine>();
    assert_send_sync::<EngineBuilder>();
}

#[test]
fn serving_types_are_send_and_sync() {
    assert_send_sync::<SearchService>();
    assert_send_sync::<SearchRequest>();
    assert_send_sync::<SearchResponse>();
    // A ticket is moved to whoever awaits the response; it does not need to
    // be shared, only sent.
    assert_send::<SearchTicket>();
}

#[test]
fn config_types_are_send_and_sync() {
    assert_send_sync::<SearchConfig>();
    assert_send_sync::<KeywordIndexConfig>();
    assert_send_sync::<CacheStats>();
}

#[test]
fn request_scoped_types_are_send_and_sync() {
    // Sessions and outcomes cross thread boundaries in the worker pool.
    assert_send_sync::<SearchSession<'static>>();
    assert_send_sync::<SearchOutcome>();
    assert_send_sync::<AnswerPhase>();
    assert_send_sync::<SearchError>();
}

#[test]
fn underlying_indexes_are_send_and_sync() {
    assert_send_sync::<DataGraph>();
    assert_send_sync::<TripleStore>();
    assert_send_sync::<KeywordIndex>();
    assert_send_sync::<SummaryGraph>();
}
