//! The scatter-gather serving coordinator.
//!
//! A [`ShardedService`] owns one [`PreparedGraph`] per shard (built by
//! [`PartitionPlan::prepare_shards`](crate::shard::PartitionPlan::prepare_shards))
//! and a pool of per-shard worker threads. One request flows through it as:
//!
//! 1. **Admission** — a bounded in-flight budget; over it, the request is
//!    turned away with [`ServeError::Rejected`] before any work happens.
//! 2. **Phase-1 scatter** — the keywords are looked up on every shard's
//!    index and the per-shard lists merged into the exact global matches
//!    (see [`crate::shard`]'s module docs for why the merge is exact).
//! 3. **Phase-2 scatter** — one job per shard is pushed onto that shard's
//!    bounded queue *while the coordinator's admission lock is held*, so a
//!    racing shutdown can never close the queues between admission and
//!    scatter. Each worker runs a full [`SearchSession`] over the merged
//!    matches but **emits only the results its shard owns** (FNV-1a of the
//!    canonical query modulo the shard count).
//! 4. **Streaming merge** — the caller's thread merges the per-shard
//!    emission streams. An emission is released the moment its cost is at
//!    or below every other shard's *emission lower bound* (the cheapest
//!    cost that shard can still emit, [`SearchSession::emission_lower_bound`]) —
//!    the cross-shard form of the paper's threshold certificate, so
//!    rank-correct results stream out **before** the slowest shard drains.
//! 5. **Deadlines** — a request deadline is installed on every shard
//!    session *and* enforced by the merge loop itself: the cursor walks
//!    abort cooperatively within one poll of expiry, and the coordinator's
//!    condvar wait times out at the request's absolute deadline, so an
//!    expired request fails even when every shard worker is blocked or
//!    silent. Either way the merged partial stream is discarded with
//!    [`ServeError::DeadlineExceeded`].
//!
//! Lock order (checked by the workspace lint's acquisition graph): the
//! coordinator's `state` is acquired before any shard queue's
//! `shard_state`; the per-request `gather` lock nests inside neither.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

use kwsearch_keyword_index::KeywordMatch as ElementMatch;
use kwsearch_query::{AnswerSet, Atom, ConjunctiveQuery, Evaluator};
use kwsearch_rdf::snapshot::fnv1a64;
use kwsearch_rdf::VertexId;

use crate::config::SearchConfig;
use crate::engine::AnswerPhase;
use crate::error::{KeywordMatch, SearchError};
use crate::prepared::PreparedGraph;
use crate::result::RankedQuery;
use crate::serve::{SearchRequest, ServeError};
use crate::session::SearchSession;
use crate::shard::matches::merge_keyword_matches;
use crate::sync::{lock_unpoisoned, Arc, CancelToken, Condvar, Mutex};

/// Tuning knobs of a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ShardedServiceOptions {
    /// Worker threads per shard (each serves one request's shard job at a
    /// time; more workers overlap concurrent requests).
    pub workers_per_shard: usize,
    /// Admission cap: concurrently served requests beyond this are turned
    /// away with [`ServeError::Rejected`].
    pub max_inflight: usize,
    /// Capacity of each shard's job queue; a full queue rejects the whole
    /// request (all-or-nothing scatter).
    pub queue_capacity: usize,
    /// Per-shard bound on buffered, not-yet-merged emissions; workers
    /// block (backpressure) when their request's buffer is full.
    pub pending_limit: usize,
}

impl Default for ShardedServiceOptions {
    fn default() -> Self {
        Self {
            workers_per_shard: 1,
            max_inflight: 64,
            queue_capacity: 64,
            pending_limit: 64,
        }
    }
}

/// Counters of a [`ShardedService`] (see [`ShardedService::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Requests admitted past the in-flight cap.
    pub requests_admitted: u64,
    /// Requests turned away by admission control or a full shard queue.
    pub requests_rejected: u64,
    /// Requests that failed with [`ServeError::DeadlineExceeded`].
    pub requests_deadline_exceeded: u64,
    /// Rank-certified emissions released by the streaming merge.
    pub merged_emissions: u64,
    /// Merged emissions released while at least one shard was still
    /// running — the streaming wins over a drain-then-merge design.
    pub early_emissions: u64,
}

/// The result of one sharded search (the scatter-gather analogue of
/// [`SearchOutcome`](crate::engine::SearchOutcome)).
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The merged top-k queries, bit-identical to the unsharded stream.
    pub queries: Vec<RankedQuery>,
    /// The per-keyword match report (from the merged global matches).
    pub keywords: Vec<KeywordMatch>,
    /// The sharded answer phase, when the request asked for one.
    pub answer_phase: Option<AnswerPhase>,
    /// Number of shards the request was scattered over.
    pub shard_count: usize,
    /// Phase-1 latency: per-shard lookups, match merge and job scatter.
    pub scatter_time: Duration,
    /// Streaming-merge latency (overlaps the shard explorations).
    pub merge_time: Duration,
    /// Emissions released before the last shard finished.
    pub early_emissions: usize,
}

impl ShardedOutcome {
    /// Fraction of merged emissions released while some shard was still
    /// exploring (0.0 for an empty result).
    pub fn early_emit_ratio(&self) -> f64 {
        if self.queries.is_empty() {
            0.0
        } else {
            self.early_emissions as f64 / self.queries.len() as f64
        }
    }
}

// ---------------------------------------------------------------------
// Per-shard job queues
// ---------------------------------------------------------------------

/// One scattered unit of work: run the request's session on one shard.
pub(crate) struct ShardJob {
    pub(crate) gather: Arc<GatherState>,
    pub(crate) shard_id: usize,
    pub(crate) shard_count: usize,
    pub(crate) matches: Arc<Vec<Vec<ElementMatch>>>,
    pub(crate) report: Vec<KeywordMatch>,
    pub(crate) config: SearchConfig,
    pub(crate) deadline: Option<Instant>,
    pub(crate) cancel: CancelToken,
}

pub(crate) struct ShardQueueState {
    pub(crate) jobs: VecDeque<ShardJob>,
    pub(crate) closed: bool,
}

/// A bounded MPMC job queue feeding one shard's workers. The mutex field
/// is deliberately named `shard_state` so the lint's acquisition graph
/// records the coordinator's `state → shard_state` scatter edge as its own
/// node (distinct from the serve-layer `state`).
pub(crate) struct ShardQueue {
    pub(crate) shard_state: Mutex<ShardQueueState>,
    pub(crate) available: Condvar,
}

impl ShardQueue {
    pub(crate) fn new() -> Self {
        Self {
            shard_state: Mutex::new(ShardQueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues a job (unbounded push for the model scenarios; the serving
    /// path enforces its capacity at the scatter site, where the rejection
    /// must be all-or-nothing across every shard).
    #[cfg_attr(not(kwsearch_model), allow(dead_code))]
    pub(crate) fn push(&self, job: ShardJob) {
        let mut shard_state = lock_unpoisoned(&self.shard_state);
        debug_assert!(!shard_state.closed, "push to a closed shard queue");
        shard_state.jobs.push_back(job);
        drop(shard_state);
        self.available.notify_one();
    }

    /// Blocks for the next job; `None` once the queue is closed and empty.
    // lint: wait-loop
    pub(crate) fn pop(&self) -> Option<ShardJob> {
        let mut shard_state = lock_unpoisoned(&self.shard_state);
        loop {
            if let Some(job) = shard_state.jobs.pop_front() {
                return Some(job);
            }
            if shard_state.closed {
                return None;
            }
            shard_state = self
                .available
                .wait(shard_state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: queued jobs still drain, then pops return `None`.
    pub(crate) fn close(&self) {
        let mut shard_state = lock_unpoisoned(&self.shard_state);
        shard_state.closed = true;
        drop(shard_state);
        self.available.notify_all();
    }
}

// ---------------------------------------------------------------------
// Per-request gather state
// ---------------------------------------------------------------------

/// One shard's progress inside a gather.
struct ShardProgress {
    /// Owned, not-yet-merged emissions, in emission (= global rank) order.
    pending: VecDeque<RankedQuery>,
    /// Lower bound on the cost of every emission the shard has not pushed
    /// yet; `None` once nothing further can come (an infinite bound).
    bound: Option<f64>,
    /// The shard's session drained (or bailed on a cancelled gather).
    done: bool,
    /// The shard's session was cut short by the deadline or cancellation.
    aborted: bool,
}

struct Gather {
    shards: Vec<ShardProgress>,
    pending_limit: usize,
    /// Set by the merge when it stops needing emissions (k reached, error,
    /// rejection mid-scatter): workers bail instead of buffering.
    cancelled: bool,
}

/// The rendezvous between one request's shard workers and its merging
/// coordinator: per-shard emission buffers plus the cross-shard bounds the
/// merge certificate is computed from.
pub(crate) struct GatherState {
    gather: Mutex<Gather>,
    /// Signalled on every emission, bound update and shard completion;
    /// the merging coordinator waits here.
    progress: Condvar,
    /// Signalled when the merge frees buffer space; workers with a full
    /// pending buffer wait here.
    space: Condvar,
}

impl GatherState {
    pub(crate) fn new(shard_count: usize, pending_limit: usize) -> Self {
        Self {
            gather: Mutex::new(Gather {
                shards: (0..shard_count)
                    .map(|_| ShardProgress {
                        pending: VecDeque::new(),
                        bound: Some(0.0),
                        done: false,
                        aborted: false,
                    })
                    .collect(),
                pending_limit: pending_limit.max(1),
                cancelled: false,
            }),
            progress: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Whether the merge side gave up (workers should stop exploring).
    pub(crate) fn is_cancelled(&self) -> bool {
        lock_unpoisoned(&self.gather).cancelled
    }

    /// Marks the gather cancelled and releases every blocked worker.
    pub(crate) fn cancel(&self) {
        let mut gather = lock_unpoisoned(&self.gather);
        gather.cancelled = true;
        drop(gather);
        self.space.notify_all();
        self.progress.notify_all();
    }

    /// Buffers one owned emission from `shard` and publishes the shard's
    /// new emission lower bound. Blocks while the shard's buffer is full;
    /// returns `false` if the gather was cancelled (the worker should stop).
    // lint: wait-loop
    pub(crate) fn push_emission(
        &self,
        shard: usize,
        emission: RankedQuery,
        bound: Option<f64>,
    ) -> bool {
        let mut gather = lock_unpoisoned(&self.gather);
        while gather.shards[shard].pending.len() >= gather.pending_limit && !gather.cancelled {
            gather = self.space.wait(gather).unwrap_or_else(|e| e.into_inner());
        }
        if gather.cancelled {
            return false;
        }
        gather.shards[shard].pending.push_back(emission);
        gather.shards[shard].bound = bound;
        drop(gather);
        self.progress.notify_one();
        true
    }

    /// Publishes `shard`'s new emission lower bound after a pop that owned
    /// nothing (the bound still rose — the merge gate may now open).
    /// Returns `false` if the gather was cancelled.
    pub(crate) fn update_bound(&self, shard: usize, bound: Option<f64>) -> bool {
        let mut gather = lock_unpoisoned(&self.gather);
        if gather.cancelled {
            return false;
        }
        gather.shards[shard].bound = bound;
        drop(gather);
        self.progress.notify_one();
        true
    }

    /// Marks `shard`'s session finished (its bound becomes infinite).
    /// An `aborted` shard fails the whole request with
    /// [`ServeError::DeadlineExceeded`].
    pub(crate) fn finish(&self, shard: usize, aborted: bool) {
        let mut gather = lock_unpoisoned(&self.gather);
        gather.shards[shard].done = true;
        gather.shards[shard].aborted = aborted;
        gather.shards[shard].bound = None;
        drop(gather);
        // Seeded mutation (c): dropping this notify strands a merging
        // coordinator that blocked before the last shard finished — the
        // model checker must report it as a lost wakeup
        // (`tests/model_mutations.rs`).
        #[cfg(not(all(kwsearch_model, kwsearch_model_mutation)))]
        self.progress.notify_one();
    }

    /// The streaming, rank-correct merge: releases the cheapest buffered
    /// emission as soon as every other shard provably cannot emit anything
    /// cheaper (its buffered head is costlier, or its published bound
    /// strictly exceeds the candidate's cost, or it is finished). Emissions
    /// are appended to `merged` in global rank order; returns the number
    /// released before the last shard finished (the early-emission count).
    ///
    /// When `deadline` is set the merge enforces it independently of shard
    /// progress: the wait times out at the absolute deadline and the
    /// request fails with [`ServeError::DeadlineExceeded`] (carrying the
    /// original `deadline_budget`) even if every worker is blocked.
    ///
    /// Correctness: every shard session explores the identical augmented
    /// graph, so the per-shard streams are the *same* global stream
    /// filtered by ownership, with non-decreasing costs. If some shard
    /// still owed an emission cheaper than (or tied with, at a lower rank
    /// than) the candidate, that emission would either be buffered (its
    /// shard's head would have won the min) or still unpushed — in which
    /// case the shard's bound is at most the candidate's cost and the gate
    /// stays closed. Hence the released sequence is exactly the global
    /// rank order, debug-asserted dense below.
    // lint: wait-loop
    // lint: hot-path
    pub(crate) fn merge_certified(
        &self,
        k: usize,
        deadline: Option<Instant>,
        deadline_budget: Duration,
        merged: &mut Vec<RankedQuery>,
    ) -> Result<usize, ServeError> {
        let mut early = 0usize;
        let mut gather = lock_unpoisoned(&self.gather);
        loop {
            let expired = deadline.is_some_and(|deadline| Instant::now() >= deadline);
            if expired || gather.shards.iter().any(|s| s.aborted) {
                gather.cancelled = true;
                drop(gather);
                self.space.notify_all();
                return Err(ServeError::DeadlineExceeded {
                    deadline: deadline_budget,
                });
            }
            // The cheapest buffered head, ties broken toward the lower
            // global rank (ranks are dense, so ties are always resolvable).
            let mut best: Option<(usize, f64, usize)> = None;
            for (i, sh) in gather.shards.iter().enumerate() {
                if let Some(head) = sh.pending.front() {
                    let wins = match best {
                        None => true,
                        Some((_, cost, rank)) => {
                            head.cost < cost || (head.cost == cost && head.rank < rank)
                        }
                    };
                    if wins {
                        best = Some((i, head.cost, head.rank));
                    }
                }
            }
            if let Some((winner, cost, _)) = best {
                let gate_open = gather.shards.iter().enumerate().all(|(i, sh)| {
                    i == winner
                        || !sh.pending.is_empty()
                        || match sh.bound {
                            None => true,
                            Some(bound) => bound > cost,
                        }
                });
                if gate_open {
                    let Some(emission) = gather.shards[winner].pending.pop_front() else {
                        unreachable!("the winner was chosen for its non-empty buffer")
                    };
                    debug_assert_eq!(
                        emission.rank,
                        merged.len() + 1,
                        "the merged stream must be the dense global rank order"
                    );
                    if !gather.shards.iter().all(|s| s.done) {
                        early += 1;
                    }
                    merged.push(emission);
                    // The `space` waiters have *distinct* predicates — each
                    // watches its own shard's buffer — and this pop freed
                    // exactly one shard's slot, so wake them all: a
                    // `notify_one` here could pick a worker whose buffer is
                    // still full (it re-waits) while the freed shard's
                    // worker sleeps forever behind its stale bound, hanging
                    // the merge. Waiters number at most `shard_count`, so
                    // the broadcast is cheap.
                    self.space.notify_all();
                    if merged.len() >= k {
                        gather.cancelled = true;
                        drop(gather);
                        self.space.notify_all();
                        return Ok(early);
                    }
                    continue;
                }
            } else if gather.shards.iter().all(|s| s.done) {
                return Ok(early);
            }
            gather = match deadline {
                // The merge enforces the deadline itself: the wait times
                // out at the request's absolute deadline, so the expiry
                // check at the loop top runs even when no worker ever
                // signals progress again.
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    self.progress
                        .wait_timeout(gather, timeout)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => self
                    .progress
                    .wait(gather)
                    .unwrap_or_else(|e| e.into_inner()),
            };
        }
    }
}

/// Runs one scattered shard job to completion against `prepared`: a full
/// session over the merged global matches, pushing only the emissions this
/// shard owns and publishing the emission lower bound after every pop.
pub(crate) fn run_shard_job(prepared: &PreparedGraph, job: ShardJob) {
    if job.gather.is_cancelled() {
        job.gather.finish(job.shard_id, false);
        return;
    }
    if job
        .deadline
        .is_some_and(|deadline| Instant::now() >= deadline)
    {
        // Expired while queued: don't start a doomed exploration.
        job.gather.finish(job.shard_id, true);
        return;
    }
    let mut session =
        SearchSession::start_with_matches(prepared, job.report, &job.matches, job.config);
    session.set_deadline(job.deadline);
    session.set_cancel(job.cancel.clone());
    loop {
        match session.next_query() {
            Some(emission) => {
                let bound = session.emission_lower_bound();
                let canonical = emission.query.canonicalized().to_string();
                let owned =
                    fnv1a64(canonical.as_bytes()) % job.shard_count as u64 == job.shard_id as u64;
                let live = if owned {
                    job.gather.push_emission(job.shard_id, emission, bound)
                } else {
                    job.gather.update_bound(job.shard_id, bound)
                };
                if !live {
                    job.gather.finish(job.shard_id, false);
                    return;
                }
            }
            None => {
                job.gather.finish(job.shard_id, session.aborted());
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

struct CoordinatorState {
    inflight: usize,
    stats: ShardedStats,
}

/// A scatter-gather serving front over partitioned [`PreparedGraph`]s —
/// see the [module docs](crate::shard) for the request lifecycle and the
/// [`crate::shard`] docs for the correctness argument.
///
/// [`Self::search`] runs synchronously on the caller's thread (the merge
/// *is* the response stream); shard explorations run on the service's
/// per-shard workers. The service is `Sync`: clones of one
/// `Arc<ShardedService>` can search from many threads concurrently,
/// subject to admission control.
pub struct ShardedService {
    shards: Vec<Arc<PreparedGraph>>,
    queues: Vec<Arc<ShardQueue>>,
    state: Mutex<CoordinatorState>,
    default_config: SearchConfig,
    options: ShardedServiceOptions,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Decrements the in-flight count however the request leaves `search`.
struct InflightGuard<'s> {
    service: &'s ShardedService,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut state = lock_unpoisoned(&self.service.state);
        state.inflight -= 1;
    }
}

impl ShardedService {
    /// Starts the service over already-prepared shards (one
    /// [`PreparedGraph`] per shard, from
    /// [`PartitionPlan::prepare_shards`](crate::shard::PartitionPlan::prepare_shards)
    /// or [`load_shards`](crate::shard::load_shards)), spawning
    /// `options.workers_per_shard` threads per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn start(
        shards: Vec<PreparedGraph>,
        default_config: SearchConfig,
        options: ShardedServiceOptions,
    ) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded service needs at least one shard"
        );
        let shards: Vec<Arc<PreparedGraph>> = shards.into_iter().map(Arc::new).collect();
        let queues: Vec<Arc<ShardQueue>> = (0..shards.len())
            .map(|_| Arc::new(ShardQueue::new()))
            .collect();
        let mut workers = Vec::new();
        for (shard_id, (prepared, queue)) in shards.iter().zip(&queues).enumerate() {
            for worker in 0..options.workers_per_shard.max(1) {
                let prepared = Arc::clone(prepared);
                let queue = Arc::clone(queue);
                let handle = std::thread::Builder::new()
                    .name(format!("kwsearch-shard-{shard_id}-{worker}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            run_shard_job(&prepared, job);
                        }
                    })
                    // lint: allow(no-unwrap, reason = "thread spawn failure at service start is unrecoverable resource exhaustion")
                    .expect("failed to spawn shard worker");
                workers.push(handle);
            }
        }
        Self {
            shards,
            queues,
            state: Mutex::new(CoordinatorState {
                inflight: 0,
                stats: ShardedStats::default(),
            }),
            default_config,
            options,
            workers,
        }
    }

    /// Convenience: partition `graph` into `shard_count` shards, prepare
    /// them with default keyword indexing, and start the service.
    pub fn over(
        graph: &kwsearch_rdf::DataGraph,
        shard_count: usize,
        default_config: SearchConfig,
    ) -> Self {
        let plan = crate::shard::partition(graph, shard_count);
        let shards = plan.prepare_shards(graph, Default::default());
        Self::start(shards, default_config, ShardedServiceOptions::default())
    }

    /// Number of shards the service scatters over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard preparations, indexed by shard id.
    pub fn shards(&self) -> &[Arc<PreparedGraph>] {
        &self.shards
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ShardedStats {
        lock_unpoisoned(&self.state).stats.clone()
    }

    /// Serves one request: scatter, streaming merge, optional sharded
    /// answer phase — synchronously on the caller's thread. See the
    /// [module docs](crate::shard) for the lifecycle and failure modes.
    pub fn search(&self, request: SearchRequest) -> Result<ShardedOutcome, ServeError> {
        let submitted = Instant::now();
        let deadline = request.deadline.map(|budget| submitted + budget);
        let deadline_budget = request.deadline.unwrap_or(Duration::ZERO);

        // 1. Admission.
        {
            let mut state = lock_unpoisoned(&self.state);
            if state.inflight >= self.options.max_inflight {
                state.stats.requests_rejected += 1;
                return Err(ServeError::Rejected {
                    queue_capacity: self.options.max_inflight,
                });
            }
            state.inflight += 1;
            state.stats.requests_admitted += 1;
        }
        let _inflight = InflightGuard { service: self };

        // 2. Phase-1 scatter: per-shard lookups, merged to the global
        // matches (exact — see `crate::shard::matches`).
        let scatter_start = Instant::now();
        let config = request
            .config
            .clone()
            .unwrap_or_else(|| self.default_config.clone());
        let per_shard: Vec<Vec<Vec<ElementMatch>>> = self
            .shards
            .iter()
            .map(|shard| shard.keyword_index().lookup_all(&request.keywords))
            .collect();
        let max_matches = self.shards[0]
            .keyword_index()
            .config()
            .max_matches_per_keyword;
        let merged_matches = merge_keyword_matches(&per_shard, max_matches);
        let report: Vec<KeywordMatch> = request
            .keywords
            .iter()
            .zip(&merged_matches)
            .enumerate()
            .map(|(position, (keyword, matches))| KeywordMatch {
                position,
                keyword: keyword.clone(),
                element_matches: matches.len(),
            })
            .collect();
        if !report.is_empty() && report.iter().all(|k| !k.is_matched()) {
            return Err(ServeError::Search(SearchError::AllKeywordsUnmatched {
                keywords: report,
            }));
        }
        let matches: Arc<Vec<Vec<ElementMatch>>> = Arc::new(
            merged_matches
                .into_iter()
                .filter(|m| !m.is_empty())
                .collect(),
        );

        // 3. Phase-2 scatter, atomic with respect to shutdown: the jobs are
        // pushed while the coordinator's `state` lock is held, so queues
        // observed open stay open for the whole scatter.
        let gather = Arc::new(GatherState::new(
            self.shards.len(),
            self.options.pending_limit,
        ));
        let cancel = CancelToken::new();
        {
            let mut state = lock_unpoisoned(&self.state);
            for (shard_id, queue) in self.queues.iter().enumerate() {
                // lint: allow(lock-discipline, reason = "documented order: coordinator state before every shard queue, making the scatter atomic against shutdown; shard_state never acquires state")
                let mut shard_state = lock_unpoisoned(&queue.shard_state);
                if shard_state.closed || shard_state.jobs.len() >= self.options.queue_capacity {
                    drop(shard_state);
                    state.stats.requests_rejected += 1;
                    drop(state);
                    // Workers already scattered to will bail on the
                    // cancelled gather.
                    gather.cancel();
                    return Err(ServeError::Rejected {
                        queue_capacity: self.options.queue_capacity,
                    });
                }
                shard_state.jobs.push_back(ShardJob {
                    gather: Arc::clone(&gather),
                    shard_id,
                    shard_count: self.shards.len(),
                    matches: Arc::clone(&matches),
                    report: report.clone(),
                    config: config.clone(),
                    deadline,
                    cancel: cancel.clone(),
                });
                drop(shard_state);
                queue.available.notify_one();
            }
        }
        let scatter_time = scatter_start.elapsed();

        // 4. The streaming merge, on the caller's thread.
        let merge_start = Instant::now();
        let mut queries = Vec::with_capacity(config.k);
        let merge_result =
            gather.merge_certified(config.k, deadline, deadline_budget, &mut queries);
        // Whatever happened, release any still-blocked workers.
        gather.cancel();
        cancel.cancel();
        let merge_time = merge_start.elapsed();

        let early_emissions = match merge_result {
            Ok(early) => early,
            Err(error) => {
                let mut state = lock_unpoisoned(&self.state);
                if matches!(error, ServeError::DeadlineExceeded { .. }) {
                    state.stats.requests_deadline_exceeded += 1;
                }
                return Err(error);
            }
        };
        {
            let mut state = lock_unpoisoned(&self.state);
            state.stats.merged_emissions += queries.len() as u64;
            state.stats.early_emissions += early_emissions as u64;
        }

        // 5. The sharded answer phase, if asked for. The scatter token was
        // burned above to release blocked workers, so the phase is driven by
        // the request deadline (plus its own token for embedders that want
        // out-of-band aborts — none here).
        let answer_phase = request.min_answers.map(|min_answers| {
            answer_queries_sharded(&self.shards, &queries, min_answers, deadline, None)
        });

        Ok(ShardedOutcome {
            queries,
            keywords: report,
            answer_phase,
            shard_count: self.shards.len(),
            scatter_time,
            merge_time,
            early_emissions,
        })
    }

    /// Shuts the service down: closes every shard queue, drains queued
    /// jobs and joins the workers. Dropping the service does the same.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        for queue in &self.queues {
            queue.close();
        }
        for handle in self.workers.drain(..) {
            // A worker panic is a bug; surface it like `SearchService` does.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards.len())
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// The sharded answer phase
// ---------------------------------------------------------------------

/// Evaluates `queries` in rank order across the shards until at least
/// `min_answers` answers exist — the scatter-gather analogue of
/// [`PreparedGraph::answer_queries`].
///
/// Row order differs from the unsharded streaming evaluator (per-group
/// unions are globally sorted), but the row *sets* are exact and the whole
/// phase is deterministic.
///
/// `deadline` and `cancel` bound the phase: both are polled per processed
/// query and per emitted cross-product row (see [`evaluate_sharded`]), so an
/// expired request cannot sit inside a huge join. A truncated phase reports
/// `truncated = true`; the rows already emitted are exact.
pub(crate) fn answer_queries_sharded(
    shards: &[Arc<PreparedGraph>],
    queries: &[RankedQuery],
    min_answers: usize,
    deadline: Option<Instant>,
    cancel: Option<&CancelToken>,
) -> AnswerPhase {
    let start = Instant::now();
    let expired = || {
        deadline.is_some_and(|d| Instant::now() >= d) || cancel.is_some_and(|c| c.is_cancelled())
    };
    let mut answers = Vec::new();
    let mut total = 0usize;
    let mut queries_processed = 0usize;
    let mut truncated = false;
    for ranked in queries {
        if expired() {
            truncated = true;
            break;
        }
        queries_processed += 1;
        let (set, cut) = evaluate_sharded(
            shards,
            &ranked.query,
            min_answers.saturating_sub(total).max(1),
            &expired,
        );
        total += set.len();
        answers.push(set);
        if cut {
            truncated = true;
            break;
        }
        if total >= min_answers {
            break;
        }
    }
    AnswerPhase {
        answers,
        queries_processed,
        answer_time: start.elapsed(),
        truncated,
    }
}

/// Evaluates one conjunctive query across edge-disjoint shards, exactly.
///
/// The generated queries (see [`crate::query_map`]) put variables only in
/// entity and value positions, so the atoms of each variable-connected
/// group bind entirely within one connectivity component — which the
/// partitioner placed on exactly one shard. Hence: evaluate each group on
/// every shard, union the (shard-disjoint) row sets, and cross-product the
/// independent groups. Constant-only atoms (`subclass` schema constraints)
/// are boolean guards, checked against the replicated schema edges.
/// `expired` is the caller's deadline/cancellation poll; it is consulted
/// between per-shard group evaluations and before every emitted
/// cross-product row, so the odometer materialization — whose output size is
/// bounded only by `limit` — aborts within one row of the signal. Returns
/// the (exact, possibly short) answer set plus whether the evaluation was
/// cut off.
fn evaluate_sharded(
    shards: &[Arc<PreparedGraph>],
    query: &ConjunctiveQuery,
    limit: usize,
    expired: &dyn Fn() -> bool,
) -> (AnswerSet, bool) {
    let variables = query.effective_distinguished();

    // Split atoms into constant-only guards and variable-connected groups.
    let atoms = query.atoms();
    let mut group_of_var: BTreeMap<&str, usize> = BTreeMap::new();
    let mut parent: Vec<usize> = (0..atoms.len()).collect();
    fn find(parent: &mut [usize], mut a: usize) -> usize {
        while parent[a] != a {
            parent[a] = parent[parent[a]];
            a = parent[a];
        }
        a
    }
    let mut guards = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        let vars = atom.variables();
        if vars.is_empty() {
            guards.push(atom);
            continue;
        }
        for var in vars {
            match group_of_var.get(var) {
                Some(&other) => {
                    let a = find(&mut parent, i);
                    let b = find(&mut parent, other);
                    if a != b {
                        parent[a.max(b)] = a.min(b);
                    }
                }
                None => {
                    group_of_var.insert(var, i);
                }
            }
        }
    }

    // Constant-only guards: the query is unsatisfiable unless every guard
    // edge exists somewhere (subclass edges are replicated, so "somewhere"
    // is every shard — but check them all to stay general).
    for guard in &guards {
        let holds = shards
            .iter()
            .any(|shard| constant_atom_holds(shard.graph(), guard));
        if !holds {
            return (AnswerSet::empty(variables), false);
        }
    }

    // Group atoms by union-find root, in first-atom order (deterministic).
    let mut groups: BTreeMap<usize, Vec<Atom>> = BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        if atom.variables().is_empty() {
            continue;
        }
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(atom.clone());
    }

    // Evaluate each group on every shard; union the shard-disjoint rows.
    let mut group_results: Vec<(Vec<String>, Vec<Vec<VertexId>>)> = Vec::new();
    for group_atoms in groups.into_values() {
        let mut sub = ConjunctiveQuery::new();
        for atom in group_atoms {
            sub.add_atom(atom);
        }
        sub.distinguish_all();
        let sub_vars = sub.effective_distinguished();
        let mut rows: BTreeSet<Vec<VertexId>> = BTreeSet::new();
        for shard in shards {
            // A truncated group union would make the cross product below
            // silently incomplete-but-plausible; give back nothing instead.
            if expired() {
                return (AnswerSet::empty(variables), true);
            }
            if let Ok(set) = Evaluator::with_borrowed_store(shard.graph(), shard.store())
                .evaluate_with_limit(&sub, Some(limit))
            {
                rows.extend(set.rows().iter().cloned());
            }
        }
        if rows.is_empty() {
            return (AnswerSet::empty(variables), false);
        }
        group_results.push((sub_vars, rows.into_iter().collect()));
    }

    if group_results.is_empty() {
        // Guards only (all satisfied) — a single empty binding, projected
        // onto zero variables.
        return (AnswerSet::new(variables, vec![Vec::new()]), false);
    }

    // Cross-product the groups into the query's projection order.
    let column: BTreeMap<&str, (usize, usize)> = group_results
        .iter()
        .enumerate()
        .flat_map(|(g, (vars, _))| {
            vars.iter()
                .enumerate()
                .map(move |(c, var)| (var.as_str(), (g, c)))
        })
        .collect();
    let mut rows: Vec<Vec<VertexId>> = Vec::new();
    let mut cursor = vec![0usize; group_results.len()];
    'product: loop {
        // One poll per emitted row: the cross product is the only place in
        // the answer phase whose size is not bounded by per-shard evaluator
        // limits, so an expired deadline must be able to stop it mid-join.
        if expired() {
            return (AnswerSet::new(variables, rows), true);
        }
        let row: Vec<VertexId> = variables
            .iter()
            .filter_map(|var| {
                column
                    .get(var.as_str())
                    .map(|&(g, c)| group_results[g].1[cursor[g]][c])
            })
            .collect();
        rows.push(row);
        if rows.len() >= limit {
            break;
        }
        // Odometer increment over the group result sets.
        for g in (0..cursor.len()).rev() {
            cursor[g] += 1;
            if cursor[g] < group_results[g].1.len() {
                continue 'product;
            }
            cursor[g] = 0;
        }
        break;
    }
    (AnswerSet::new(variables, rows), false)
}

/// Whether a constant-only atom holds on `graph` — an edge with the
/// atom's predicate between the named vertices exists.
fn constant_atom_holds(graph: &kwsearch_rdf::DataGraph, atom: &Atom) -> bool {
    let Some(subject) = atom.subject.as_constant() else {
        return false;
    };
    let Some(object) = atom.object.as_constant() else {
        return false;
    };
    let labels = graph.edge_labels_named(&atom.predicate);
    let Some(from) = lookup_vertex(graph, subject) else {
        return false;
    };
    let Some(to) = lookup_vertex(graph, object) else {
        return false;
    };
    graph.out_edges(from).iter().any(|&e| {
        let edge = graph.edge(e);
        edge.to == to && labels.contains(&edge.label)
    })
}

/// Resolves a constant to a vertex: class, then entity, then value.
fn lookup_vertex(graph: &kwsearch_rdf::DataGraph, name: &str) -> Option<VertexId> {
    graph
        .class(name)
        .or_else(|| graph.entity(name))
        .or_else(|| graph.value(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchConfig;
    use crate::scoring::ScoringFunction;
    use crate::shard::partition;
    use kwsearch_rdf::fixtures::figure1_graph;

    fn service_over(shard_count: usize, config: &SearchConfig) -> ShardedService {
        let graph = figure1_graph();
        let plan = partition(&graph, shard_count);
        let shards = plan.prepare_shards(&graph, Default::default());
        ShardedService::start(shards, config.clone(), ShardedServiceOptions::default())
    }

    fn unsharded_stream(config: &SearchConfig, keywords: &[&str]) -> Vec<RankedQuery> {
        let prepared = PreparedGraph::index(figure1_graph());
        let mut session = prepared
            .session(keywords, config.clone())
            .expect("the running example always matches");
        let mut out = Vec::new();
        while let Some(q) = session.next_query() {
            out.push(q);
        }
        out
    }

    /// The acceptance bar of the sharded subsystem: the merged stream is
    /// bit-identical to the unsharded session for every shard count and
    /// every scoring function — same ranks, same cost bits, same canonical
    /// queries, same subgraphs.
    #[test]
    fn sharded_merge_is_bit_identical_to_the_unsharded_stream() {
        let keywords = ["2006", "cimiano", "aifb"];
        for scoring in [
            ScoringFunction::PathLength,
            ScoringFunction::Popularity,
            ScoringFunction::PopularityAndMatch,
        ] {
            let config = SearchConfig {
                scoring,
                ..SearchConfig::default()
            };
            let want = unsharded_stream(&config, &keywords);
            assert!(!want.is_empty(), "the running example has results");
            for shard_count in [1usize, 2, 3, 7] {
                let service = service_over(shard_count, &config);
                let outcome = service
                    .search(SearchRequest::new(keywords.iter()))
                    .expect("the running example always matches");
                assert_eq!(
                    outcome.queries.len(),
                    want.len(),
                    "{scoring:?} diverges at {shard_count} shards"
                );
                for (got, want) in outcome.queries.iter().zip(&want) {
                    assert_eq!(got.rank, want.rank);
                    assert_eq!(got.cost.to_bits(), want.cost.to_bits());
                    assert_eq!(
                        got.query.canonicalized().to_string(),
                        want.query.canonicalized().to_string()
                    );
                    assert_eq!(got.subgraph, want.subgraph);
                }
                assert_eq!(outcome.shard_count, shard_count);
            }
        }
    }

    /// Ownership striping spreads emissions across shards: at more than one
    /// shard, no single shard owns the whole stream (on the running example
    /// the canonical hashes do split), so the merge really is cross-shard.
    #[test]
    fn emissions_are_owned_by_more_than_one_shard() {
        let config = SearchConfig::default();
        let want = unsharded_stream(&config, &["2006", "cimiano", "aifb"]);
        let owners: std::collections::BTreeSet<u64> = want
            .iter()
            .map(|q| fnv1a64(q.query.canonicalized().to_string().as_bytes()) % 2)
            .collect();
        assert!(
            owners.len() > 1,
            "the running example's stream must stripe across 2 shards for \
             the merge tests to exercise a real rendezvous"
        );
    }

    #[test]
    fn admission_control_rejects_beyond_the_inflight_cap() {
        let graph = figure1_graph();
        let plan = partition(&graph, 2);
        let shards = plan.prepare_shards(&graph, Default::default());
        let service = ShardedService::start(
            shards,
            SearchConfig::default(),
            ShardedServiceOptions {
                max_inflight: 0,
                ..ShardedServiceOptions::default()
            },
        );
        let err = service
            .search(SearchRequest::new(["cimiano"]))
            .expect_err("a zero in-flight budget admits nothing");
        assert!(matches!(err, ServeError::Rejected { queue_capacity: 0 }));
        assert_eq!(service.stats().requests_rejected, 1);
        assert_eq!(service.stats().requests_admitted, 0);
    }

    /// Backpressure regression: with a one-slot pending buffer the workers
    /// block between emissions and every pop must wake the freed shard's
    /// worker (the merge broadcasts on `space`). A `notify_one` there can
    /// strand the freed shard's worker behind its stale bound and hang the
    /// merge — the deterministic conviction lives in the model scenario
    /// `shard_backpressure_full_buffers`; this exercises the real service.
    #[test]
    fn a_one_slot_pending_buffer_still_merges_the_full_stream() {
        let keywords = ["2006", "cimiano", "aifb"];
        let config = SearchConfig::default();
        let want = unsharded_stream(&config, &keywords);
        let graph = figure1_graph();
        let plan = partition(&graph, 2);
        let shards = plan.prepare_shards(&graph, Default::default());
        let service = ShardedService::start(
            shards,
            config,
            ShardedServiceOptions {
                pending_limit: 1,
                ..ShardedServiceOptions::default()
            },
        );
        let outcome = service
            .search(SearchRequest::new(keywords.iter()))
            .expect("the running example always matches");
        assert_eq!(outcome.queries.len(), want.len());
        for (got, want) in outcome.queries.iter().zip(&want) {
            assert_eq!(got.rank, want.rank);
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
        }
    }

    /// Cancellation regression: the answer phase used to materialize its
    /// odometer cross-product without ever polling the deadline or the
    /// cancel token, so an expired request could sit inside a huge join.
    /// Both signals must now truncate the phase (flagged, exact prefix)
    /// instead of running it to completion.
    #[test]
    fn the_answer_phase_polls_deadline_and_cancellation() {
        let graph = figure1_graph();
        let plan = partition(&graph, 2);
        let shards: Vec<Arc<PreparedGraph>> = plan
            .prepare_shards(&graph, Default::default())
            .into_iter()
            .map(Arc::new)
            .collect();
        let config = SearchConfig::default();
        let queries = unsharded_stream(&config, &["publications"]);
        assert!(!queries.is_empty());

        // Control arm: unbounded, the phase completes and finds answers.
        let full = answer_queries_sharded(&shards, &queries, 2, None, None);
        assert!(!full.truncated);
        assert!(full.total_answers() >= 2, "two publications exist");

        // A tiny (already expired) deadline truncates before any join work.
        let expired = Instant::now() - Duration::from_millis(1);
        let phase = answer_queries_sharded(&shards, &queries, 2, Some(expired), None);
        assert!(phase.truncated, "an expired deadline must cut the phase");
        assert_eq!(phase.total_answers(), 0);
        assert_eq!(phase.queries_processed, 0);

        // A cancelled token truncates identically.
        let token = CancelToken::new();
        token.cancel();
        let phase = answer_queries_sharded(&shards, &queries, 2, None, Some(&token));
        assert!(phase.truncated, "a cancelled token must cut the phase");
        assert_eq!(phase.total_answers(), 0);
    }

    /// The merge loop enforces the request deadline on its own: a shard
    /// that never reports progress (blocked, lost, stuck) cannot hold the
    /// merge past the deadline — the coordinator's timed wait fires and
    /// fails the request instead of hanging forever.
    #[test]
    fn the_merge_wait_enforces_the_deadline_without_worker_progress() {
        let gather = GatherState::new(1, 4);
        let budget = Duration::from_millis(20);
        let deadline = Instant::now() + budget;
        let mut merged = Vec::new();
        let err = gather
            .merge_certified(10, Some(deadline), budget, &mut merged)
            .expect_err("a silent shard must not outlive the deadline");
        assert!(matches!(err, ServeError::DeadlineExceeded { deadline } if deadline == budget));
        assert!(merged.is_empty(), "nothing was certified, nothing leaks");
        assert!(
            gather.is_cancelled(),
            "an expired merge releases its workers"
        );
    }

    #[test]
    fn an_expired_deadline_fails_the_request_with_deadline_exceeded() {
        let config = SearchConfig::default();
        let service = service_over(2, &config);
        let err = service
            .search(SearchRequest::new(["2006", "cimiano", "aifb"]).with_deadline(Duration::ZERO))
            .expect_err("a zero deadline cannot be met");
        assert!(matches!(
            err,
            ServeError::DeadlineExceeded {
                deadline: Duration::ZERO
            }
        ));
        assert_eq!(service.stats().requests_deadline_exceeded, 1);
        // The service survives the abort: the next request succeeds.
        let outcome = service
            .search(SearchRequest::new(["2006", "cimiano", "aifb"]))
            .expect("the pool recovered");
        assert!(!outcome.queries.is_empty());
    }

    #[test]
    fn unmatched_keywords_fail_with_the_typed_search_error() {
        let config = SearchConfig::default();
        let service = service_over(2, &config);
        let err = service
            .search(SearchRequest::new(["zzz-no-such-keyword"]))
            .expect_err("nothing matches");
        assert!(matches!(
            err,
            ServeError::Search(SearchError::AllKeywordsUnmatched { .. })
        ));
    }

    /// The sharded answer phase returns the same answer *sets* as the
    /// unsharded evaluator for every ranked query it processes (row order
    /// within a set may differ; the sets may not).
    #[test]
    fn the_sharded_answer_phase_matches_the_unsharded_row_sets() {
        let keywords = ["2006", "cimiano", "aifb"];
        let config = SearchConfig::default();
        let service = service_over(3, &config);
        let outcome = service
            .search(SearchRequest::new(keywords.iter()).with_min_answers(3))
            .expect("the running example always matches");
        let phase = outcome.answer_phase.expect("min_answers requests a phase");
        assert!(phase.total_answers() >= 3 || phase.queries_processed == outcome.queries.len());

        let prepared = PreparedGraph::index(figure1_graph());
        for (set, ranked) in phase.answers.iter().zip(&outcome.queries) {
            let want = prepared
                .answers(&ranked.query, None)
                .expect("the unsharded evaluator answers every emitted query");
            let mut got_rows: Vec<_> = set.rows().to_vec();
            let mut want_rows: Vec<_> = want.rows().to_vec();
            got_rows.sort();
            want_rows.sort();
            // The sharded phase caps each set at the still-missing count, so
            // it may hold fewer rows — but every row must be a real answer,
            // and an uncapped set must be exactly equal.
            if got_rows.len() == want_rows.len() {
                assert_eq!(got_rows, want_rows);
            } else {
                for row in &got_rows {
                    assert!(want_rows.contains(row), "sharded phase invented a row");
                }
            }
        }
    }

    #[test]
    fn stats_track_admissions_merges_and_early_emissions() {
        let config = SearchConfig::default();
        let service = service_over(2, &config);
        let outcome = service
            .search(SearchRequest::new(["2006", "cimiano", "aifb"]))
            .expect("the running example always matches");
        let stats = service.stats();
        assert_eq!(stats.requests_admitted, 1);
        assert_eq!(stats.merged_emissions, outcome.queries.len() as u64);
        assert_eq!(stats.early_emissions, outcome.early_emissions as u64);
        assert!(outcome.early_emit_ratio() >= 0.0 && outcome.early_emit_ratio() <= 1.0);
    }
}
