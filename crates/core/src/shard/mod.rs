//! Sharded scatter-gather serving: partitioned preparations and a
//! rank-correct streaming merge.
//!
//! # Architecture
//!
//! [`partition`] splits one data graph into `N` **edge-disjoint** shard
//! graphs over the original id space (entity/value connectivity components
//! stay whole; `subclass` schema edges are replicated), and
//! [`PartitionPlan::prepare_shards`] builds one [`PreparedGraph`] per
//! shard — each persistable as a standalone snapshot via
//! [`persist_shards`] / [`load_shards`]. A [`ShardedService`] then serves
//! keyword queries over the shards:
//!
//! - **scatter**: the keywords are looked up on every shard index and the
//!   per-shard lists merged into the exact global match lists (shards keep
//!   the full vertex/label tables, so per-shard lookups agree on elements,
//!   scores and order; only edge-derived payloads need the union —
//!   `matches`), then one exploration job per shard is enqueued;
//! - **gather**: every shard session explores the *same* augmented summary
//!   graph (a shared global summary plus the merged matches) and therefore
//!   produces the identical certified stream — but each shard **emits only
//!   the results it owns** (FNV-1a of the canonical query, modulo the
//!   shard count), so the emission work and the downstream answer work
//!   spread across the pool. The coordinator merges the per-shard streams,
//!   releasing an emission as soon as every other shard's *emission lower
//!   bound* certifies that nothing cheaper can still arrive — rank-correct
//!   results stream out before the slowest shard drains.
//!
//! Deliberate trade-off, stated honestly: the *exploration* itself is
//! replicated on every shard (it runs on the summary graph, which is
//! orders of magnitude smaller than the data); what shards scale out is
//! the keyword-index lookups, the per-emission ownership work, and the
//! answer phase, which evaluates each ranked query against the shard-local
//! triple stores (exact, because variable-connected atom groups bind
//! within one connectivity component — see `coordinator`).
//!
//! The merged stream is **bit-identical** to the unsharded
//! [`SearchSession`](crate::session::SearchSession) stream for every shard
//! count — pinned by golden tests and property tests across shard counts
//! {1, 2, 3, 7} and all three scoring functions.

pub(crate) mod coordinator;
mod matches;
mod partition;

pub use coordinator::{ShardedOutcome, ShardedService, ShardedServiceOptions, ShardedStats};
pub use partition::{load_shards, partition, persist_shards, PartitionPlan};

#[allow(unused_imports)] // referenced by the module docs
use crate::prepared::PreparedGraph;
