//! Deterministic, edge-disjoint partitioning of a data graph.
//!
//! The partitioner splits one [`DataGraph`] into `N` shard graphs over the
//! **same id space** (see [`DataGraph::edge_subset`]): every vertex, label
//! and interned symbol of the original graph remains valid — and means the
//! same thing — in every shard, so per-shard results are directly
//! comparable and mergeable without id translation.
//!
//! # Assignment rule
//!
//! 1. Entity and value vertices are grouped into **connected components**
//!    by a union-find over the Relation and Attribute edges (`type` edges
//!    do not merge components: routing every instance of a class through
//!    one shard would defeat balancing, and class vertices are present in
//!    every shard anyway).
//! 2. Every Relation, Attribute and `type` edge is assigned to the shard
//!    of its *subject's* component — components are atomic, so the edges
//!    incident to any entity (including all its `type` edges) land in one
//!    shard, which is what makes per-shard query evaluation exact for
//!    variable-connected atom groups (see [`crate::shard`]).
//! 3. `subclass` edges are **replicated** to every shard: they are schema,
//!    not data, and every shard needs the class hierarchy.
//! 4. Components are sorted (edge count descending, then minimum member
//!    vertex id ascending) and greedily placed on the currently lightest
//!    shard (ties break toward the lowest shard id) — a deterministic LPT
//!    bin packing, so the same graph always yields the same plan.
//!
//! The research prototype's hash partitioner lives in
//! `baselines/src/partition.rs`; this module is the engine-grade
//! replacement it points to.

use std::path::{Path, PathBuf};
use std::time::Instant;

use kwsearch_keyword_index::{Analyzer, KeywordIndex, KeywordIndexConfig, Thesaurus};
use kwsearch_rdf::snapshot::SnapshotError;
use kwsearch_rdf::{DataGraph, EdgeId, EdgeLabel, TripleStore};
use kwsearch_summary::SummaryGraph;

use crate::prepared::PreparedGraph;

/// Sentinel for edges replicated to every shard (`subclass`).
const REPLICATED: u32 = u32::MAX;

/// A deterministic edge-to-shard assignment for one data graph.
///
/// Built by [`partition`]; use [`Self::shard_graph`] /
/// [`Self::prepare_shards`] to materialize the shards.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    shard_count: usize,
    /// Per [`EdgeId`]: the owning shard, or [`REPLICATED`].
    assignment: Vec<u32>,
    /// Assigned (non-replicated) edges per shard.
    shard_edge_counts: Vec<usize>,
    replicated_edges: usize,
    component_count: usize,
}

/// Computes a deterministic [`PartitionPlan`] splitting `graph` into
/// `shard_count` edge-disjoint shards (plus replicated `subclass` edges).
/// A `shard_count` of zero is treated as one.
pub fn partition(graph: &DataGraph, shard_count: usize) -> PartitionPlan {
    PartitionPlan::new(graph, shard_count)
}

impl PartitionPlan {
    /// See [`partition`].
    pub fn new(graph: &DataGraph, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let labels: Vec<EdgeLabel> = graph.edge_labels().map(|(_, label)| label).collect();
        let n = graph.vertex_count();

        // 1. Union-find over Relation/Attribute edges.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                parent[v as usize] = parent[parent[v as usize] as usize]; // path halving
                v = parent[v as usize];
            }
            v
        }
        for e in graph.edges() {
            let edge = graph.edge(e);
            if matches!(
                labels[edge.label.index()],
                EdgeLabel::Relation(_) | EdgeLabel::Attribute(_)
            ) {
                let a = find(&mut parent, edge.from.index() as u32);
                let b = find(&mut parent, edge.to.index() as u32);
                if a != b {
                    // Deterministic union: the smaller root wins.
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi as usize] = lo;
                }
            }
        }

        // 2. Per-component edge counts and minimum member vertex ids.
        let mut component_edges: Vec<usize> = vec![0; n];
        let mut component_min: Vec<u32> = (0..n as u32).collect();
        let mut edge_root: Vec<u32> = Vec::with_capacity(graph.edge_count());
        for e in graph.edges() {
            let edge = graph.edge(e);
            if matches!(labels[edge.label.index()], EdgeLabel::SubClass) {
                edge_root.push(REPLICATED);
                continue;
            }
            let root = find(&mut parent, edge.from.index() as u32);
            component_edges[root as usize] += 1;
            edge_root.push(root);
        }
        for v in 0..n as u32 {
            let root = find(&mut parent, v);
            if v < component_min[root as usize] {
                component_min[root as usize] = v;
            }
        }

        // 3. Deterministic LPT placement of the non-empty components.
        let mut components: Vec<u32> = (0..n as u32)
            .filter(|&root| parent[root as usize] == root && component_edges[root as usize] > 0)
            .collect();
        components.sort_by_key(|&root| {
            (
                std::cmp::Reverse(component_edges[root as usize]),
                component_min[root as usize],
            )
        });
        let component_count = components.len();
        let mut shard_edge_counts = vec![0usize; shard_count];
        let mut shard_of_root: Vec<u32> = vec![0; n];
        for &root in &components {
            let lightest = shard_edge_counts
                .iter()
                .enumerate()
                .min_by_key(|&(id, &load)| (load, id))
                .map(|(id, _)| id)
                .unwrap_or(0);
            shard_of_root[root as usize] = lightest as u32;
            shard_edge_counts[lightest] += component_edges[root as usize];
        }

        // 4. Per-edge assignment.
        let mut replicated_edges = 0usize;
        let assignment: Vec<u32> = edge_root
            .into_iter()
            .map(|root| {
                if root == REPLICATED {
                    replicated_edges += 1;
                    REPLICATED
                } else {
                    shard_of_root[root as usize]
                }
            })
            .collect();

        Self {
            shard_count,
            assignment,
            shard_edge_counts,
            replicated_edges,
            component_count,
        }
    }

    /// Number of shards the plan splits the graph into.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The owning shard of `edge`, or `None` for a replicated (`subclass`)
    /// edge that every shard carries.
    pub fn shard_of(&self, edge: EdgeId) -> Option<usize> {
        match self.assignment[edge.index()] {
            REPLICATED => None,
            shard => Some(shard as usize),
        }
    }

    /// Assigned (non-replicated) edges per shard, indexed by shard id.
    pub fn shard_edge_counts(&self) -> &[usize] {
        &self.shard_edge_counts
    }

    /// Number of `subclass` edges replicated to every shard.
    pub fn replicated_edge_count(&self) -> usize {
        self.replicated_edges
    }

    /// Number of connected components that carried at least one edge.
    pub fn component_count(&self) -> usize {
        self.component_count
    }

    /// Materializes shard `shard` as a [`DataGraph`] over the original id
    /// space: its assigned edges plus every replicated edge.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()` or if `graph` is not the
    /// graph the plan was computed for (detected by edge-count mismatch).
    pub fn shard_graph(&self, graph: &DataGraph, shard: usize) -> DataGraph {
        assert!(shard < self.shard_count, "shard id out of range");
        assert_eq!(
            graph.edge_count(),
            self.assignment.len(),
            "plan was computed for a different graph"
        );
        let shard = shard as u32;
        graph.edge_subset(|e, _| {
            let owner = self.assignment[e.index()];
            owner == shard || owner == REPLICATED
        })
    }

    /// Builds one [`PreparedGraph`] per shard, ready for
    /// [`ShardedService::start`](crate::shard::ShardedService::start).
    ///
    /// Every shard preparation carries a clone of the **global** summary
    /// graph: the augmentation's structure depends only on the summary and
    /// the keyword matches, so sharing the summary is what makes every
    /// shard's exploration bit-identical to the unsharded one (see
    /// [`crate::shard`]). The keyword index and the triple store are built
    /// from the shard's own edges; the augmentation cache is disabled
    /// (shard sessions bypass it).
    pub fn prepare_shards(
        &self,
        graph: &DataGraph,
        keyword_config: KeywordIndexConfig,
    ) -> Vec<PreparedGraph> {
        let summary = SummaryGraph::build(graph);
        (0..self.shard_count)
            .map(|s| {
                let start = Instant::now();
                let shard_graph = self.shard_graph(graph, s);
                let keyword_index = KeywordIndex::build_with(
                    &shard_graph,
                    Analyzer::new(),
                    Thesaurus::builtin(),
                    keyword_config.clone(),
                );
                let store = TripleStore::build(&shard_graph);
                PreparedGraph::from_parts(
                    shard_graph,
                    keyword_index,
                    summary.clone(),
                    store,
                    0,
                    start.elapsed(),
                )
            })
            .collect()
    }
}

/// Name of the shard-set manifest written next to the snapshots.
const MANIFEST_FILE: &str = "shards.manifest";

/// First line of a version-1 manifest.
const MANIFEST_HEADER: &str = "kwsearch-shards v1";

/// The snapshot file name of shard `s`.
fn shard_file(s: usize) -> String {
    format!("shard-{s:03}.kws")
}

/// Saves every shard preparation as a disk snapshot (`shard-000.kws`,
/// `shard-001.kws`, …) under `dir`, creating the directory if needed.
/// Returns the written paths in shard order. Uses the [`crate::persist`]
/// format — each file round-trips through [`load_shards`] or
/// [`PreparedGraph::load_from_path`].
///
/// A `shards.manifest` recording the shard count is written **last**, as
/// the commit point: [`load_shards`] refuses a directory whose manifest is
/// missing or disagrees with the snapshots next to it, so a crash
/// mid-persist (or a deleted snapshot) fails loudly instead of silently
/// serving a subset of the data. Stale `shard-NNN.kws` files from a
/// previous, larger persist are removed so the directory always holds
/// exactly shards `0..len`.
pub fn persist_shards(shards: &[PreparedGraph], dir: &Path) -> Result<Vec<PathBuf>, SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let paths: Vec<PathBuf> = shards
        .iter()
        .enumerate()
        .map(|(s, shard)| {
            let path = dir.join(shard_file(s));
            shard.save_to_path(&path)?;
            Ok(path)
        })
        .collect::<Result<_, SnapshotError>>()?;
    let mut stale = shards.len();
    loop {
        let leftover = dir.join(shard_file(stale));
        if !leftover.exists() {
            break;
        }
        std::fs::remove_file(leftover)?;
        stale += 1;
    }
    std::fs::write(
        dir.join(MANIFEST_FILE),
        format!("{MANIFEST_HEADER}\nshard_count={}\n", shards.len()),
    )?;
    Ok(paths)
}

/// Loads the shard snapshots written by [`persist_shards`] from `dir`, in
/// shard order.
///
/// The directory's `shards.manifest` is the source of truth: loading fails
/// with [`SnapshotError::BadManifest`] when the manifest is absent (an
/// empty, foreign, or partially-persisted directory), when any of the
/// recorded `shard-NNN.kws` snapshots is missing, or when extra shard
/// files exist beyond the recorded count — a sharded service must start
/// over exactly the persisted shard set, never a plausible-looking subset.
pub fn load_shards(dir: &Path) -> Result<Vec<PreparedGraph>, SnapshotError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest = std::fs::read_to_string(&manifest_path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            SnapshotError::BadManifest {
                detail: format!(
                    "missing {} in {} — not a persisted shard set (or an interrupted persist)",
                    MANIFEST_FILE,
                    dir.display()
                ),
            }
        } else {
            SnapshotError::Io(e)
        }
    })?;
    let shard_count = parse_manifest(&manifest)?;
    let mut shards = Vec::with_capacity(shard_count);
    for s in 0..shard_count {
        let path = dir.join(shard_file(s));
        if !path.exists() {
            return Err(SnapshotError::BadManifest {
                detail: format!(
                    "manifest records {shard_count} shards but {} is missing",
                    shard_file(s)
                ),
            });
        }
        shards.push(PreparedGraph::load_from_path(&path)?);
    }
    if dir.join(shard_file(shard_count)).exists() {
        return Err(SnapshotError::BadManifest {
            detail: format!(
                "manifest records {shard_count} shards but {} also exists — \
                 stale or mixed shard sets in one directory",
                shard_file(shard_count)
            ),
        });
    }
    Ok(shards)
}

/// Parses a [`persist_shards`] manifest into its shard count.
fn parse_manifest(manifest: &str) -> Result<usize, SnapshotError> {
    let bad = |detail: String| SnapshotError::BadManifest { detail };
    let mut lines = manifest.lines();
    match lines.next() {
        Some(MANIFEST_HEADER) => {}
        other => {
            return Err(bad(format!(
                "unsupported manifest header {other:?} (this build reads \"{MANIFEST_HEADER}\")"
            )))
        }
    }
    let count_line = lines
        .next()
        .ok_or_else(|| bad("manifest is missing its shard_count line".to_string()))?;
    let count: usize = count_line
        .strip_prefix("shard_count=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(format!("malformed shard_count line {count_line:?}")))?;
    if count == 0 {
        return Err(bad("manifest records zero shards".to_string()));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::fixtures::figure1_graph;

    /// A unique, cleaned-up-on-success scratch directory per test.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kwsearch-shard-manifest-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn persisted(tag: &str, shard_count: usize) -> PathBuf {
        let graph = figure1_graph();
        let plan = partition(&graph, shard_count);
        let shards = plan.prepare_shards(&graph, Default::default());
        let dir = scratch(tag);
        persist_shards(&shards, &dir).expect("persisting shards");
        dir
    }

    #[test]
    fn persisted_shards_load_back_complete_and_in_order() {
        let dir = persisted("roundtrip", 3);
        let loaded = load_shards(&dir).expect("a freshly persisted set loads");
        assert_eq!(loaded.len(), 3, "the manifest pins the shard count");
        let graph = figure1_graph();
        let plan = partition(&graph, 3);
        for (s, shard) in loaded.iter().enumerate() {
            assert_eq!(
                shard.graph().edge_count(),
                plan.shard_graph(&graph, s).edge_count(),
                "shard {s} must come back in shard order"
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn a_directory_without_a_manifest_is_refused() {
        let dir = persisted("no-manifest", 2);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).expect("drop the manifest");
        let err = load_shards(&dir).expect_err("no manifest, no service");
        assert!(matches!(err, SnapshotError::BadManifest { .. }), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn an_empty_directory_is_refused_not_an_empty_service() {
        let dir = scratch("empty");
        std::fs::create_dir_all(&dir).expect("creating the scratch dir");
        let err = load_shards(&dir).expect_err("an empty dir is not a shard set");
        assert!(matches!(err, SnapshotError::BadManifest { .. }), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn a_deleted_snapshot_fails_the_load_instead_of_shrinking_it() {
        let dir = persisted("deleted", 3);
        std::fs::remove_file(dir.join(shard_file(1))).expect("drop a middle shard");
        let err = load_shards(&dir).expect_err("a missing shard must fail the set");
        assert!(
            matches!(&err, SnapshotError::BadManifest { detail } if detail.contains("shard-001")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn extra_shard_files_beyond_the_manifest_are_refused() {
        let dir = persisted("extra", 2);
        std::fs::write(dir.join(shard_file(2)), b"stale").expect("plant a stale shard");
        let err = load_shards(&dir).expect_err("a mixed shard set must fail");
        assert!(
            matches!(&err, SnapshotError::BadManifest { detail } if detail.contains("shard-002")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn re_persisting_fewer_shards_removes_the_stale_snapshots() {
        let dir = persisted("shrink", 3);
        let graph = figure1_graph();
        let shards = partition(&graph, 2).prepare_shards(&graph, Default::default());
        persist_shards(&shards, &dir).expect("re-persisting a smaller set");
        assert!(!dir.join(shard_file(2)).exists(), "stale shard removed");
        let loaded = load_shards(&dir).expect("the shrunk set loads cleanly");
        assert_eq!(loaded.len(), 2);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn a_tampered_manifest_is_refused() {
        let dir = persisted("tampered", 2);
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "kwsearch-shards v9\nshard_count=2\n",
        )
        .expect("rewrite the manifest");
        let err = load_shards(&dir).expect_err("unknown manifest versions are refused");
        assert!(matches!(err, SnapshotError::BadManifest { .. }), "{err}");
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "kwsearch-shards v1\nshard_count=0\n",
        )
        .expect("rewrite the manifest");
        let err = load_shards(&dir).expect_err("a zero-shard set is meaningless");
        assert!(matches!(err, SnapshotError::BadManifest { .. }), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
