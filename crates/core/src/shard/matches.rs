//! Exact reassembly of global keyword matches from per-shard lookups.
//!
//! Shard graphs keep the full vertex and label tables (see
//! [`kwsearch_rdf::DataGraph::edge_subset`]), so every shard's keyword
//! index carries the **identical vocabulary** — per-shard lookups return
//! the same elements with the same scores in the same order. The only
//! per-shard difference is the *edge-derived* neighbourhood payload: a
//! value's [`ValueConnection`]s come from its in-edges and an attribute's
//! class list from an edge scan, both of which see only the shard's edges.
//! Since the shards are edge-disjoint and the payload lists are kept in
//! canonical sorted order on both sides, a per-element union reassembles
//! the unsharded lookup **exactly** — this is the scatter half of the
//! sharded phase 1.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use kwsearch_keyword_index::{ElementRef, KeywordMatch, MatchedElement, ValueConnection};
use kwsearch_rdf::VertexId;

/// Merges per-shard `lookup_all` results (indexed `[shard][keyword]`) into
/// the global per-keyword match lists, bit-identical to an unsharded
/// lookup: per-element union of the neighbourhood payloads, then the
/// index's canonical ordering (score descending, element ref ascending)
/// and truncation.
pub(crate) fn merge_keyword_matches(
    per_shard: &[Vec<Vec<KeywordMatch>>],
    max_matches_per_keyword: usize,
) -> Vec<Vec<KeywordMatch>> {
    let keyword_count = per_shard.first().map_or(0, |shard| shard.len());
    (0..keyword_count)
        .map(|k| {
            let mut merged: BTreeMap<ElementRef, KeywordMatch> = BTreeMap::new();
            for shard in per_shard {
                for m in &shard[k] {
                    match merged.entry(m.element.element_ref()) {
                        Entry::Vacant(slot) => {
                            slot.insert(m.clone());
                        }
                        Entry::Occupied(mut slot) => merge_into(slot.get_mut(), m),
                    }
                }
            }
            let mut list: Vec<KeywordMatch> = merged.into_values().collect();
            list.sort_by(|a, b| {
                b.score
                    .total_cmp(&a.score)
                    .then_with(|| a.element.element_ref().cmp(&b.element.element_ref()))
            });
            list.truncate(max_matches_per_keyword);
            list
        })
        .collect()
}

/// Folds one shard's view of an element into the accumulated match:
/// union of class lists, OR of untyped flags, per-attribute union of value
/// connections. Scores are label-derived and therefore identical across
/// shards (debug-asserted).
fn merge_into(into: &mut KeywordMatch, from: &KeywordMatch) {
    debug_assert_eq!(
        into.score.to_bits(),
        from.score.to_bits(),
        "matching scores are label-derived and must agree across shards"
    );
    match (&mut into.element, &from.element) {
        (MatchedElement::Class { .. }, MatchedElement::Class { .. })
        | (MatchedElement::Relation { .. }, MatchedElement::Relation { .. }) => {}
        (
            MatchedElement::Attribute {
                classes,
                has_untyped_source,
                ..
            },
            MatchedElement::Attribute {
                classes: other_classes,
                has_untyped_source: other_untyped,
                ..
            },
        ) => {
            union_sorted(classes, other_classes);
            *has_untyped_source |= other_untyped;
        }
        (
            MatchedElement::Value { connections, .. },
            MatchedElement::Value {
                connections: other_connections,
                ..
            },
        ) => {
            for conn in other_connections {
                match connections
                    .iter_mut()
                    .find(|c| c.attribute == conn.attribute)
                {
                    Some(existing) => {
                        union_sorted(&mut existing.classes, &conn.classes);
                        existing.has_untyped_source |= conn.has_untyped_source;
                    }
                    None => connections.push(conn.clone()),
                }
            }
            connections.sort_by_key(|c: &ValueConnection| c.attribute);
        }
        _ => debug_assert!(false, "one element ref cannot map to two element kinds"),
    }
}

/// Merges the sorted, deduplicated `other` into the sorted, deduplicated
/// `into`, preserving both invariants.
fn union_sorted(into: &mut Vec<VertexId>, other: &[VertexId]) {
    into.extend_from_slice(other);
    into.sort_unstable();
    into.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_keyword_index::KeywordIndex;
    use kwsearch_rdf::fixtures::figure1_graph;

    use crate::shard::partition;

    /// The load-bearing fact of sharded phase 1: merged per-shard lookups
    /// equal the unsharded lookup bit for bit — elements, scores, order,
    /// truncation and the edge-derived neighbourhood payloads.
    #[test]
    fn merged_shard_lookups_equal_the_global_lookup() {
        let graph = figure1_graph();
        let global_index = KeywordIndex::build(&graph);
        let keywords = ["cimiano", "publication", "aifb", "year", "author"];
        let global = global_index.lookup_all(&keywords);

        for shard_count in [1usize, 2, 3, 7] {
            let plan = partition(&graph, shard_count);
            let per_shard: Vec<_> = (0..shard_count)
                .map(|s| KeywordIndex::build(&plan.shard_graph(&graph, s)).lookup_all(&keywords))
                .collect();
            let merged =
                merge_keyword_matches(&per_shard, global_index.config().max_matches_per_keyword);
            assert_eq!(merged.len(), global.len());
            for (keyword, (got, want)) in keywords.iter().zip(merged.iter().zip(&global)) {
                assert_eq!(
                    got.len(),
                    want.len(),
                    "`{keyword}` match count diverges at {shard_count} shards"
                );
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(g.score.to_bits(), w.score.to_bits());
                    assert_eq!(g.element, w.element, "`{keyword}` payload diverges");
                }
            }
        }
    }
}
