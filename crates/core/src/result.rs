//! Ranked query results.

use kwsearch_query::{sparql, ConjunctiveQuery};

use crate::subgraph::MatchingSubgraph;

/// One entry of the top-k result list: a conjunctive query, its cost and the
/// matching subgraph it was derived from.
#[derive(Debug, Clone)]
#[must_use]
pub struct RankedQuery {
    /// Rank (1-based) within the result list.
    pub rank: usize,
    /// The computed conjunctive query.
    pub query: ConjunctiveQuery,
    /// The cost of the underlying matching subgraph (lower is better).
    pub cost: f64,
    /// The matching subgraph the query was derived from.
    pub subgraph: MatchingSubgraph,
}

impl RankedQuery {
    /// The SPARQL rendering of the query (Fig. 1c style).
    pub fn sparql(&self) -> String {
        sparql::to_sparql(&self.query)
    }

    /// A short natural-language-like description of the query, as shown to
    /// users by the paper's demo system.
    pub fn description(&self) -> String {
        sparql::to_description(&self.query)
    }
}

impl std::fmt::Display for RankedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} (cost {:.3}): {}", self.rank, self.cost, self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::SubgraphPath;
    use kwsearch_query::QueryBuilder;
    use kwsearch_summary::SummaryElement;

    fn sample() -> RankedQuery {
        // A minimal subgraph handle is enough for formatting tests; real
        // subgraphs are covered by the engine tests.
        let element = sample_element();
        RankedQuery {
            rank: 1,
            cost: 2.5,
            query: QueryBuilder::new()
                .class_pattern("x", "Publication")
                .attribute_pattern("x", "year", "2006")
                .distinguished(["x"])
                .build(),
            subgraph: MatchingSubgraph::new(
                element,
                vec![SubgraphPath {
                    keyword: 0,
                    elements: vec![element],
                    cost: 2.5,
                }],
            ),
        }
    }

    fn sample_element() -> SummaryElement {
        use kwsearch_rdf::fixtures::figure1_graph;
        use kwsearch_summary::SummaryGraph;
        let g = figure1_graph();
        let s = SummaryGraph::build(&g);
        let first = s.nodes().next().unwrap();
        SummaryElement::Node(first)
    }

    #[test]
    fn sparql_and_description_are_derived_from_the_query() {
        let ranked = sample();
        assert!(ranked.sparql().contains("SELECT ?x"));
        assert!(ranked.sparql().contains("?x year '2006'"));
        assert!(ranked.description().contains("Publication"));
    }

    #[test]
    fn display_shows_rank_and_cost() {
        let text = sample().to_string();
        assert!(text.starts_with("#1"));
        assert!(text.contains("2.500"));
        assert!(text.contains("type(?x, Publication)"));
    }
}
