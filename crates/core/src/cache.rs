//! The bounded augmentation cache.
//!
//! The first two phases of every search — keyword-to-element mapping and
//! summary-graph augmentation — depend only on the engine's immutable
//! indexes, the search configuration and the *normalized* query terms.
//! Repeated or overlapping queries therefore redo identical work, and under
//! serving traffic (see [`crate::serve`]) the repetition dominates: a few
//! hot keyword combinations account for most requests.
//!
//! [`AugmentationCache`] memoizes that work. It is a bounded, thread-safe
//! LRU map from [`AugmentationKey`] — the pair of the full
//! [`SearchConfig`] (embedded verbatim, so cross-config
//! collisions are impossible by construction) and the
//! per-keyword normalized query terms — to the finished augmentation
//! ([`AugmentationSnapshot`]) plus the per-keyword match counts the session
//! report needs. A hit skips the matching *and* the augmentation phase
//! entirely, and is **bit-identical** to a fresh run: the snapshot captures
//! the built augmented graph exactly (same dense element ids, same CSR
//! order, same scores), and the exploration that runs on top is
//! deterministic. The cross-thread determinism suite and the cache-coherence
//! proptests pin this property.
//!
//! Determinism buys a second layer for free: once any session under a key
//! has drained naturally, its complete emission log (the ranked queries, in
//! order) is written back to the entry, and later same-key sessions *replay*
//! the log instead of exploring — the dominant cost of a repeated query
//! drops to cloning its results. A replayed session is still a full
//! [`SearchSession`](crate::SearchSession): `raise_k` falls back to real
//! exploration (over the snapshot's augmented graph) and fast-forwards past
//! the replayed prefix, exactly like raising a session that explored
//! honestly.
//!
//! Keying on the normalized terms (lower-cased, tokenized, stop words
//! removed — see
//! [`KeywordIndex::normalized_query_terms`](kwsearch_keyword_index::KeywordIndex::normalized_query_terms))
//! rather than the raw strings lets `"Cimiano"` and `"cimiano"` share an
//! entry; keeping the per-keyword term lists *in query order* is essential,
//! because the augmentation assigns dense element ids in keyword order and a
//! reordered query may legitimately break cost ties differently. Keying on
//! the configuration means
//! [`KeywordSearchEngine::set_config`](crate::KeywordSearchEngine::set_config)
//! never invalidates or corrupts existing entries: searches under the new
//! configuration simply populate their own keys, and switching back rehits
//! the old ones.

use std::collections::{HashMap, HashSet};
use std::sync::PoisonError;

use kwsearch_keyword_index::ElementRef;
use kwsearch_summary::AugmentationSnapshot;

use crate::config::SearchConfig;
use crate::invariants;
use crate::result::RankedQuery;
use crate::sync::{lock_unpoisoned, Arc, Condvar, Mutex};

/// The key of one cached augmentation: the search configuration (embedded
/// verbatim — see [`SearchConfig`]'s `Eq + Hash` note), the normalized
/// query terms of every keyword in query order, and the write epoch of the
/// preparation the entry was computed against.
///
/// The snapshot itself is configuration-independent (augmentation takes no
/// [`SearchConfig`]), so keying it under the config deliberately trades
/// some duplication — one snapshot per distinct config sweeping the same
/// keywords — for a single, simple invariant: everything under a key was
/// produced under that key's exact configuration, replay logs included.
/// Splitting the key (snapshot by terms, log by config + terms) would share
/// the snapshot across sweeps and is the natural next step if that
/// duplication ever shows up in [`CacheStats::heap_bytes`].
///
/// The epoch serves the live write path (see [`crate::live`]): a cache
/// shared across a [`LiveGraph`](crate::live::LiveGraph)'s succession of
/// prepared snapshots folds each snapshot's monotone write epoch into the
/// key, so an entry computed before a write — its matches, its snapshot,
/// and above all its replay log — can never be served to a reader of a
/// later snapshot. Frozen, standalone preparations stay at epoch 0 and
/// behave exactly as before.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AugmentationKey {
    config: SearchConfig,
    terms: Vec<Vec<String>>,
    epoch: u64,
}

impl AugmentationKey {
    /// Builds a key from a configuration and the per-keyword normalized
    /// term lists (one entry per input keyword, in query order; keywords
    /// that normalize to nothing contribute an empty list). The key starts
    /// at write epoch 0 — the frozen-preparation case.
    pub fn new(config: SearchConfig, terms: Vec<Vec<String>>) -> Self {
        Self {
            config,
            terms,
            epoch: 0,
        }
    }

    /// Folds a write epoch into the key fingerprint (see the type docs).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The write epoch folded into this key.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of keywords the key covers.
    pub fn keyword_count(&self) -> usize {
        self.terms.len()
    }
}

/// A cached augmentation: everything a session start needs to skip the
/// matching and augmentation phases, plus — once some session under this key
/// has drained naturally — the certified-result replay log that lets later
/// sessions skip the exploration too.
#[derive(Debug)]
pub(crate) struct CachedAugmentation {
    /// Per-keyword element-match counts (aligned with the query order), used
    /// to rebuild the session's keyword report without re-running the
    /// matching.
    pub(crate) element_matches: Vec<usize>,
    /// The finished augmentation, detached from the data graph — or `None`
    /// for a *negative* entry: the keywords all failed to match, the session
    /// start errors before augmenting, and caching that verdict keeps a hot
    /// failing query from re-running (or, worse, serializing coalesced
    /// waiters behind) the matching on every request.
    pub(crate) snapshot: Option<AugmentationSnapshot>,
    /// The distinct elements the keywords matched, in canonical (sorted)
    /// order — the fan-in side of the cache's per-element reverse map. A
    /// write that touches any of these elements invalidates the entry (see
    /// [`AugmentationCache::advance_epoch`]); an entry whose elements are
    /// all untouched can be carried forward to the new epoch. Empty for
    /// negative entries (nothing matched, so nothing to touch).
    pub(crate) elements: Vec<ElementRef>,
    /// The complete ranked-query stream a drained session under this key
    /// emitted, in emission order. `None` until the first session drains.
    /// The exploration is deterministic over the (immutable) indexes and the
    /// keyed configuration, so replaying this log is bit-identical to
    /// re-exploring — the determinism suite and the cache-coherence
    /// proptests pin that. Written once (racing drained sessions computed
    /// identical logs; the first one wins).
    results: Mutex<Option<Arc<Vec<RankedQuery>>>>,
}

impl CachedAugmentation {
    pub(crate) fn new(element_matches: Vec<usize>, snapshot: Option<AugmentationSnapshot>) -> Self {
        Self::with_elements(element_matches, snapshot, Vec::new())
    }

    /// Like [`Self::new`], with the matched element set for keyed
    /// invalidation. `elements` need not be sorted; it is canonicalized
    /// here.
    pub(crate) fn with_elements(
        element_matches: Vec<usize>,
        snapshot: Option<AugmentationSnapshot>,
        mut elements: Vec<ElementRef>,
    ) -> Self {
        elements.sort_unstable();
        elements.dedup();
        Self {
            element_matches,
            snapshot,
            elements,
            results: Mutex::new(None),
        }
    }

    /// Approximate heap footprint of the entry (the snapshot dominates;
    /// match counts and the replay log are comparatively negligible).
    fn heap_bytes(&self) -> usize {
        self.snapshot
            .as_ref()
            .map(AugmentationSnapshot::heap_bytes)
            .unwrap_or(0)
    }

    /// The replay log, if a session under this key already drained.
    pub(crate) fn results(&self) -> Option<Arc<Vec<RankedQuery>>> {
        lock_unpoisoned(&self.results).clone()
    }

    /// Stores the complete emission log of a drained session (first writer
    /// wins; identical by determinism).
    pub(crate) fn store_results(&self, queries: &[RankedQuery]) {
        let mut slot = lock_unpoisoned(&self.results);
        match slot.as_ref() {
            None => *slot = Some(Arc::new(queries.to_vec())),
            Some(existing) => {
                // debug-invariants: racing drained sessions must have
                // computed bit-identical logs (the determinism contract the
                // first-writer-wins policy relies on).
                if invariants::enabled() {
                    assert_eq!(
                        existing.len(),
                        queries.len(),
                        "replay-log write-back disagrees in length with the resident log"
                    );
                    for (resident, late) in existing.iter().zip(queries) {
                        assert_eq!(
                            resident.cost.to_bits(),
                            late.cost.to_bits(),
                            "replay-log write-back disagrees in cost with the resident log"
                        );
                        assert_eq!(
                            resident.query.canonicalized(),
                            late.query.canonicalized(),
                            "replay-log write-back disagrees in query with the resident log"
                        );
                    }
                }
            }
        }
    }
}

/// Cumulative counters of one [`AugmentationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that avoided computing: the key was resident, or an in-flight
    /// computation of the same key was joined (request coalescing).
    pub hits: u64,
    /// Probes that had to compute (they became the key's owner).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries dropped by keyed invalidation: a write touched one of the
    /// entry's matched elements (see `AugmentationCache::advance_epoch`).
    pub invalidations: u64,
    /// Entries carried forward to a new write epoch because the write
    /// touched none of their matched elements.
    pub promotions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// The capacity bound (0 means the cache is disabled).
    pub capacity: usize,
    /// Approximate heap footprint of the resident snapshots, in bytes — the
    /// number to watch when sizing `capacity` for a large graph, where a
    /// single augmentation snapshot can run to megabytes.
    pub heap_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit (`0.0` when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<AugmentationKey, Entry>,
    /// Keys some session is currently computing (request coalescing):
    /// same-key probes join the owner's [`InFlight`] instead of redoing the
    /// matching and augmentation — the thundering-herd guard for serving
    /// workloads, where the same hot query arrives on many workers at once.
    in_flight: HashMap<AugmentationKey, Arc<InFlight>>,
    /// Per-element reverse map: which resident keys matched each element.
    /// Maintained by insert/remove so keyed invalidation
    /// ([`AugmentationCache::advance_epoch`]) never scans entry payloads.
    reverse: HashMap<ElementRef, HashSet<AugmentationKey>>,
    /// Monotone clear-generation: [`AugmentationCache::clear`] bumps it so
    /// in-flight owners whose computation started before the clear cannot
    /// re-insert (resurrect) their entry afterwards. Compare
    /// [`ComputeTicket::complete`].
    generation: u64,
    /// Monotonic logical clock stamping every hit/insert for LRU eviction.
    tick: u64,
    /// Approximate heap bytes of the resident entries (kept incrementally).
    heap_bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
    promotions: u64,
}

#[derive(Debug)]
struct Entry {
    last_used: u64,
    payload: Arc<CachedAugmentation>,
}

impl CacheInner {
    fn remove(&mut self, key: &AugmentationKey) -> Option<Entry> {
        let entry = self.map.remove(key)?;
        self.heap_bytes = self.heap_bytes.saturating_sub(entry.payload.heap_bytes());
        for element in &entry.payload.elements {
            if let Some(keys) = self.reverse.get_mut(element) {
                keys.remove(key);
                if keys.is_empty() {
                    self.reverse.remove(element);
                }
            }
        }
        Some(entry)
    }

    /// Inserts `payload` under `key` with a fresh LRU tick, maintaining the
    /// heap estimate and the per-element reverse map.
    fn insert(&mut self, key: AugmentationKey, payload: Arc<CachedAugmentation>) {
        self.tick += 1;
        let tick = self.tick;
        self.heap_bytes += payload.heap_bytes();
        for element in &payload.elements {
            self.reverse
                .entry(*element)
                .or_default()
                .insert(key.clone());
        }
        self.map.insert(
            key,
            Entry {
                last_used: tick,
                payload,
            },
        );
    }

    /// Evicts least-recently-used entries until at most `capacity` remain.
    fn evict_to(&mut self, capacity: usize) {
        while self.map.len() > capacity {
            // O(capacity) scan; capacities are small (default 128) and
            // eviction is off the hit path.
            let Some(oldest) = self
                .map
                // lint: unordered-ok(reason = "min_by_key over last_used ticks, which the monotonic clock keeps unique — the selected entry is independent of hash order")
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            self.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// The rendezvous between the owner computing a key and the probes waiting
/// on it. The slot distinguishes pending (`None`), completed
/// (`Some(Some(_))`) and abandoned (`Some(None)` — the owner errored or
/// panicked; waiters retry and one of them becomes the new owner).
#[derive(Debug, Default)]
struct InFlight {
    slot: Mutex<Option<Option<Arc<CachedAugmentation>>>>,
    done: Condvar,
}

impl InFlight {
    // lint: wait-loop
    fn wait(&self) -> Option<Arc<CachedAugmentation>> {
        let mut slot = lock_unpoisoned(&self.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish(&self, result: Option<Arc<CachedAugmentation>>) {
        let mut slot = lock_unpoisoned(&self.slot);
        *slot = Some(result);
        drop(slot);
        // Seeded mutation (a): dropping this notify_all leaves every joined
        // waiter blocked forever once the owner publishes — the model
        // checker must report it as a lost wakeup
        // (`tests/model_mutations.rs`).
        #[cfg(not(all(kwsearch_model, kwsearch_model_mutation)))]
        self.done.notify_all();
    }
}

/// The outcome of [`AugmentationCache::probe`].
pub(crate) enum CacheProbe<'c> {
    /// The augmentation is available — resident, or just finished by the
    /// in-flight owner this probe joined.
    Hit(Arc<CachedAugmentation>),
    /// This probe owns the computation: it must run the matching and
    /// augmentation and then call [`ComputeTicket::complete`] (dropping the
    /// ticket instead — e.g. on an all-unmatched error — releases the
    /// waiters to compute for themselves).
    Compute(ComputeTicket<'c>),
}

/// The obligation of the probe that owns a missing key (see
/// [`CacheProbe::Compute`]).
pub(crate) struct ComputeTicket<'c> {
    cache: &'c AugmentationCache,
    key: Option<AugmentationKey>,
    flight: Arc<InFlight>,
    /// The cache's clear-generation at miss time; a [`AugmentationCache::clear`]
    /// in between orphans this owner's write-back (see [`Self::complete`]).
    generation: u64,
}

impl ComputeTicket<'_> {
    /// Publishes the computed augmentation: inserts it (evicting LRU entries
    /// past the capacity bound), wakes every waiter joined on the key, and
    /// returns the resident entry for the replay-log write-back.
    ///
    /// If [`AugmentationCache::clear`] ran since this owner took the miss,
    /// the computed entry is **not** inserted — the clear's contract is that
    /// nothing computed before it survives it, and without the generation
    /// check an in-flight owner would resurrect a stale entry (and, worse,
    /// a stale replay log) right after the clear. The orphaned payload is
    /// still returned so the owning session can finish normally; its
    /// waiters are released empty-handed and retry under the new
    /// generation.
    pub(crate) fn complete(mut self, payload: CachedAugmentation) -> Arc<CachedAugmentation> {
        // lint: allow(no-unwrap, reason = "completion consumes the ticket by value, so the key is always present; the Option exists only for the Drop impl")
        let key = self.key.take().expect("ticket completed twice");
        match self.cache.insert_resolved(&key, payload, self.generation) {
            Ok(resident) => {
                self.flight.finish(Some(Arc::clone(&resident)));
                resident
            }
            Err(orphan) => {
                self.flight.finish(None);
                orphan
            }
        }
    }
}

impl Drop for ComputeTicket<'_> {
    fn drop(&mut self) {
        // Abandoned (error or panic on the computing path): deregister the
        // key and release the waiters empty-handed so they can retry.
        if let Some(key) = self.key.take() {
            let mut inner = lock_unpoisoned(&self.cache.inner);
            inner.in_flight.remove(&key);
            drop(inner);
            self.flight.finish(None);
        }
    }
}

/// A bounded, thread-safe LRU cache of finished augmentations.
///
/// Owned by a [`PreparedGraph`](crate::PreparedGraph) and consulted by every
/// session start. All methods take `&self`; the cache is internally
/// synchronized with a [`Mutex`], so a `PreparedGraph` stays `Sync` and many
/// worker threads can share one cache. The critical sections are tiny (a
/// hash probe plus an `Arc` clone — the snapshot itself is cloned *outside*
/// the lock), so contention stays negligible even at high request rates.
///
/// A capacity of 0 disables the cache: every lookup misses and insertions
/// are dropped.
#[derive(Debug)]
pub struct AugmentationCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl AugmentationCache {
    /// The capacity used by [`Default`] and by engines that do not configure
    /// one explicitly.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a cache bounded to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            capacity,
        }
    }

    /// Whether the cache stores anything at all (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters (len/capacity plus cumulative hit/miss/eviction
    /// counts).
    pub fn stats(&self) -> CacheStats {
        let inner = lock_unpoisoned(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            promotions: inner.promotions,
            len: inner.map.len(),
            capacity: self.capacity,
            heap_bytes: inner.heap_bytes,
        }
    }

    /// Drops every entry (the counters keep accumulating) and bumps the
    /// clear-generation, so in-flight owners that took their miss before
    /// this call cannot re-insert afterwards (their write-backs are
    /// orphaned — see `ComputeTicket::complete`). In-flight registrations
    /// are left in place: post-clear probes still coalesce on the running
    /// owner, are released empty-handed when its insert is refused, and
    /// retry under the new generation.
    pub fn clear(&self) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.map.clear();
        inner.reverse.clear();
        inner.heap_bytes = 0;
        inner.generation += 1;
    }

    /// Advances the live write epoch (see [`crate::live`]): processes every
    /// resident entry keyed at epoch `from` — the snapshot the write
    /// replaced. Entries whose matched elements intersect `touched` are
    /// removed (keyed invalidation via the per-element reverse map; they
    /// describe state the write changed). When `promote` is set — the
    /// caller proved the write changed neither the match vocabulary nor the
    /// summary structure — the remaining (untouched) entries are carried
    /// forward: re-inserted under the same config/terms at epoch `to`,
    /// sharing the payload, so readers of the new snapshot keep hitting.
    /// Without `promote` the untouched entries merely stay behind at their
    /// old epoch, serving concurrent readers of the replaced snapshot until
    /// LRU pressure or [`Self::prune_below_epoch`] retires them.
    pub(crate) fn advance_epoch(&self, from: u64, to: u64, touched: &[ElementRef], promote: bool) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        // Keys to drop: resolved through the reverse map, so the cost is
        // proportional to the touched entries, not the cache size.
        // The collected keys are sorted-deduped below, so removal order over
        // a set of distinct keys cannot affect the resulting map.
        let mut stale: Vec<AugmentationKey> = touched
            .iter()
            .filter_map(|element| inner.reverse.get(element))
            .flat_map(|keys| keys.iter().filter(|k| k.epoch == from).cloned())
            .collect();
        stale.sort_by(|a, b| a.terms.cmp(&b.terms).then(a.epoch.cmp(&b.epoch)));
        stale.dedup();
        for key in stale {
            if inner.remove(&key).is_some() {
                inner.invalidations += 1;
            }
        }
        if promote {
            let survivors: Vec<AugmentationKey> = inner
                .map
                // lint: unordered-ok(reason = "promotion re-keys every surviving entry exactly once; the per-entry LRU ticks it assigns only bias later eviction order, never a served result")
                .keys()
                .filter(|k| k.epoch == from)
                .cloned()
                .collect();
            for key in survivors {
                let payload = Arc::clone(&inner.map[&key].payload);
                inner.insert(key.with_epoch(to), payload);
                inner.promotions += 1;
            }
            inner.evict_to(self.capacity);
        }
    }

    /// Drops every entry keyed below `epoch` — the compaction-time sweep
    /// retiring entries that only ever served readers of replaced
    /// snapshots.
    pub(crate) fn prune_below_epoch(&self, epoch: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        let old: Vec<AugmentationKey> = inner
            .map
            // lint: unordered-ok(reason = "removing a fixed set of keys; the resulting map is independent of removal order")
            .keys()
            .filter(|k| k.epoch < epoch)
            .cloned()
            .collect();
        for key in old {
            inner.remove(&key);
            inner.invalidations += 1;
        }
    }

    /// Probes a key: a resident entry (or one an in-flight owner finishes
    /// while we wait) comes back as [`CacheProbe::Hit`]; otherwise this
    /// probe becomes the key's owner and receives the
    /// [`ComputeTicket`] obligation. Blocks only while another session is
    /// computing the same key — never during an unrelated computation.
    ///
    /// # Panics
    ///
    /// Panics when the cache is disabled (capacity 0); callers skip the
    /// cache entirely in that case.
    pub(crate) fn probe(&self, key: AugmentationKey) -> CacheProbe<'_> {
        assert!(self.capacity > 0, "probe on a disabled cache");
        loop {
            let flight = {
                let mut inner = lock_unpoisoned(&self.inner);
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(entry) = inner.map.get_mut(&key) {
                    entry.last_used = tick;
                    let payload = Arc::clone(&entry.payload);
                    inner.hits += 1;
                    return CacheProbe::Hit(payload);
                }
                match inner.in_flight.get(&key) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(InFlight::default());
                        inner.in_flight.insert(key.clone(), Arc::clone(&flight));
                        inner.misses += 1;
                        let generation = inner.generation;
                        return CacheProbe::Compute(ComputeTicket {
                            cache: self,
                            key: Some(key),
                            flight,
                            generation,
                        });
                    }
                }
            };
            // Join the owner outside the cache lock.
            match flight.wait() {
                Some(payload) => {
                    let mut inner = lock_unpoisoned(&self.inner);
                    inner.hits += 1;
                    return CacheProbe::Hit(payload);
                }
                // The owner abandoned the key (error/panic); retry — the
                // next round either finds a new owner or becomes one.
                None => continue,
            }
        }
    }

    /// Publishes an owner's finished augmentation: deregisters the in-flight
    /// marker and inserts the entry, evicting least-recently-used entries
    /// past the capacity bound. Returns the resident entry (the freshly
    /// inserted one; the in-flight marker guarantees no same-key race) —
    /// or, when [`Self::clear`] ran after the owner took its miss
    /// (`generation` is stale), refuses the insert and hands the payload
    /// back as `Err` so the owner's session can still use it privately.
    fn insert_resolved(
        &self,
        key: &AugmentationKey,
        payload: CachedAugmentation,
        generation: u64,
    ) -> Result<Arc<CachedAugmentation>, Arc<CachedAugmentation>> {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.in_flight.remove(key);
        let payload = Arc::new(payload);
        // Seeded mutation (d): skipping this generation check lets an owner
        // that took its miss before a `clear()` resurrect the stale entry —
        // and its stale replay log — right after the clear; the model
        // checker must observe the resurrected hit and report the panic
        // (`tests/model_mutations.rs`).
        #[cfg(not(all(kwsearch_model, kwsearch_model_mutation)))]
        if generation != inner.generation {
            // Orphaned by a clear(): resurrecting the entry would undo the
            // clear's visible effect (model scenario `cache_clear_orphans_
            // inflight_writeback` pins the schedule space).
            return Err(payload);
        }
        #[cfg(all(kwsearch_model, kwsearch_model_mutation))]
        let _ = generation;
        inner.insert(key.clone(), Arc::clone(&payload));
        inner.evict_to(self.capacity);
        inner.insertions += 1;
        // debug-invariants: the eviction loop above must have restored the
        // capacity bound, and the incremental heap-byte estimate must agree
        // with a full recount.
        if invariants::enabled() {
            assert!(
                inner.map.len() <= self.capacity,
                "LRU bound violated: {} resident entries exceed capacity {}",
                inner.map.len(),
                self.capacity
            );
            let recount: usize = inner
                .map
                // lint: unordered-ok(reason = "summing heap bytes — addition over usize is commutative, the total is independent of hash order")
                .values()
                .map(|entry| entry.payload.heap_bytes())
                .sum();
            assert_eq!(
                recount, inner.heap_bytes,
                "incremental heap-byte estimate drifted from the recount"
            );
            // The reverse map must list exactly the resident keys of every
            // element (no leaked keys after remove/clear, none missing after
            // insert/promotion).
            let mut expected: HashMap<ElementRef, HashSet<AugmentationKey>> = HashMap::new();
            // Building a set-valued map: insertion order over a hash map
            // cannot change the resulting sets.
            for (key, entry) in &inner.map {
                for element in &entry.payload.elements {
                    expected.entry(*element).or_default().insert(key.clone());
                }
            }
            assert_eq!(
                expected, inner.reverse,
                "per-element reverse map drifted from the resident entries"
            );
        }
        Ok(payload)
    }
}

impl Default for AugmentationCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_keyword_index::KeywordIndex;
    use kwsearch_rdf::fixtures::figure1_graph;
    use kwsearch_summary::{AugmentedSummaryGraph, SummaryGraph};

    fn payload(keywords: &[&str]) -> CachedAugmentation {
        let g = figure1_graph();
        let base = SummaryGraph::build(&g);
        let index = KeywordIndex::build(&g);
        let matches = index.lookup_all(keywords);
        let augmented = AugmentedSummaryGraph::build(&g, &base, &matches);
        CachedAugmentation::new(
            matches.iter().map(Vec::len).collect(),
            Some(augmented.to_snapshot()),
        )
    }

    fn key(tag: &str) -> AugmentationKey {
        AugmentationKey::new(SearchConfig::with_k(7), vec![vec![tag.to_string()]])
    }

    /// Probes expecting to own the computation, and completes it.
    fn fill(cache: &AugmentationCache, tag: &str, keywords: &[&str]) -> Arc<CachedAugmentation> {
        match cache.probe(key(tag)) {
            CacheProbe::Compute(ticket) => ticket.complete(payload(keywords)),
            CacheProbe::Hit(_) => panic!("key {tag} unexpectedly resident"),
        }
    }

    /// Probes expecting a resident entry.
    fn hit(cache: &AugmentationCache, tag: &str) -> Option<Arc<CachedAugmentation>> {
        match cache.probe(key(tag)) {
            CacheProbe::Hit(payload) => Some(payload),
            CacheProbe::Compute(_) => None, // dropping the ticket abandons it
        }
    }

    #[test]
    fn hits_misses_and_insertions_are_counted() {
        let cache = AugmentationCache::new(4);
        fill(&cache, "a", &["aifb"]);
        let resident = hit(&cache, "a").expect("inserted entry hits");
        assert_eq!(resident.element_matches.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.len, 1);
        assert!(stats.hit_ratio() > 0.0);
    }

    #[test]
    fn capacity_bound_holds_and_lru_entry_is_evicted() {
        let cache = AugmentationCache::new(2);
        fill(&cache, "a", &["aifb"]);
        fill(&cache, "b", &["cimiano"]);
        // Touch "a" so "b" becomes the LRU entry.
        assert!(hit(&cache, "a").is_some());
        fill(&cache, "c", &["2006"]);
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
        assert!(hit(&cache, "a").is_some(), "recently used survives");
        assert!(hit(&cache, "b").is_none(), "LRU entry was evicted");
        assert!(hit(&cache, "c").is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = AugmentationCache::new(0);
        assert!(!cache.is_enabled());
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().capacity, 0);
    }

    #[test]
    fn keys_distinguish_config_order_and_terms() {
        let terms = |words: &[&str]| -> Vec<Vec<String>> {
            words.iter().map(|w| vec![w.to_string()]).collect()
        };
        let k1 = SearchConfig::with_k(1);
        let base = AugmentationKey::new(k1.clone(), terms(&["a", "b"]));
        assert_eq!(base, AugmentationKey::new(k1.clone(), terms(&["a", "b"])));
        assert_ne!(
            base,
            AugmentationKey::new(SearchConfig::with_k(2), terms(&["a", "b"]))
        );
        assert_ne!(base, AugmentationKey::new(k1.clone(), terms(&["b", "a"])));
        assert_ne!(base, AugmentationKey::new(k1, terms(&["a"])));
        assert_eq!(base.keyword_count(), 2);
    }

    #[test]
    fn heap_bytes_track_insertions_evictions_and_clear() {
        let cache = AugmentationCache::new(1);
        assert_eq!(cache.stats().heap_bytes, 0);
        fill(&cache, "a", &["aifb"]);
        let after_a = cache.stats().heap_bytes;
        assert!(after_a > 0);
        fill(&cache, "b", &["cimiano"]); // evicts "a"
        let stats = cache.stats();
        assert_eq!(stats.len, 1);
        assert!(stats.heap_bytes > 0);
        cache.clear();
        assert_eq!(cache.stats().heap_bytes, 0);
    }

    #[test]
    fn clear_keeps_counters_but_drops_entries() {
        let cache = AugmentationCache::new(4);
        fill(&cache, "a", &["aifb"]);
        cache.clear();
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().insertions, 1);
        assert!(hit(&cache, "a").is_none());
    }

    #[test]
    fn concurrent_probes_coalesce_on_one_owner() {
        let cache = Arc::new(AugmentationCache::new(4));
        let ticket = match cache.probe(key("shared")) {
            CacheProbe::Compute(ticket) => ticket,
            CacheProbe::Hit(_) => panic!("the key cannot be resident yet"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.probe(key("shared")) {
                CacheProbe::Hit(payload) => payload.element_matches.len(),
                CacheProbe::Compute(_) => panic!("a joined probe must hit, not recompute"),
            })
        };
        // Give the waiter a moment to join the in-flight computation (the
        // test is correct either way — a late probe hits the resident entry).
        std::thread::sleep(std::time::Duration::from_millis(20));
        ticket.complete(payload(&["aifb"]));
        assert_eq!(waiter.join().unwrap(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn abandoned_owner_releases_waiters_to_retry() {
        let cache = Arc::new(AugmentationCache::new(4));
        let ticket = match cache.probe(key("doomed")) {
            CacheProbe::Compute(ticket) => ticket,
            CacheProbe::Hit(_) => panic!("the key cannot be resident yet"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.probe(key("doomed")) {
                // Either ordering is legal: the waiter may probe after the
                // abandonment (fresh owner) or join and be released to retry.
                CacheProbe::Compute(ticket) => {
                    ticket.complete(payload(&["cimiano"]));
                    true
                }
                CacheProbe::Hit(_) => false,
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(ticket); // the owner errors out
        assert!(
            waiter.join().unwrap(),
            "after the abandonment the waiter must become the new owner"
        );
        assert!(
            hit(&cache, "doomed").is_some(),
            "the retry populated the key"
        );
    }

    #[test]
    fn epoch_distinguishes_otherwise_equal_keys() {
        let base = key("same");
        assert_eq!(base.clone(), base.clone().with_epoch(0));
        assert_ne!(base.clone(), base.clone().with_epoch(1));
        assert_eq!(base.clone().with_epoch(3).epoch(), 3);

        let cache = AugmentationCache::new(4);
        fill(&cache, "same", &["aifb"]);
        match cache.probe(key("same").with_epoch(1)) {
            CacheProbe::Compute(_) => {} // dropped: the epoch-1 twin is absent
            CacheProbe::Hit(_) => panic!("an epoch-0 entry must not serve epoch-1 readers"),
        };
    }

    #[test]
    fn clear_orphans_the_inflight_writeback() {
        let cache = AugmentationCache::new(4);
        let ticket = match cache.probe(key("stale")) {
            CacheProbe::Compute(ticket) => ticket,
            CacheProbe::Hit(_) => panic!("the key cannot be resident yet"),
        };
        // The owner computed against pre-clear state; the clear must win.
        cache.clear();
        let orphan = ticket.complete(payload(&["aifb"]));
        assert_eq!(
            orphan.element_matches.len(),
            1,
            "the owning session still gets its payload"
        );
        assert!(
            hit(&cache, "stale").is_none(),
            "the write-back must not resurrect the cleared entry"
        );
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.stats().len, 0);
    }

    /// An entry whose declared elements include `element`.
    fn fill_with_element(cache: &AugmentationCache, tag: &str, element: ElementRef) {
        match cache.probe(key(tag)) {
            CacheProbe::Compute(ticket) => {
                let base = payload(&["aifb"]);
                ticket.complete(CachedAugmentation::with_elements(
                    base.element_matches.clone(),
                    base.snapshot.clone(),
                    vec![element],
                ));
            }
            CacheProbe::Hit(_) => panic!("key {tag} unexpectedly resident"),
        }
    }

    #[test]
    fn advance_epoch_invalidates_touched_entries_and_promotes_the_rest() {
        let touched_element = ElementRef::Value(kwsearch_rdf::VertexId::from_index(7));
        let safe_element = ElementRef::Value(kwsearch_rdf::VertexId::from_index(9));
        let cache = AugmentationCache::new(4);
        fill_with_element(&cache, "touched", touched_element);
        fill_with_element(&cache, "safe", safe_element);

        cache.advance_epoch(0, 1, &[touched_element], true);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1, "{stats:?}");
        assert_eq!(stats.promotions, 1, "{stats:?}");

        // The touched entry is gone at both epochs.
        assert!(hit(&cache, "touched").is_none());
        match cache.probe(key("touched").with_epoch(1)) {
            CacheProbe::Compute(_) => {}
            CacheProbe::Hit(_) => panic!("the touched entry must not survive the write"),
        }
        // The safe entry is resident at the old epoch *and* the new one,
        // sharing one payload.
        let old = hit(&cache, "safe").expect("old-epoch readers keep hitting");
        match cache.probe(key("safe").with_epoch(1)) {
            CacheProbe::Hit(promoted) => assert!(Arc::ptr_eq(&promoted, &old)),
            CacheProbe::Compute(_) => panic!("the promoted entry must hit at the new epoch"),
        };
    }

    #[test]
    fn advance_epoch_without_promotion_leaves_survivors_behind() {
        let safe_element = ElementRef::Value(kwsearch_rdf::VertexId::from_index(3));
        let cache = AugmentationCache::new(4);
        fill_with_element(&cache, "safe", safe_element);
        cache.advance_epoch(0, 1, &[], false);
        assert_eq!(cache.stats().promotions, 0);
        assert!(hit(&cache, "safe").is_some(), "old epoch still serves");
        match cache.probe(key("safe").with_epoch(1)) {
            CacheProbe::Compute(_) => {}
            CacheProbe::Hit(_) => panic!("no promotion was requested"),
        };
    }

    #[test]
    fn prune_below_epoch_retires_old_entries_only() {
        let element = ElementRef::Value(kwsearch_rdf::VertexId::from_index(1));
        let cache = AugmentationCache::new(4);
        fill_with_element(&cache, "old", element);
        cache.advance_epoch(0, 1, &[], true); // "old" promoted to epoch 1
        cache.prune_below_epoch(1);
        assert!(hit(&cache, "old").is_none(), "the epoch-0 copy was pruned");
        match cache.probe(key("old").with_epoch(1)) {
            CacheProbe::Hit(_) => {}
            CacheProbe::Compute(_) => panic!("the current-epoch copy must survive the prune"),
        };
    }
}
