//! Top-k candidate management (Algorithm 2).
//!
//! Following the Threshold Algorithm, the exploration maintains
//!
//! * a **candidate list** `LG'` of matching subgraphs discovered so far,
//!   kept sorted by cost and truncated to the k best (this module), and
//! * the cost of the cheapest unexpanded cursor, which lower-bounds the cost
//!   of every subgraph that could still be discovered (tracked by the
//!   explorer).
//!
//! The search may stop as soon as the k-th best candidate costs less than
//! that lower bound: no undiscovered subgraph can displace the current top-k.
//! Because cursors are created in non-decreasing order of path cost
//! (Theorem 1 of the paper), the bound is valid and the returned subgraphs
//! are guaranteed to be the k cheapest — including cyclic ones.

use kwsearch_summary::{AugmentedSummaryGraph, SummaryElement};

use crate::cursor::{CursorArena, CursorId};
use crate::subgraph::{MatchingSubgraph, SubgraphPath};

/// The candidate list `LG'` of Algorithm 2.
///
/// Candidates are kept sorted by ascending cost; insertion is a binary
/// search plus one `Vec::insert` (the list never exceeds `k` entries).
/// Deduplication probes the element-set hash cached on
/// [`MatchingSubgraph`] — integer compares, no re-hashing of element sets
/// and no side index to keep consistent.
#[derive(Debug, Clone)]
pub struct CandidateList {
    k: usize,
    candidates: Vec<MatchingSubgraph>,
}

impl CandidateList {
    /// Creates an empty list that keeps the `k` best candidates.
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            candidates: Vec::new(),
        }
    }

    /// Adds a candidate subgraph. Subgraphs with the same element set are
    /// deduplicated, keeping the cheaper one. Returns `true` if the list
    /// changed.
    // lint: hot-path
    pub fn add(&mut self, subgraph: MatchingSubgraph) -> bool {
        // Fast path (`k-best(LG')`): a full list rejects anything not
        // strictly cheaper than the current k-th candidate. This also covers
        // duplicates: a stored duplicate costs at most the k-th candidate,
        // so a newcomer at or above that cost can never improve it.
        if self.candidates.len() >= self.k && subgraph.cost >= self.candidates[self.k - 1].cost {
            return false;
        }
        // Duplicate probe: cached hash first, element-set compare only on a
        // hash match.
        if let Some(idx) = self
            .candidates
            .iter()
            .position(|c| c.same_elements(&subgraph))
        {
            if subgraph.cost < self.candidates[idx].cost {
                // Improvement: move the entry to its new cost position. The
                // insertion point (after all equal-cost entries) reproduces
                // the former stable re-sort exactly.
                self.candidates.remove(idx);
                let pos = self.candidates.partition_point(|c| c.cost <= subgraph.cost);
                self.candidates.insert(pos, subgraph);
                return true;
            }
            return false;
        }
        let pos = self.candidates.partition_point(|c| c.cost <= subgraph.cost);
        self.candidates.insert(pos, subgraph);
        self.candidates.truncate(self.k);
        true
    }

    /// The cost of the k-th best candidate ("highestCost" in Algorithm 2),
    /// if at least `k` candidates exist.
    pub fn kth_cost(&self) -> Option<f64> {
        if self.candidates.len() >= self.k {
            Some(self.candidates[self.k - 1].cost)
        } else {
            None
        }
    }

    /// Number of candidates currently held (at most `k`).
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether no candidate has been found yet.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidates in ascending cost order.
    pub fn best(&self) -> &[MatchingSubgraph] {
        &self.candidates
    }

    /// Consumes the list and returns the candidates in ascending cost order.
    pub fn into_best(self) -> Vec<MatchingSubgraph> {
        self.candidates
    }
}

/// Generates the new candidate subgraphs that arise when `new_cursor`
/// (for keyword `new_cursor.keyword`) reaches an element whose per-keyword
/// path lists are `paths_at_element`.
///
/// Every combination that includes the new cursor could be enumerated (the
/// paper's "cursorCombinations(n)"), but only the `max_combinations`
/// **cheapest** ones can ever make it into the k-best candidate list, so the
/// enumeration is bounded: the per-keyword path lists are sorted by cost
/// (cursors are processed in non-decreasing cost order, Theorem 1), and a
/// best-first walk over the combination lattice yields the cheapest
/// combinations first. Skipped combinations are dominated by
/// `max_combinations` cheaper candidates through the same element and can
/// therefore never enter the top-k.
pub fn combinations_with_new_cursor(
    graph: &AugmentedSummaryGraph<'_>,
    arena: &CursorArena,
    element: SummaryElement,
    paths_at_element: &[Vec<CursorId>],
    new_cursor: CursorId,
    max_combinations: usize,
) -> Vec<MatchingSubgraph> {
    let new_keyword = arena.get(new_cursor).keyword;
    // The element is a connecting element only if every keyword has at least
    // one path ending here; the new cursor itself covers its own keyword.
    if paths_at_element
        .iter()
        .enumerate()
        .any(|(keyword, cursors)| keyword != new_keyword && cursors.is_empty())
    {
        return Vec::new();
    }

    // Per-keyword choice lists: the new cursor is fixed for its own keyword.
    let new_cursor_slice = [new_cursor];
    let choices: Vec<&[CursorId]> = paths_at_element
        .iter()
        .enumerate()
        .map(|(keyword, cursors)| {
            if keyword == new_keyword {
                &new_cursor_slice[..]
            } else {
                cursors.as_slice()
            }
        })
        .collect();

    let combos = cheapest_combinations(arena, &choices, max_combinations);

    combos
        .into_iter()
        .map(|cursor_choice| {
            let paths: Vec<SubgraphPath> = cursor_choice
                .iter()
                .enumerate()
                .map(|(keyword, &cursor_id)| {
                    let cursor = arena.get(cursor_id);
                    SubgraphPath {
                        keyword,
                        elements: arena.path(cursor_id),
                        cost: cursor.cost,
                    }
                })
                .collect();
            debug_assert!(paths.iter().all(|p| p.elements.last() == Some(&element)));
            let subgraph = MatchingSubgraph::new(element, paths);
            debug_assert!(subgraph.is_connected(graph));
            subgraph
        })
        .collect()
}

/// Best-first enumeration of the `limit` cheapest combinations (one cursor
/// per keyword) from per-keyword choice lists that are sorted by ascending
/// cursor cost. The classic "k smallest sums" walk: start from the all-zeros
/// index vector and expand by incrementing one position at a time.
fn cheapest_combinations(
    arena: &CursorArena,
    choices: &[&[CursorId]],
    limit: usize,
) -> Vec<Vec<CursorId>> {
    use std::collections::{BTreeSet, BinaryHeap};

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        indices: Vec<usize>,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by cost.
            other
                .cost
                .total_cmp(&self.cost)
                .then_with(|| other.indices.cmp(&self.indices))
        }
    }

    let cost_of = |indices: &[usize]| -> f64 {
        indices
            .iter()
            .zip(choices)
            .map(|(&i, list)| arena.get(list[i]).cost)
            .sum()
    };

    let mut out = Vec::new();
    if choices.iter().any(|list| list.is_empty()) || limit == 0 {
        return out;
    }
    let start = vec![0usize; choices.len()];
    let mut heap = BinaryHeap::new();
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    heap.push(Entry {
        cost: cost_of(&start),
        indices: start.clone(),
    });
    seen.insert(start);

    while let Some(entry) = heap.pop() {
        let combo: Vec<CursorId> = entry
            .indices
            .iter()
            .zip(choices)
            .map(|(&i, list)| list[i])
            .collect();
        out.push(combo);
        if out.len() >= limit {
            break;
        }
        for position in 0..choices.len() {
            if entry.indices[position] + 1 >= choices[position].len() {
                continue;
            }
            let mut next = entry.indices.clone();
            next[position] += 1;
            if seen.insert(next.clone()) {
                heap.push(Entry {
                    cost: cost_of(&next),
                    indices: next,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::Cursor;
    use kwsearch_keyword_index::KeywordIndex;
    use kwsearch_rdf::fixtures::figure1_graph;
    use kwsearch_rdf::DataGraph;
    use kwsearch_summary::SummaryGraph;

    fn augmented<'g>(graph: &'g DataGraph, keywords: &[&str]) -> AugmentedSummaryGraph<'g> {
        let base = SummaryGraph::build(graph);
        let index = KeywordIndex::build(graph);
        let matches = index.lookup_all(keywords);
        AugmentedSummaryGraph::build(graph, &base, &matches)
    }

    fn toy_subgraph(
        graph: &AugmentedSummaryGraph<'_>,
        cost: f64,
        extra: usize,
    ) -> MatchingSubgraph {
        let elements: Vec<SummaryElement> = graph.elements().take(2 + extra).collect();
        let connecting = *elements.last().unwrap();
        MatchingSubgraph::new(
            connecting,
            vec![SubgraphPath {
                keyword: 0,
                elements,
                cost,
            }],
        )
    }

    #[test]
    fn candidate_list_keeps_the_k_best_sorted() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb"]);
        let mut list = CandidateList::new(2);
        assert!(list.is_empty());
        list.add(toy_subgraph(&aug, 5.0, 0));
        list.add(toy_subgraph(&aug, 1.0, 1));
        list.add(toy_subgraph(&aug, 3.0, 2));
        assert_eq!(list.len(), 2);
        let costs: Vec<f64> = list.best().iter().map(|s| s.cost).collect();
        assert_eq!(costs, vec![1.0, 3.0]);
        assert_eq!(list.kth_cost(), Some(3.0));
    }

    #[test]
    fn kth_cost_requires_k_candidates() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb"]);
        let mut list = CandidateList::new(3);
        list.add(toy_subgraph(&aug, 2.0, 0));
        assert_eq!(list.kth_cost(), None);
        list.add(toy_subgraph(&aug, 4.0, 1));
        list.add(toy_subgraph(&aug, 6.0, 2));
        assert_eq!(list.kth_cost(), Some(6.0));
    }

    #[test]
    fn duplicate_element_sets_keep_the_cheaper_cost() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb"]);
        let mut list = CandidateList::new(5);
        assert!(list.add(toy_subgraph(&aug, 4.0, 0)));
        // Same elements, higher cost: rejected.
        assert!(!list.add(toy_subgraph(&aug, 9.0, 0)));
        // Same elements, lower cost: replaces the old entry.
        assert!(list.add(toy_subgraph(&aug, 2.0, 0)));
        assert_eq!(list.len(), 1);
        assert!((list.best()[0].cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_improvement_reorders_and_keeps_the_list_consistent() {
        // Regression test for the former `add` implementation, which did a
        // full re-sort plus two index rebuilds per insertion: an improvement
        // to an existing element set must move that entry to its new cost
        // position, keep exactly one entry per element set, and leave
        // `kth_cost` consistent.
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb"]);
        let mut list = CandidateList::new(3);
        assert!(list.add(toy_subgraph(&aug, 2.0, 0)));
        assert!(list.add(toy_subgraph(&aug, 5.0, 1)));
        assert!(list.add(toy_subgraph(&aug, 7.0, 2)));
        assert_eq!(list.kth_cost(), Some(7.0));
        // Improving the most expensive entry past the cheapest must reorder.
        assert!(list.add(toy_subgraph(&aug, 1.0, 2)));
        let costs: Vec<f64> = list.best().iter().map(|s| s.cost).collect();
        assert_eq!(costs, vec![1.0, 2.0, 5.0]);
        assert_eq!(list.kth_cost(), Some(5.0));
        // Exactly one entry per element set survives the improvement.
        assert_eq!(list.len(), 3);
        let mut hashes: Vec<u64> = list.best().iter().map(|s| s.element_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(
            hashes.len(),
            3,
            "no duplicate element sets after improvement"
        );
        // A worse duplicate of the improved entry is still rejected…
        assert!(!list.add(toy_subgraph(&aug, 6.0, 2)));
        // …even when the list is full and the duplicate beats the k-th cost.
        assert!(!list.add(toy_subgraph(&aug, 1.5, 2)));
        let costs: Vec<f64> = list.best().iter().map(|s| s.cost).collect();
        assert_eq!(costs, vec![1.0, 2.0, 5.0]);
        // An improvement that ties another entry's cost lands after it
        // (matching the former stable re-sort).
        assert!(list.add(toy_subgraph(&aug, 2.0, 1)));
        let costs: Vec<f64> = list.best().iter().map(|s| s.cost).collect();
        assert_eq!(costs, vec![1.0, 2.0, 2.0]);
        assert_eq!(
            list.best()[2].size(),
            3,
            "the improved entry sorts after the tie"
        );
    }

    #[test]
    fn combinations_require_paths_for_every_keyword() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb", "cimiano"]);
        let mut arena = CursorArena::new();
        let value = aug.keyword_elements()[0][0].element;
        let c0 = arena.push(Cursor {
            element: value,
            keyword: 0,
            parent: None,
            distance: 0,
            cost: 1.0,
        });
        // Keyword 1 has no path at the element yet: no combinations.
        let combos = combinations_with_new_cursor(&aug, &arena, value, &[vec![c0], vec![]], c0, 10);
        assert!(combos.is_empty());
    }

    #[test]
    fn combinations_enumerate_the_cartesian_product() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb", "institute"]);
        // Build, by hand, two alternative paths for keyword 0 and a new
        // cursor for keyword 1 that all end at the Institute class node.
        let value = aug.keyword_elements()[0][0].element;
        let name_edge = aug.neighbors(value)[0];
        let institute = aug
            .neighbors(name_edge)
            .iter()
            .copied()
            .find(|&n| n != value)
            .unwrap();

        let mut arena = CursorArena::new();
        let origin0 = arena.push(Cursor {
            element: value,
            keyword: 0,
            parent: None,
            distance: 0,
            cost: 1.0,
        });
        let via_edge = arena.push(Cursor {
            element: name_edge,
            keyword: 0,
            parent: Some(origin0),
            distance: 1,
            cost: 2.0,
        });
        let path_a = arena.push(Cursor {
            element: institute,
            keyword: 0,
            parent: Some(via_edge),
            distance: 2,
            cost: 3.0,
        });
        // A second (cheaper) arrival of keyword 0 at the institute node.
        let path_b = arena.push(Cursor {
            element: institute,
            keyword: 0,
            parent: Some(via_edge),
            distance: 2,
            cost: 2.5,
        });
        // Keyword 1 starts at the institute class node directly.
        let new_cursor = arena.push(Cursor {
            element: institute,
            keyword: 1,
            parent: None,
            distance: 0,
            cost: 0.5,
        });

        let combos = combinations_with_new_cursor(
            &aug,
            &arena,
            institute,
            &[vec![path_a, path_b], vec![]],
            new_cursor,
            10,
        );
        // The new cursor is fixed for keyword 1; keyword 0 offers two paths.
        assert_eq!(combos.len(), 2);
        let costs: Vec<f64> = combos.iter().map(|s| s.cost).collect();
        assert!(costs.contains(&3.5));
        assert!(costs.contains(&3.0));
        for combo in &combos {
            assert_eq!(combo.connecting_element, institute);
            assert_eq!(combo.keyword_count(), 2);
        }
    }
}
