//! The cost functions C1, C2 and C3 of Section V.
//!
//! All three functions share the same aggregation structure:
//!
//! * the cost of a **subgraph** is the sum of the costs of its paths
//!   (`C_G = Σ C_p`), and
//! * the cost of a **path** is the sum of the costs of its elements
//!   (`C_p = Σ c(n)`),
//!
//! so costs can be computed *locally* while a cursor extends a path — the
//! property that makes the Threshold-Algorithm-style top-k of Algorithm 2
//! possible. The functions differ only in the per-element cost `c(n)`:
//!
//! | function | element cost |
//! |----------|--------------|
//! | C1 (path length)        | `1` |
//! | C2 (popularity)         | `1 − |n_agg| / |total|` |
//! | C3 (popularity + match) | `c2(n) / s_m(n)` |

use kwsearch_summary::{AugmentedSummaryGraph, CostModel, SummaryElement};

/// Which of the paper's cost functions to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScoringFunction {
    /// C1: every element costs 1, so a subgraph's cost is its total path
    /// length.
    PathLength,
    /// C2: popularity-based element costs.
    Popularity,
    /// C3: popularity divided by the keyword matching score `s_m(n)`
    /// (elements that match the keywords well become cheaper).
    #[default]
    PopularityAndMatch,
}

impl ScoringFunction {
    /// Short name used in reports and benchmark output (`C1`, `C2`, `C3`).
    pub fn short_name(self) -> &'static str {
        match self {
            ScoringFunction::PathLength => "C1",
            ScoringFunction::Popularity => "C2",
            ScoringFunction::PopularityAndMatch => "C3",
        }
    }

    /// All scoring functions, in the order used by the effectiveness study
    /// (Fig. 4).
    pub fn all() -> [ScoringFunction; 3] {
        [
            ScoringFunction::PathLength,
            ScoringFunction::Popularity,
            ScoringFunction::PopularityAndMatch,
        ]
    }

    /// The cost `c(n)` of a single element of the augmented summary graph.
    pub fn element_cost(self, graph: &AugmentedSummaryGraph<'_>, element: SummaryElement) -> f64 {
        match self {
            ScoringFunction::PathLength => CostModel::Uniform.element_cost(graph, element),
            ScoringFunction::Popularity => CostModel::Popularity.element_cost(graph, element),
            ScoringFunction::PopularityAndMatch => {
                let base = CostModel::Popularity.element_cost(graph, element);
                let s_m = graph.match_score(element).clamp(f64::EPSILON, 1.0);
                base / s_m
            }
        }
    }

    /// The per-element costs of the whole augmented summary graph, indexed
    /// by dense element id (`AugmentedSummaryGraph::element_index`; nodes
    /// first, then edges). The exploration precomputes this once per run so
    /// the expansion loop pays one array load per neighbour instead of one
    /// cost evaluation.
    pub fn cost_table(self, graph: &AugmentedSummaryGraph<'_>) -> Vec<f64> {
        graph
            .elements()
            .map(|element| self.element_cost(graph, element))
            .collect()
    }

    /// The cost of a path given as a sequence of elements.
    pub fn path_cost(self, graph: &AugmentedSummaryGraph<'_>, path: &[SummaryElement]) -> f64 {
        path.iter().map(|&e| self.element_cost(graph, e)).sum()
    }

    /// The cost of a subgraph given as a set of paths. Shared elements are
    /// counted once per path (Section V: this biases the ranking towards
    /// tightly connected subgraphs and keeps the cost computation local).
    pub fn subgraph_cost(
        self,
        graph: &AugmentedSummaryGraph<'_>,
        paths: &[Vec<SummaryElement>],
    ) -> f64 {
        paths.iter().map(|p| self.path_cost(graph, p)).sum()
    }
}

impl std::fmt::Display for ScoringFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_keyword_index::KeywordIndex;
    use kwsearch_rdf::fixtures::figure1_graph;
    use kwsearch_rdf::DataGraph;
    use kwsearch_summary::SummaryGraph;

    fn augmented<'g>(graph: &'g DataGraph, keywords: &[&str]) -> AugmentedSummaryGraph<'g> {
        let base = SummaryGraph::build(graph);
        let index = KeywordIndex::build(graph);
        let matches = index.lookup_all(keywords);
        AugmentedSummaryGraph::build(graph, &base, &matches)
    }

    #[test]
    fn c1_counts_elements() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb"]);
        let elements: Vec<SummaryElement> = aug.elements().take(4).collect();
        assert_eq!(ScoringFunction::PathLength.path_cost(&aug, &elements), 4.0);
    }

    #[test]
    fn c2_is_cheaper_for_popular_elements_but_never_exceeds_c1() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb"]);
        for element in aug.elements() {
            let c1 = ScoringFunction::PathLength.element_cost(&aug, element);
            let c2 = ScoringFunction::Popularity.element_cost(&aug, element);
            assert!(c2 <= c1 + 1e-12);
            assert!(c2 > 0.0);
        }
    }

    #[test]
    fn c3_discounts_well_matching_keyword_elements() {
        let g = figure1_graph();
        // Second keyword has a typo.
        let aug = augmented(&g, &["aifb", "cimano"]);
        // The exact match scores s_m = 1.0, so C3 equals C2 for it.
        let exact = aug.keyword_elements()[0][0].element;
        let c2 = ScoringFunction::Popularity.element_cost(&aug, exact);
        let c3 = ScoringFunction::PopularityAndMatch.element_cost(&aug, exact);
        assert!((c2 - c3).abs() < 1e-12);
        // The fuzzy match has s_m < 1.0, so C3 makes it more expensive than C2.
        let fuzzy = aug.keyword_elements()[1][0].element;
        let c2 = ScoringFunction::Popularity.element_cost(&aug, fuzzy);
        let c3 = ScoringFunction::PopularityAndMatch.element_cost(&aug, fuzzy);
        assert!(c3 > c2);
    }

    #[test]
    fn subgraph_cost_counts_shared_elements_per_path() {
        let g = figure1_graph();
        let aug = augmented(&g, &["aifb"]);
        let shared: Vec<SummaryElement> = aug.elements().take(2).collect();
        let paths = vec![shared.clone(), shared.clone()];
        let single = ScoringFunction::PathLength.path_cost(&aug, &shared);
        let total = ScoringFunction::PathLength.subgraph_cost(&aug, &paths);
        assert_eq!(total, 2.0 * single);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(ScoringFunction::PathLength.short_name(), "C1");
        assert_eq!(ScoringFunction::Popularity.to_string(), "C2");
        assert_eq!(ScoringFunction::PopularityAndMatch.to_string(), "C3");
        assert_eq!(ScoringFunction::all().len(), 3);
        assert_eq!(
            ScoringFunction::default(),
            ScoringFunction::PopularityAndMatch
        );
    }

    #[test]
    fn costs_are_monotonic_under_path_extension() {
        // Extending a path can never decrease its cost — the property the
        // top-k termination proof relies on.
        let g = figure1_graph();
        let aug = augmented(&g, &["2006", "cimiano", "aifb"]);
        let elements: Vec<SummaryElement> = aug.elements().collect();
        for scoring in ScoringFunction::all() {
            let mut prefix_cost = 0.0;
            for (i, &e) in elements.iter().enumerate() {
                let extended = scoring.path_cost(&aug, &elements[..=i]);
                assert!(extended >= prefix_cost - 1e-12);
                prefix_cost = extended;
                let _ = e;
            }
        }
    }
}
