//! Typed search errors and the per-keyword match report.
//!
//! The engine used to report unmatched keywords as a bare `Vec<usize>` of
//! input positions, and an all-unmatched query silently produced an empty
//! outcome. Both are now explicit: every search carries one
//! [`KeywordMatch`] per input keyword (string, position, match count), and
//! a query in which *no* keyword matched any graph element fails with
//! [`SearchError::AllKeywordsUnmatched`] instead of pretending to have
//! searched.

use std::fmt;

/// How one input keyword fared in the keyword-to-element mapping phase.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct KeywordMatch {
    /// Position of the keyword in the input query (0-based).
    pub position: usize,
    /// The keyword as typed by the user.
    pub keyword: String,
    /// Number of graph elements the keyword was matched to. `0` means the
    /// keyword did not match anything and was ignored by the exploration.
    pub element_matches: usize,
}

impl KeywordMatch {
    /// Whether the keyword matched at least one graph element.
    pub fn is_matched(&self) -> bool {
        self.element_matches > 0
    }
}

impl fmt::Display for KeywordMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "keyword {} (`{}`): {} element match(es)",
            self.position, self.keyword, self.element_matches
        )
    }
}

/// Why a keyword search could not produce an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SearchError {
    /// Every keyword of a non-empty query failed to match any graph
    /// element: there is nothing to explore, and an empty result would be
    /// indistinguishable from "the graph holds no connection".
    AllKeywordsUnmatched {
        /// The per-keyword report (every entry has `element_matches == 0`).
        keywords: Vec<KeywordMatch>,
    },
}

impl SearchError {
    /// The per-keyword match report carried by the error.
    pub fn keywords(&self) -> &[KeywordMatch] {
        match self {
            SearchError::AllKeywordsUnmatched { keywords } => keywords,
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::AllKeywordsUnmatched { keywords } => {
                let names: Vec<&str> = keywords.iter().map(|k| k.keyword.as_str()).collect();
                write!(f, "no graph element matches any of the keywords {names:?}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn unmatched(position: usize, keyword: &str) -> KeywordMatch {
        KeywordMatch {
            position,
            keyword: keyword.to_string(),
            element_matches: 0,
        }
    }

    #[test]
    fn keyword_match_reports_matched_state() {
        let hit = KeywordMatch {
            position: 2,
            keyword: "cimiano".into(),
            element_matches: 3,
        };
        assert!(hit.is_matched());
        assert!(!unmatched(0, "xyzzy").is_matched());
        assert!(hit.to_string().contains("cimiano"));
        assert!(hit.to_string().contains('3'));
    }

    #[test]
    fn all_unmatched_error_lists_the_keywords() {
        let error = SearchError::AllKeywordsUnmatched {
            keywords: vec![unmatched(0, "foo"), unmatched(1, "bar")],
        };
        assert_eq!(error.keywords().len(), 2);
        let text = error.to_string();
        assert!(text.contains("foo"));
        assert!(text.contains("bar"));
        // It is a real std error.
        let _: &dyn std::error::Error = &error;
    }
}
