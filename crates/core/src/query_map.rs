//! Mapping matching subgraphs to conjunctive queries (Section VI-D).
//!
//! Every subgraph computed on the augmented summary graph is translated into
//! a conjunctive query by the following rules:
//!
//! * every node of the subgraph is associated with a distinct variable
//!   (`var(v)`) and with its label (`constant(v)`),
//! * an **A-edge** `e(v1, v2)` maps to `type(var(v1), constant(v1))` plus
//!   `e(var(v1), constant(v2))` when `v2` is a concrete value, or
//!   `e(var(v1), var(v2))` when `v2` is the artificial `value` node,
//! * an **R-edge** `e(v1, v2)` maps to `type(var(v1), constant(v1))`,
//!   `type(var(v2), constant(v2))` and `e(var(v1), var(v2))`,
//! * a **subclass** edge `subclass(v1, v2)` maps to
//!   `subclass(constant(v1), constant(v2))` (a schema-level constraint),
//! * an isolated class node (a subgraph with no incident edge in the
//!   subgraph) maps to `type(var(v), constant(v))`; an isolated value node
//!   is attached through its cheapest incident attribute edge of the
//!   augmented graph so the query remains answerable.
//!
//! `Thing` nodes represent untyped entities; they receive a variable but no
//! `type` atom (there is no `Thing` class in the data).
//!
//! All variables are distinguished by default, following the paper: "a
//! reasonable choice is to treat all query variables as distinguished".

use std::collections::{BTreeMap, BTreeSet};

use kwsearch_query::{Atom, ConjunctiveQuery, QueryTerm};
use kwsearch_summary::{
    AugmentedSummaryGraph, SummaryEdgeKind, SummaryElement, SummaryNodeId, SummaryNodeKind,
};

use crate::subgraph::MatchingSubgraph;

/// Translates a matching subgraph into a conjunctive query.
pub fn map_subgraph_to_query(
    graph: &AugmentedSummaryGraph<'_>,
    subgraph: &MatchingSubgraph,
) -> ConjunctiveQuery {
    let elements = subgraph.elements();

    // Stable variable naming: nodes in ascending id order get x0, x1, …
    let mut nodes: BTreeSet<SummaryNodeId> = elements.iter().filter_map(|e| e.as_node()).collect();
    // Edge endpoints participate in atoms even when the path ended on the
    // edge itself; make sure they have variables too.
    for element in elements {
        if let Some(edge_id) = element.as_edge() {
            let edge = graph.edge(edge_id);
            nodes.insert(edge.from);
            nodes.insert(edge.to);
        }
    }
    let variables: BTreeMap<SummaryNodeId, String> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, format!("x{i}")))
        .collect();

    let mut query = ConjunctiveQuery::new();
    let mut nodes_with_atoms: BTreeSet<SummaryNodeId> = BTreeSet::new();

    for element in elements {
        let Some(edge_id) = element.as_edge() else {
            continue;
        };
        let edge = graph.edge(edge_id);
        let predicate = graph
            .element_label(SummaryElement::Edge(edge_id))
            .to_string();
        match edge.kind {
            SummaryEdgeKind::Attribute { .. } => {
                add_type_atom(graph, &variables, &mut query, edge.from);
                let subject = QueryTerm::var(&variables[&edge.from]);
                let object = match graph.node(edge.to).kind {
                    SummaryNodeKind::ArtificialValue => QueryTerm::var(&variables[&edge.to]),
                    _ => QueryTerm::literal(node_constant(graph, edge.to)),
                };
                query.add_atom(Atom::new(predicate, subject, object));
                nodes_with_atoms.insert(edge.from);
                nodes_with_atoms.insert(edge.to);
            }
            SummaryEdgeKind::Relation { .. } => {
                add_type_atom(graph, &variables, &mut query, edge.from);
                add_type_atom(graph, &variables, &mut query, edge.to);
                query.add_atom(Atom::new(
                    predicate,
                    QueryTerm::var(&variables[&edge.from]),
                    QueryTerm::var(&variables[&edge.to]),
                ));
                nodes_with_atoms.insert(edge.from);
                nodes_with_atoms.insert(edge.to);
            }
            SummaryEdgeKind::SubClass => {
                query.add_atom(Atom::new(
                    "subclass",
                    QueryTerm::iri(node_constant(graph, edge.from)),
                    QueryTerm::iri(node_constant(graph, edge.to)),
                ));
                nodes_with_atoms.insert(edge.from);
                nodes_with_atoms.insert(edge.to);
            }
        }
    }

    // Nodes of the subgraph not yet covered by any atom (isolated keyword
    // elements, e.g. a single-class or single-value subgraph).
    for element in elements {
        let Some(node_id) = element.as_node() else {
            continue;
        };
        if nodes_with_atoms.contains(&node_id) {
            continue;
        }
        match graph.node(node_id).kind {
            SummaryNodeKind::Class { .. } => {
                add_type_atom(graph, &variables, &mut query, node_id);
            }
            SummaryNodeKind::Thing | SummaryNodeKind::ArtificialValue => {
                // No constraint can be derived from an isolated Thing or
                // artificial value node.
            }
            SummaryNodeKind::Value { .. } => {
                // Attach the value through one of its augmented attribute
                // edges so the query constrains something.
                if let Some(edge_el) = graph
                    .neighbors(SummaryElement::Node(node_id))
                    .iter()
                    .copied()
                    .find(|n| n.as_edge().is_some())
                {
                    // lint: allow(no-unwrap, reason = "the find() two lines up filtered to elements whose as_edge() is Some")
                    let edge = graph.edge(edge_el.as_edge().expect("filtered to edges"));
                    let source_var = variables
                        .get(&edge.from)
                        .cloned()
                        .unwrap_or_else(|| format!("x{}", variables.len()));
                    add_type_atom_named(graph, &source_var, &mut query, edge.from);
                    query.add_atom(Atom::new(
                        graph.element_label(edge_el).to_string(),
                        QueryTerm::var(&source_var),
                        QueryTerm::literal(node_constant(graph, node_id)),
                    ));
                }
            }
        }
    }

    query.distinguish_all();
    query
}

/// The constant associated with a node (its label).
fn node_constant(graph: &AugmentedSummaryGraph<'_>, node: SummaryNodeId) -> String {
    graph.element_label(SummaryElement::Node(node)).to_string()
}

/// Adds `type(var(node), constant(node))` for class nodes; `Thing` and value
/// nodes get no type atom.
fn add_type_atom(
    graph: &AugmentedSummaryGraph<'_>,
    variables: &BTreeMap<SummaryNodeId, String>,
    query: &mut ConjunctiveQuery,
    node: SummaryNodeId,
) {
    let var = variables
        .get(&node)
        // lint: allow(no-unwrap, reason = "the caller populates `variables` with every node of the subgraph before mapping atoms")
        .expect("every subgraph node has a variable");
    add_type_atom_named(graph, var, query, node);
}

fn add_type_atom_named(
    graph: &AugmentedSummaryGraph<'_>,
    var: &str,
    query: &mut ConjunctiveQuery,
    node: SummaryNodeId,
) {
    if let SummaryNodeKind::Class { .. } = graph.node(node).kind {
        query.add_atom(Atom::new(
            "type",
            QueryTerm::var(var),
            QueryTerm::iri(node_constant(graph, node)),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchConfig;
    use crate::exploration::Explorer;
    use kwsearch_keyword_index::KeywordIndex;
    use kwsearch_query::evaluate;
    use kwsearch_rdf::fixtures::figure1_graph;
    use kwsearch_rdf::DataGraph;
    use kwsearch_summary::SummaryGraph;

    fn augmented<'g>(graph: &'g DataGraph, keywords: &[&str]) -> AugmentedSummaryGraph<'g> {
        let base = SummaryGraph::build(graph);
        let index = KeywordIndex::build(graph);
        let matches = index.lookup_all(keywords);
        AugmentedSummaryGraph::build(graph, &base, &matches)
    }

    fn best_query(graph: &DataGraph, keywords: &[&str]) -> ConjunctiveQuery {
        let aug = augmented(graph, keywords);
        let outcome = Explorer::new(&aug, SearchConfig::default()).run();
        assert!(
            !outcome.subgraphs.is_empty(),
            "no subgraph for {keywords:?}"
        );
        map_subgraph_to_query(&aug, &outcome.subgraphs[0])
    }

    #[test]
    fn the_running_example_produces_the_papers_query_shape() {
        let g = figure1_graph();
        let q = best_query(&g, &["2006", "cimiano", "aifb"]);
        let predicates = q.predicates();
        assert!(predicates.contains("type"));
        assert!(predicates.contains("year"));
        assert!(predicates.contains("author"));
        assert!(predicates.contains("name"));
        assert!(predicates.contains("worksAt"));
        let constants = q.constants();
        assert!(constants.contains("Publication"));
        assert!(constants.contains("Researcher"));
        assert!(constants.contains("Institute"));
        assert!(constants.contains("2006"));
        assert!(constants.contains("P. Cimiano"));
        assert!(constants.contains("AIFB"));
        assert!(!q.distinguished().is_empty(), "all variables distinguished");
    }

    #[test]
    fn the_generated_query_actually_answers_on_the_data_graph() {
        let g = figure1_graph();
        let q = best_query(&g, &["2006", "cimiano", "aifb"]);
        let answers = evaluate(&g, &q).expect("query evaluates");
        assert!(
            !answers.is_empty(),
            "the generated query must retrieve the publication:\n{q}"
        );
        // pub1URI must appear in some binding of some answer.
        let pub1 = g.entity("pub1URI").unwrap();
        assert!(answers.rows().iter().any(|row| row.contains(&pub1)));
    }

    #[test]
    fn single_class_keyword_maps_to_a_type_query() {
        let g = figure1_graph();
        let q = best_query(&g, &["publications"]);
        assert_eq!(q.len(), 1);
        let atom = &q.atoms()[0];
        assert_eq!(atom.predicate, "type");
        assert_eq!(atom.object, QueryTerm::iri("Publication"));
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn single_value_keyword_maps_to_an_attribute_query() {
        let g = figure1_graph();
        let q = best_query(&g, &["aifb"]);
        let predicates = q.predicates();
        assert!(predicates.contains("name"));
        let answers = evaluate(&g, &q).unwrap();
        assert!(!answers.is_empty());
        let inst1 = g.entity("inst1URI").unwrap();
        assert!(answers.rows().iter().any(|row| row.contains(&inst1)));
    }

    #[test]
    fn attribute_keyword_maps_to_a_variable_valued_atom() {
        let g = figure1_graph();
        let q = best_query(&g, &["year"]);
        let year_atom = q
            .atoms()
            .iter()
            .find(|a| a.predicate == "year")
            .expect("year atom present");
        assert!(
            year_atom.object.is_variable(),
            "artificial value becomes a variable"
        );
        let answers = evaluate(&g, &q).unwrap();
        assert_eq!(answers.len(), 2, "both publications have a year");
    }

    #[test]
    fn relation_keyword_maps_to_typed_relation_atoms() {
        let g = figure1_graph();
        let q = best_query(&g, &["author"]);
        let author_atom = q
            .atoms()
            .iter()
            .find(|a| a.predicate == "author")
            .expect("author atom present");
        assert!(author_atom.subject.is_variable());
        assert!(author_atom.object.is_variable());
        assert!(q.constants().contains("Publication"));
        assert!(q.constants().contains("Researcher"));
        let answers = evaluate(&g, &q).unwrap();
        assert!(!answers.is_empty());
    }

    #[test]
    fn two_keyword_query_connects_through_a_relation() {
        let g = figure1_graph();
        let q = best_query(&g, &["cimiano", "publication"]);
        let predicates = q.predicates();
        assert!(predicates.contains("author"));
        assert!(predicates.contains("name"));
        let answers = evaluate(&g, &q).unwrap();
        assert!(!answers.is_empty());
    }

    #[test]
    fn variables_are_stable_and_deduplicated() {
        let g = figure1_graph();
        let q = best_query(&g, &["2006", "cimiano", "aifb"]);
        let vars = q.variables();
        // x, y, z style: one variable per subgraph node that carries atoms.
        assert!(vars.len() >= 3);
        assert!(vars.iter().all(|v| v.starts_with('x')));
        // No duplicate atoms.
        let mut atoms = q.atoms().to_vec();
        let before = atoms.len();
        atoms.dedup();
        assert_eq!(before, atoms.len());
    }
}
