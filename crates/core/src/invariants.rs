//! The `debug-invariants` runtime sanitizer switch.
//!
//! The lint engine (`kwsearch-lint`) enforces the *statically* recognizable
//! half of the engine's determinism contract; this module gates the
//! *dynamic* half — cheap invariant checks at the seams no token-level rule
//! can see:
//!
//! * **pop monotonicity** — cursor-heap pops in
//!   [`ExplorationState::step`](crate::ExplorationState) come out in
//!   non-decreasing cost order (the property Theorem 1 builds on),
//! * **certificate inequality** — every query a
//!   [`SearchSession`](crate::SearchSession) emits costs no more than the
//!   cheapest cursor still pending (the rank certificate itself),
//! * **replay equality** — a cache-hit session replaying a stored emission
//!   log produces exactly what honest exploration over the cached snapshot
//!   would (a shadow exploration cross-checks each replayed query), and a
//!   drained session writing its log back finds any already-present log
//!   bit-identical (first-writer-wins race),
//! * **LRU bounds** — the augmentation cache never exceeds its capacity and
//!   its incremental heap-byte estimate matches a recount.
//!
//! The checks run only in debug builds (`cfg(debug_assertions)`) — release
//! binaries compile them out entirely, which `perf_topk` asserts so BENCH
//! numbers can never silently include sanitizer overhead. Within debug
//! builds the switch defaults to **on** and can be disabled with
//! `KWSEARCH_DEBUG_INVARIANTS=0` (also `off`, `false`, or empty); CI forces
//! it on for one full test-suite run, determinism suite included.

/// Whether sanitizer checks are active. In release builds this is a
/// compile-time `false` (the checks vanish); in debug builds it reads
/// `KWSEARCH_DEBUG_INVARIANTS` once and caches the verdict.
#[cfg(debug_assertions)]
pub fn enabled() -> bool {
    use std::sync::OnceLock;
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("KWSEARCH_DEBUG_INVARIANTS") {
        Ok(value) => !matches!(value.trim(), "" | "0" | "off" | "false"),
        Err(_) => true,
    })
}

/// Whether sanitizer checks are active (release build: never — the constant
/// folds every check away).
#[cfg(not(debug_assertions))]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

#[cfg(test)]
mod tests {
    #[test]
    fn release_builds_compile_the_sanitizer_out() {
        // Under `cargo test` (debug) the switch is env-controlled; what must
        // always hold is that it never reports active in a release build.
        if !cfg!(debug_assertions) {
            assert!(!super::enabled());
        }
    }
}
