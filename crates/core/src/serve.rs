//! Concurrent serving of one prepared graph from a worker pool.
//!
//! The read path of the engine is immutable (see [`PreparedGraph`]), so
//! serving many keyword searches at once needs no sharding, copying or
//! locking of the indexes: a [`SearchService`] owns an
//! `Arc<PreparedGraph>`, spawns a fixed pool of `std::thread` workers, and
//! feeds them from a submission queue. Each worker runs ordinary
//! [`SearchSession`](crate::SearchSession)s against the shared preparation —
//! the augmentation cache inside the prepared graph is shared too, so hot
//! keyword combinations are matched and augmented once, pool-wide.
//!
//! Results are delivered through per-request [`SearchTicket`]s:
//!
//! ```
//! use kwsearch_core::serve::{SearchRequest, SearchService};
//! use kwsearch_core::{KeywordSearchEngine, SearchConfig};
//! use kwsearch_rdf::fixtures::figure1_graph;
//!
//! let engine = KeywordSearchEngine::builder(figure1_graph()).build();
//! let service = SearchService::start(
//!     engine.prepared().clone(),
//!     SearchConfig::default(),
//!     4, // workers
//! );
//! let tickets: Vec<_> = [vec!["cimiano".to_string()], vec!["aifb".to_string()]]
//!     .into_iter()
//!     .map(|keywords| service.submit(SearchRequest::new(keywords)))
//!     .collect();
//! for ticket in tickets {
//!     let response = ticket.wait();
//!     assert!(!response.result.unwrap().queries.is_empty());
//! }
//! ```
//!
//! Determinism is unaffected by concurrency: sessions share nothing mutable
//! but the internally synchronized cache, whose hits are bit-identical to
//! fresh runs — the cross-thread determinism suite
//! (`tests/concurrent_determinism.rs`) pins exactly this.

use std::collections::VecDeque;
// Reply tickets are per-request rendezvous channels between exactly one
// worker and one caller; the model scenarios drive the job queue directly,
// so `mpsc` stays a std primitive outside the facade.
// lint: allow(no-raw-sync, reason = "mpsc reply channels are per-request rendezvous, never contended; model scenarios bypass them")
use std::sync::{mpsc, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::SearchConfig;
use crate::engine::{AnswerPhase, SearchOutcome};
use crate::error::SearchError;
use crate::prepared::PreparedGraph;
use crate::sync::{lock_unpoisoned, Arc, Condvar, Mutex};

/// One keyword search to be served by a [`SearchService`] worker.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// The keyword query.
    pub keywords: Vec<String>,
    /// Per-request configuration; `None` uses the service default.
    pub config: Option<SearchConfig>,
    /// When set, the worker interleaves the answer phase with the
    /// exploration ([`SearchSession::answers_until`](crate::SearchSession::answers_until))
    /// until at least this many answers exist, and the returned outcome
    /// covers only the queries the answer phase reached (no drain past the
    /// target).
    pub min_answers: Option<usize>,
    /// Test seam: makes the serving worker panic mid-job (see
    /// [`SearchRequest::with_injected_panic`]).
    inject_panic: bool,
}

impl SearchRequest {
    /// A plain top-k request with the service's default configuration.
    pub fn new<S: AsRef<str>>(keywords: impl IntoIterator<Item = S>) -> Self {
        Self {
            keywords: keywords
                .into_iter()
                .map(|k| k.as_ref().to_string())
                .collect(),
            config: None,
            min_answers: None,
            inject_panic: false,
        }
    }

    /// Test seam: the worker that picks this request up panics mid-job
    /// instead of serving it. Exists so the pool's panic containment
    /// (drop-drain with a dead worker, poisoned-lock recovery) can be
    /// exercised from tests; serving code never sets it.
    #[doc(hidden)]
    pub fn with_injected_panic(mut self) -> Self {
        self.inject_panic = true;
        self
    }

    /// Overrides the search configuration for this request.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Asks for the interleaved answer phase until `min_answers` answers.
    pub fn with_min_answers(mut self, min_answers: usize) -> Self {
        self.min_answers = Some(min_answers);
        self
    }
}

/// What a worker produced for one [`SearchRequest`].
#[derive(Debug)]
pub struct SearchResponse {
    /// The search outcome, or the typed search error.
    pub result: Result<SearchOutcome, SearchError>,
    /// The answer phase, when the request asked for one.
    pub answer_phase: Option<AnswerPhase>,
    /// Wall-clock service time on the worker (queueing excluded).
    pub service_time: Duration,
    /// Index of the worker that served the request.
    pub worker: usize,
}

/// The receiving end of one submitted request.
#[must_use = "a dropped ticket discards the response"]
#[derive(Debug)]
pub struct SearchTicket {
    receiver: mpsc::Receiver<SearchResponse>,
}

impl SearchTicket {
    /// Blocks until the response is available.
    ///
    /// # Panics
    ///
    /// Panics if the serving worker died without replying (a worker panic —
    /// a bug, not an expected condition).
    pub fn wait(self) -> SearchResponse {
        self.receiver
            .recv()
            // lint: allow(no-unwrap, reason = "documented panic: a worker dying without replying is a bug surfaced here, not an expected condition")
            .expect("search worker dropped the reply channel without responding")
    }
}

pub(crate) struct Job {
    pub(crate) request: SearchRequest,
    pub(crate) reply: mpsc::Sender<SearchResponse>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Cumulative serving metrics, kept consistent with the queue they describe
/// (see [`SearchService::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted by [`SearchService::submit`] since startup.
    pub jobs_submitted: u64,
    /// Requests handed to a worker since startup.
    pub jobs_served: u64,
    /// The deepest the submission queue has ever been.
    pub peak_queue_depth: usize,
}

/// The submission queue: a mutex-protected deque with a condition variable,
/// closed on shutdown so idle workers wake up and exit, plus a metrics
/// mutex updated while the queue lock is held.
///
/// Lock order (workspace-wide, pinned by the `lock-order` lint's
/// acquisition graph): queue `state` **before** `metrics`. The nesting is
/// deliberate — `peak_queue_depth` and the submitted/served counters must
/// snapshot the queue they describe, so they are updated under the queue
/// lock rather than after it.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    metrics: Mutex<ServiceStats>,
}

impl JobQueue {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            metrics: Mutex::new(ServiceStats::default()),
        }
    }

    pub(crate) fn push(&self, job: Job) {
        let mut state = lock_unpoisoned(&self.state);
        debug_assert!(!state.closed, "submit after shutdown");
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        // lint: allow(lock-discipline, reason = "documented order: queue state before metrics; the depth snapshot must match the queue it measures")
        let mut metrics = lock_unpoisoned(&self.metrics);
        metrics.jobs_submitted += 1;
        metrics.peak_queue_depth = metrics.peak_queue_depth.max(depth);
        drop(metrics);
        drop(state);
        self.ready.notify_one();
    }

    // lint: wait-loop
    #[cfg(not(all(kwsearch_model, kwsearch_model_mutation)))]
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                // lint: allow(lock-discipline, reason = "documented order: queue state before metrics, so served counts never outrun the queue")
                let mut metrics = lock_unpoisoned(&self.metrics);
                metrics.jobs_served += 1;
                drop(metrics);
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Seeded mutation (b): acquires `metrics` before `state` — the inverse
    /// of `push`'s documented order, on the one nested pair that genuinely
    /// races it (workers pop while submitters push). The model checker must
    /// report the resulting AB-BA deadlock (`tests/model_mutations.rs`),
    /// and the `lock-order` lint would flag the cycle were the inverted
    /// edge not explicitly waived as a fixture.
    // lint: wait-loop
    #[cfg(all(kwsearch_model, kwsearch_model_mutation))]
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut metrics = lock_unpoisoned(&self.metrics);
        // lint: allow(lock-order, reason = "seeded mutation fixture: the inverted edge exists to be caught by the model checker, not to be ordered")
        let mut state = lock_unpoisoned(&self.state); // lint: allow(lock-discipline, reason = "seeded mutation fixture, compiled only under kwsearch_model_mutation")
        loop {
            if let Some(job) = state.jobs.pop_front() {
                metrics.jobs_served += 1;
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn close(&self) {
        let mut state = lock_unpoisoned(&self.state);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    pub(crate) fn len(&self) -> usize {
        lock_unpoisoned(&self.state).jobs.len()
    }

    pub(crate) fn stats(&self) -> ServiceStats {
        *lock_unpoisoned(&self.metrics)
    }
}

/// A `std::thread` worker pool serving keyword searches against one shared
/// [`PreparedGraph`].
///
/// Workers run until the service is dropped (or [`Self::shutdown`] is
/// called): outstanding submissions are drained, then the threads are
/// joined. The service is `Send + Sync`, so it can itself be shared — e.g.
/// behind an `Arc` in a network front-end — and submissions from many
/// producer threads interleave safely.
pub struct SearchService {
    prepared: Arc<PreparedGraph>,
    default_config: SearchConfig,
    queue: Arc<JobQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl SearchService {
    /// Starts a pool of `workers` threads (at least one) serving sessions
    /// against `prepared` with `default_config`.
    pub fn start(
        prepared: Arc<PreparedGraph>,
        default_config: SearchConfig,
        workers: usize,
    ) -> Self {
        let queue = Arc::new(JobQueue::new());
        let workers = (0..workers.max(1))
            .map(|worker| {
                let prepared = Arc::clone(&prepared);
                let queue = Arc::clone(&queue);
                let default_config = default_config.clone();
                std::thread::Builder::new()
                    .name(format!("kwsearch-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &prepared, &default_config, &queue))
                    // lint: allow(no-unwrap, reason = "thread spawning fails only on resource exhaustion at pool startup; no graceful degradation exists")
                    .expect("spawning a search worker thread")
            })
            .collect();
        Self {
            prepared,
            default_config,
            queue,
            workers,
        }
    }

    /// Enqueues a request and returns the ticket its response arrives on.
    pub fn submit(&self, request: SearchRequest) -> SearchTicket {
        let (reply, receiver) = mpsc::channel();
        self.queue.push(Job { request, reply });
        SearchTicket { receiver }
    }

    /// Convenience: submits a plain top-k request for `keywords`.
    pub fn submit_keywords<S: AsRef<str>>(&self, keywords: &[S]) -> SearchTicket {
        self.submit(SearchRequest::new(keywords.iter().map(AsRef::as_ref)))
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of submitted requests not yet picked up by a worker.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The shared preparation the pool serves.
    pub fn prepared(&self) -> &Arc<PreparedGraph> {
        &self.prepared
    }

    /// The configuration used for requests without an explicit one.
    pub fn default_config(&self) -> &SearchConfig {
        &self.default_config
    }

    /// Cumulative serving metrics: submissions, served jobs, and the peak
    /// submission-queue depth.
    pub fn stats(&self) -> ServiceStats {
        self.queue.stats()
    }

    /// Closes the submission queue, drains outstanding requests and joins
    /// the workers. Dropping the service does the same; this form merely
    /// makes the blocking explicit.
    pub fn shutdown(self) {}
}

impl Drop for SearchService {
    fn drop(&mut self) {
        // Close (sets the flag and notifies) strictly before joining, so
        // idle workers wake up and exit instead of waiting forever.
        self.queue.close();
        // Join *every* worker before re-raising anything: resuming the
        // first panic mid-loop would leak the remaining handles and skip
        // draining their outstanding jobs.
        let mut first_panic = None;
        for worker in self.workers.drain(..) {
            if let Err(panic) = worker.join() {
                if first_panic.is_none() {
                    first_panic = Some(panic);
                } else {
                    eprintln!("kwsearch-core: additional search worker panicked: {panic:?}");
                }
            }
        }
        if let Some(panic) = first_panic {
            // A panicking worker poisoned nothing shared (sessions are
            // per-request); surface the panic here instead of hiding it —
            // unless this drop is itself running during an unwind (e.g. the
            // caller's `SearchTicket::wait` panicked about the dead worker),
            // where a second panic would abort the process and destroy the
            // original message.
            if std::thread::panicking() {
                eprintln!("kwsearch-core: search worker panicked: {panic:?}");
            } else {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl std::fmt::Debug for SearchService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchService")
            .field("workers", &self.workers.len())
            .field("pending", &self.pending())
            .field("default_config", &self.default_config)
            .finish_non_exhaustive()
    }
}

fn worker_loop(
    worker: usize,
    prepared: &PreparedGraph,
    default_config: &SearchConfig,
    queue: &JobQueue,
) {
    while let Some(job) = queue.pop() {
        let Job { request, reply } = job;
        if request.inject_panic {
            panic!("injected worker panic (test seam)");
        }
        let start = Instant::now();
        let config = request
            .config
            .clone()
            .unwrap_or_else(|| default_config.clone());
        let (result, answer_phase) = match prepared.session(&request.keywords, config) {
            Ok(mut session) => match request.min_answers {
                Some(min_answers) => {
                    let phase = session.answers_until(min_answers);
                    (Ok(session.into_partial_outcome()), Some(phase))
                }
                None => (Ok(session.into_outcome()), None),
            },
            Err(error) => (Err(error), None),
        };
        // A closed ticket (submitter gave up) is not an error.
        let _ = reply.send(SearchResponse {
            result,
            answer_phase,
            service_time: start.elapsed(),
            worker,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::KeywordSearchEngine;
    use kwsearch_rdf::fixtures::figure1_graph;

    fn service(workers: usize) -> SearchService {
        let engine = KeywordSearchEngine::builder(figure1_graph()).build();
        SearchService::start(engine.prepared().clone(), SearchConfig::default(), workers)
    }

    #[test]
    fn serves_concurrent_submissions_identically_to_direct_sessions() {
        let service = service(4);
        let direct = service
            .prepared()
            .session(&["2006", "cimiano", "aifb"], SearchConfig::default())
            .unwrap()
            .into_outcome();
        let tickets: Vec<_> = (0..8)
            .map(|_| service.submit_keywords(&["2006", "cimiano", "aifb"]))
            .collect();
        for ticket in tickets {
            let response = ticket.wait();
            let outcome = response.result.expect("the running example matches");
            assert_eq!(outcome.queries.len(), direct.queries.len());
            for (got, want) in outcome.queries.iter().zip(direct.queries.iter()) {
                assert_eq!(got.cost.to_bits(), want.cost.to_bits());
                assert_eq!(got.query.canonicalized(), want.query.canonicalized());
            }
            assert!(response.worker < service.worker_count());
        }
    }

    #[test]
    fn min_answers_requests_carry_an_answer_phase() {
        let service = service(2);
        let response = service
            .submit(SearchRequest::new(["publications"]).with_min_answers(2))
            .wait();
        let phase = response.answer_phase.expect("answer phase was requested");
        assert!(phase.total_answers() >= 2, "two publications exist");
        let outcome = response.result.unwrap();
        assert_eq!(outcome.queries.len(), phase.queries_processed);
    }

    #[test]
    fn per_request_config_overrides_the_default() {
        let service = service(2);
        let response = service
            .submit(
                SearchRequest::new(["cimiano", "publication"]).with_config(SearchConfig::with_k(2)),
            )
            .wait();
        assert!(response.result.unwrap().queries.len() <= 2);
    }

    #[test]
    fn unmatched_keywords_surface_as_typed_errors() {
        let service = service(1);
        let response = service.submit_keywords(&["xyzzy-unknown"]).wait();
        let SearchError::AllKeywordsUnmatched { keywords } = response.result.unwrap_err();
        assert_eq!(keywords.len(), 1);
    }

    #[test]
    fn shutdown_drains_outstanding_requests() {
        let service = service(1);
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit_keywords(&["publications"]))
            .collect();
        service.shutdown();
        for ticket in tickets {
            assert!(ticket.wait().result.is_ok());
        }
    }

    #[test]
    fn stats_track_submissions_served_jobs_and_peak_depth() {
        let service = service(1);
        let tickets: Vec<_> = (0..3)
            .map(|_| service.submit_keywords(&["publications"]))
            .collect();
        for ticket in tickets {
            let _ = ticket.wait().result.unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.jobs_submitted, 3);
        assert_eq!(stats.jobs_served, 3);
        assert!(
            (1..=3).contains(&stats.peak_queue_depth),
            "peak depth reflects real queueing: {stats:?}"
        );
    }

    #[test]
    fn drop_completes_when_a_worker_panicked_mid_job() {
        // One worker dies on the injected panic; the other keeps serving.
        // Drop must still join both and then re-raise the worker's panic —
        // the hang this guards against is a drop that waits on a thread
        // that will never see the close flag, or that leaks live workers
        // after the first panicked join.
        let service = service(2);
        let poisoned = service.submit(SearchRequest::new(["publications"]).with_injected_panic());
        let healthy: Vec<_> = (0..4)
            .map(|_| service.submit_keywords(&["publications"]))
            .collect();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || service.shutdown()));
        let message = *result
            .expect_err("the worker panic is re-raised from drop")
            .downcast::<&str>()
            .expect("the injected panic carries its message");
        assert_eq!(message, "injected worker panic (test seam)");
        // The panicked job's ticket is dead; the drain guarantee still
        // holds for every job a live worker could reach.
        for ticket in healthy {
            assert!(ticket.wait().result.is_ok());
        }
        assert!(
            poisoned.receiver.recv().is_err(),
            "no reply from a dead worker"
        );
    }

    #[test]
    fn workers_share_the_augmentation_cache() {
        let service = service(4);
        let tickets: Vec<_> = (0..12)
            .map(|_| service.submit_keywords(&["cimiano", "aifb"]))
            .collect();
        for ticket in tickets {
            let _ = ticket.wait().result.unwrap();
        }
        let stats = service.prepared().augmentation_cache().stats();
        // 12 identical requests: at least the non-racing majority hit.
        assert!(stats.hits >= 8, "expected shared-cache hits, got {stats:?}");
    }
}
