//! Concurrent serving of one prepared graph from a worker pool.
//!
//! The read path of the engine is immutable (see [`PreparedGraph`]), so
//! serving many keyword searches at once needs no sharding, copying or
//! locking of the indexes: a [`SearchService`] owns an
//! `Arc<PreparedGraph>`, spawns a fixed pool of `std::thread` workers, and
//! feeds them from a submission queue. Each worker runs ordinary
//! [`SearchSession`](crate::SearchSession)s against the shared preparation —
//! the augmentation cache inside the prepared graph is shared too, so hot
//! keyword combinations are matched and augmented once, pool-wide.
//!
//! Admission is controlled: the submission queue is bounded
//! ([`DEFAULT_QUEUE_CAPACITY`], or [`SearchService::start_with_capacity`]),
//! and a full queue rejects the request with [`ServeError::Rejected`]
//! instead of queueing unboundedly. Requests may also carry a deadline
//! ([`SearchRequest::with_deadline`]): a request whose deadline expires
//! while still queued is answered with [`ServeError::DeadlineExceeded`]
//! without searching, and one that expires mid-exploration is cancelled
//! cooperatively (the exploration loop polls the deadline between cursor
//! pops) and answered the same way.
//!
//! Results are delivered through per-request [`SearchTicket`]s:
//!
//! ```
//! use kwsearch_core::serve::{SearchRequest, SearchService};
//! use kwsearch_core::{KeywordSearchEngine, SearchConfig};
//! use kwsearch_rdf::fixtures::figure1_graph;
//!
//! let engine = KeywordSearchEngine::builder(figure1_graph()).build();
//! let service = SearchService::start(
//!     engine.prepared().clone(),
//!     SearchConfig::default(),
//!     4, // workers
//! );
//! let tickets: Vec<_> = [vec!["cimiano".to_string()], vec!["aifb".to_string()]]
//!     .into_iter()
//!     .map(|keywords| service.submit(SearchRequest::new(keywords)).unwrap())
//!     .collect();
//! for ticket in tickets {
//!     let response = ticket.wait();
//!     assert!(!response.result.unwrap().queries.is_empty());
//! }
//! ```
//!
//! Determinism is unaffected by concurrency: sessions share nothing mutable
//! but the internally synchronized cache, whose hits are bit-identical to
//! fresh runs — the cross-thread determinism suite
//! (`tests/concurrent_determinism.rs`) pins exactly this.

use std::collections::VecDeque;
// Reply tickets are per-request rendezvous channels between exactly one
// worker and one caller; the model scenarios drive the job queue directly,
// so `mpsc` stays a std primitive outside the facade.
// lint: allow(no-raw-sync, reason = "mpsc reply channels are per-request rendezvous, never contended; model scenarios bypass them")
use std::sync::{mpsc, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::SearchConfig;
use crate::engine::{AnswerPhase, SearchOutcome};
use crate::error::SearchError;
use crate::prepared::PreparedGraph;
use crate::sync::{lock_unpoisoned, Arc, Condvar, Mutex};

/// Queue capacity used by [`SearchService::start`]: deep enough that no
/// realistic burst against a healthy pool is turned away, small enough that
/// a stalled pool rejects instead of buffering requests without bound (see
/// [`ServeError::Rejected`]).
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Why the serving layer could not produce a [`SearchOutcome`] for a
/// request: the shared failure contract of [`SearchService`] and the
/// sharded coordinator ([`crate::shard::ShardedService`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control turned the request away: the submission queue was
    /// at capacity. The request was never enqueued; retry later or against
    /// a larger pool.
    Rejected {
        /// The capacity of the queue that was full.
        queue_capacity: usize,
    },
    /// The request's deadline expired before a complete result existed —
    /// either while the request was still queued, or mid-exploration (the
    /// partial stream is discarded: a deadline caller asked for bounded
    /// latency, not a silently truncated top-k).
    DeadlineExceeded {
        /// The deadline the request carried.
        deadline: Duration,
    },
    /// The search itself failed with a typed [`SearchError`].
    Search(SearchError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected { queue_capacity } => write!(
                f,
                "request rejected: submission queue at capacity ({queue_capacity})"
            ),
            Self::DeadlineExceeded { deadline } => {
                write!(f, "request deadline ({deadline:?}) exceeded")
            }
            Self::Search(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Search(error) => Some(error),
            _ => None,
        }
    }
}

impl From<SearchError> for ServeError {
    fn from(error: SearchError) -> Self {
        Self::Search(error)
    }
}

/// One keyword search to be served by a [`SearchService`] worker.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// The keyword query.
    pub keywords: Vec<String>,
    /// Per-request configuration; `None` uses the service default.
    pub config: Option<SearchConfig>,
    /// Latency budget, measured from submission (so queueing counts
    /// against it); `None` means no deadline. See
    /// [`ServeError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// When set, the worker interleaves the answer phase with the
    /// exploration ([`SearchSession::answers_until`](crate::SearchSession::answers_until))
    /// until at least this many answers exist, and the returned outcome
    /// covers only the queries the answer phase reached (no drain past the
    /// target).
    pub min_answers: Option<usize>,
    /// Test seam: makes the serving worker panic mid-job (see
    /// [`SearchRequest::with_injected_panic`]).
    inject_panic: bool,
}

impl SearchRequest {
    /// A plain top-k request with the service's default configuration.
    pub fn new<S: AsRef<str>>(keywords: impl IntoIterator<Item = S>) -> Self {
        Self {
            keywords: keywords
                .into_iter()
                .map(|k| k.as_ref().to_string())
                .collect(),
            config: None,
            deadline: None,
            min_answers: None,
            inject_panic: false,
        }
    }

    /// Gives the request a latency budget, measured from submission: if no
    /// complete result exists when it expires, the response is
    /// [`ServeError::DeadlineExceeded`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Test seam: the worker that picks this request up panics mid-job
    /// instead of serving it. Exists so the pool's panic containment
    /// (drop-drain with a dead worker, poisoned-lock recovery) can be
    /// exercised from tests; serving code never sets it.
    #[doc(hidden)]
    pub fn with_injected_panic(mut self) -> Self {
        self.inject_panic = true;
        self
    }

    /// Overrides the search configuration for this request.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Asks for the interleaved answer phase until `min_answers` answers.
    pub fn with_min_answers(mut self, min_answers: usize) -> Self {
        self.min_answers = Some(min_answers);
        self
    }
}

/// What a worker produced for one [`SearchRequest`].
#[derive(Debug)]
pub struct SearchResponse {
    /// The search outcome, or the typed serving error.
    pub result: Result<SearchOutcome, ServeError>,
    /// The answer phase, when the request asked for one.
    pub answer_phase: Option<AnswerPhase>,
    /// Wall-clock service time on the worker (queueing excluded).
    pub service_time: Duration,
    /// Index of the worker that served the request.
    pub worker: usize,
}

/// The receiving end of one submitted request.
#[must_use = "a dropped ticket discards the response"]
#[derive(Debug)]
pub struct SearchTicket {
    receiver: mpsc::Receiver<SearchResponse>,
}

impl SearchTicket {
    /// Blocks until the response is available.
    ///
    /// # Panics
    ///
    /// Panics if the serving worker died without replying (a worker panic —
    /// a bug, not an expected condition).
    pub fn wait(self) -> SearchResponse {
        self.receiver
            .recv()
            // lint: allow(no-unwrap, reason = "documented panic: a worker dying without replying is a bug surfaced here, not an expected condition")
            .expect("search worker dropped the reply channel without responding")
    }
}

pub(crate) struct Job {
    pub(crate) request: SearchRequest,
    pub(crate) reply: mpsc::Sender<SearchResponse>,
    /// Absolute form of `request.deadline`, fixed at submission so the
    /// budget covers time spent queued, not just time on a worker.
    pub(crate) deadline: Option<Instant>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Cumulative serving metrics, kept consistent with the queue they describe
/// (see [`SearchService::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted by [`SearchService::submit`] since startup.
    pub jobs_submitted: u64,
    /// Requests handed to a worker since startup.
    pub jobs_served: u64,
    /// Requests turned away by admission control (full queue) since
    /// startup. Rejected requests are not counted in `jobs_submitted`.
    pub jobs_rejected: u64,
    /// The deepest the submission queue has ever been.
    pub peak_queue_depth: usize,
}

/// The submission queue: a mutex-protected deque with a condition variable,
/// closed on shutdown so idle workers wake up and exit, plus a metrics
/// mutex updated while the queue lock is held.
///
/// Lock order (workspace-wide, pinned by the `lock-order` lint's
/// acquisition graph): queue `state` **before** `metrics`. The nesting is
/// deliberate — `peak_queue_depth` and the submitted/served counters must
/// snapshot the queue they describe, so they are updated under the queue
/// lock rather than after it.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    metrics: Mutex<ServiceStats>,
    /// Admission bound: pushes beyond this depth are rejected.
    capacity: usize,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            metrics: Mutex::new(ServiceStats::default()),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn push(&self, job: Job) -> Result<(), ServeError> {
        self.push_all(std::iter::once(job))
    }

    /// Enqueues a batch atomically — all jobs under one lock acquisition
    /// and one wakeup, and all-or-nothing against the capacity bound, so a
    /// partially admitted batch can never exist.
    pub(crate) fn push_batch(&self, jobs: Vec<Job>) -> Result<(), ServeError> {
        if jobs.is_empty() {
            return Ok(());
        }
        self.push_all(jobs.into_iter())
    }

    fn push_all(&self, jobs: impl ExactSizeIterator<Item = Job>) -> Result<(), ServeError> {
        let count = jobs.len() as u64;
        let mut state = lock_unpoisoned(&self.state);
        debug_assert!(!state.closed, "submit after shutdown");
        if state.jobs.len() + jobs.len() > self.capacity {
            // lint: allow(lock-discipline, reason = "documented order: queue state before metrics; the rejection count must snapshot the queue that caused it")
            let mut metrics = lock_unpoisoned(&self.metrics);
            metrics.jobs_rejected += count;
            drop(metrics);
            return Err(ServeError::Rejected {
                queue_capacity: self.capacity,
            });
        }
        state.jobs.extend(jobs);
        let depth = state.jobs.len();
        // lint: allow(lock-discipline, reason = "documented order: queue state before metrics; the depth snapshot must match the queue it measures")
        let mut metrics = lock_unpoisoned(&self.metrics);
        metrics.jobs_submitted += count;
        metrics.peak_queue_depth = metrics.peak_queue_depth.max(depth);
        drop(metrics);
        drop(state);
        if count == 1 {
            self.ready.notify_one();
        } else {
            self.ready.notify_all();
        }
        Ok(())
    }

    // lint: wait-loop
    #[cfg(not(all(kwsearch_model, kwsearch_model_mutation)))]
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                // lint: allow(lock-discipline, reason = "documented order: queue state before metrics, so served counts never outrun the queue")
                let mut metrics = lock_unpoisoned(&self.metrics);
                metrics.jobs_served += 1;
                drop(metrics);
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Seeded mutation (b): acquires `metrics` before `state` — the inverse
    /// of `push`'s documented order, on the one nested pair that genuinely
    /// races it (workers pop while submitters push). The model checker must
    /// report the resulting AB-BA deadlock (`tests/model_mutations.rs`),
    /// and the `lock-order` lint would flag the cycle were the inverted
    /// edge not explicitly waived as a fixture.
    // lint: wait-loop
    #[cfg(all(kwsearch_model, kwsearch_model_mutation))]
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut metrics = lock_unpoisoned(&self.metrics);
        // lint: allow(lock-order, reason = "seeded mutation fixture: the inverted edge exists to be caught by the model checker, not to be ordered")
        let mut state = lock_unpoisoned(&self.state); // lint: allow(lock-discipline, reason = "seeded mutation fixture, compiled only under kwsearch_model_mutation")
        loop {
            if let Some(job) = state.jobs.pop_front() {
                metrics.jobs_served += 1;
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn close(&self) {
        let mut state = lock_unpoisoned(&self.state);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    pub(crate) fn len(&self) -> usize {
        lock_unpoisoned(&self.state).jobs.len()
    }

    pub(crate) fn stats(&self) -> ServiceStats {
        *lock_unpoisoned(&self.metrics)
    }
}

/// A `std::thread` worker pool serving keyword searches against one shared
/// [`PreparedGraph`].
///
/// Workers run until the service is dropped (or [`Self::shutdown`] is
/// called): outstanding submissions are drained, then the threads are
/// joined. The service is `Send + Sync`, so it can itself be shared — e.g.
/// behind an `Arc` in a network front-end — and submissions from many
/// producer threads interleave safely.
pub struct SearchService {
    prepared: Arc<PreparedGraph>,
    default_config: SearchConfig,
    queue: Arc<JobQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl SearchService {
    /// Starts a pool of `workers` threads (at least one) serving sessions
    /// against `prepared` with `default_config`, admitting up to
    /// [`DEFAULT_QUEUE_CAPACITY`] queued requests.
    pub fn start(
        prepared: Arc<PreparedGraph>,
        default_config: SearchConfig,
        workers: usize,
    ) -> Self {
        Self::start_with_capacity(prepared, default_config, workers, DEFAULT_QUEUE_CAPACITY)
    }

    /// [`Self::start`] with an explicit submission-queue capacity (at least
    /// one): submissions beyond `queue_capacity` outstanding requests are
    /// rejected with [`ServeError::Rejected`].
    pub fn start_with_capacity(
        prepared: Arc<PreparedGraph>,
        default_config: SearchConfig,
        workers: usize,
        queue_capacity: usize,
    ) -> Self {
        let queue = Arc::new(JobQueue::new(queue_capacity));
        let workers = (0..workers.max(1))
            .map(|worker| {
                let prepared = Arc::clone(&prepared);
                let queue = Arc::clone(&queue);
                let default_config = default_config.clone();
                std::thread::Builder::new()
                    .name(format!("kwsearch-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &prepared, &default_config, &queue))
                    // lint: allow(no-unwrap, reason = "thread spawning fails only on resource exhaustion at pool startup; no graceful degradation exists")
                    .expect("spawning a search worker thread")
            })
            .collect();
        Self {
            prepared,
            default_config,
            queue,
            workers,
        }
    }

    /// Enqueues a request and returns the ticket its response arrives on,
    /// or [`ServeError::Rejected`] when the queue is at capacity. The
    /// request's deadline clock starts now, not when a worker picks it up.
    pub fn submit(&self, request: SearchRequest) -> Result<SearchTicket, ServeError> {
        let (reply, receiver) = mpsc::channel();
        let deadline = request.deadline.map(|budget| Instant::now() + budget);
        self.queue.push(Job {
            request,
            reply,
            deadline,
        })?;
        Ok(SearchTicket { receiver })
    }

    /// Enqueues a batch of requests atomically: one queue-lock acquisition
    /// and one pool wakeup for the whole batch, and admission is
    /// all-or-nothing — either every request fits under the capacity bound
    /// (tickets returned in submission order) or none is enqueued.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = SearchRequest>,
    ) -> Result<Vec<SearchTicket>, ServeError> {
        let now = Instant::now();
        let mut jobs = Vec::new();
        let mut tickets = Vec::new();
        for request in requests {
            let (reply, receiver) = mpsc::channel();
            let deadline = request.deadline.map(|budget| now + budget);
            jobs.push(Job {
                request,
                reply,
                deadline,
            });
            tickets.push(SearchTicket { receiver });
        }
        self.queue.push_batch(jobs)?;
        Ok(tickets)
    }

    /// Convenience: submits a plain top-k request for `keywords`.
    pub fn submit_keywords<S: AsRef<str>>(
        &self,
        keywords: &[S],
    ) -> Result<SearchTicket, ServeError> {
        self.submit(SearchRequest::new(keywords.iter().map(AsRef::as_ref)))
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of submitted requests not yet picked up by a worker.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The admission bound: submissions beyond this many outstanding
    /// requests are rejected.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// The shared preparation the pool serves.
    pub fn prepared(&self) -> &Arc<PreparedGraph> {
        &self.prepared
    }

    /// The configuration used for requests without an explicit one.
    pub fn default_config(&self) -> &SearchConfig {
        &self.default_config
    }

    /// Cumulative serving metrics: submissions, served jobs, and the peak
    /// submission-queue depth.
    pub fn stats(&self) -> ServiceStats {
        self.queue.stats()
    }

    /// Closes the submission queue, drains outstanding requests and joins
    /// the workers. Dropping the service does the same; this form merely
    /// makes the blocking explicit.
    pub fn shutdown(self) {}
}

impl Drop for SearchService {
    fn drop(&mut self) {
        // Close (sets the flag and notifies) strictly before joining, so
        // idle workers wake up and exit instead of waiting forever.
        self.queue.close();
        // Join *every* worker before re-raising anything: resuming the
        // first panic mid-loop would leak the remaining handles and skip
        // draining their outstanding jobs.
        let mut first_panic = None;
        for worker in self.workers.drain(..) {
            if let Err(panic) = worker.join() {
                if first_panic.is_none() {
                    first_panic = Some(panic);
                } else {
                    eprintln!("kwsearch-core: additional search worker panicked: {panic:?}");
                }
            }
        }
        if let Some(panic) = first_panic {
            // A panicking worker poisoned nothing shared (sessions are
            // per-request); surface the panic here instead of hiding it —
            // unless this drop is itself running during an unwind (e.g. the
            // caller's `SearchTicket::wait` panicked about the dead worker),
            // where a second panic would abort the process and destroy the
            // original message.
            if std::thread::panicking() {
                eprintln!("kwsearch-core: search worker panicked: {panic:?}");
            } else {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl std::fmt::Debug for SearchService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchService")
            .field("workers", &self.workers.len())
            .field("pending", &self.pending())
            .field("default_config", &self.default_config)
            .finish_non_exhaustive()
    }
}

fn worker_loop(
    worker: usize,
    prepared: &PreparedGraph,
    default_config: &SearchConfig,
    queue: &JobQueue,
) {
    while let Some(job) = queue.pop() {
        let Job {
            request,
            reply,
            deadline,
        } = job;
        if request.inject_panic {
            panic!("injected worker panic (test seam)");
        }
        let start = Instant::now();
        let deadline_error = || ServeError::DeadlineExceeded {
            // Jobs carry an absolute deadline only when the request had a
            // budget, so the unwrap-to-zero is unreachable in practice.
            deadline: request.deadline.unwrap_or(Duration::ZERO),
        };
        // A request that spent its whole budget queued is answered without
        // searching at all — tail-latency control means shedding work the
        // caller has already given up on.
        if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
            let _ = reply.send(SearchResponse {
                result: Err(deadline_error()),
                answer_phase: None,
                service_time: start.elapsed(),
                worker,
            });
            continue;
        }
        let config = request
            .config
            .clone()
            .unwrap_or_else(|| default_config.clone());
        let (result, answer_phase) = match prepared.session(&request.keywords, config) {
            Ok(mut session) => {
                session.set_deadline(deadline);
                match request.min_answers {
                    Some(min_answers) => {
                        let phase = session.answers_until(min_answers);
                        if session.aborted() {
                            (Err(deadline_error()), None)
                        } else {
                            (Ok(session.into_partial_outcome()), Some(phase))
                        }
                    }
                    None => {
                        // Drain by hand instead of `into_outcome` so an
                        // abort can still be observed on the session: a
                        // deadline hit mid-stream discards the partial
                        // prefix rather than passing it off as a top-k.
                        while session.next_query().is_some() {}
                        if session.aborted() {
                            (Err(deadline_error()), None)
                        } else {
                            (Ok(session.into_partial_outcome()), None)
                        }
                    }
                }
            }
            Err(error) => (Err(ServeError::Search(error)), None),
        };
        // A closed ticket (submitter gave up) is not an error.
        let _ = reply.send(SearchResponse {
            result,
            answer_phase,
            service_time: start.elapsed(),
            worker,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::KeywordSearchEngine;
    use kwsearch_rdf::fixtures::figure1_graph;

    fn service(workers: usize) -> SearchService {
        let engine = KeywordSearchEngine::builder(figure1_graph()).build();
        SearchService::start(engine.prepared().clone(), SearchConfig::default(), workers)
    }

    #[test]
    fn serves_concurrent_submissions_identically_to_direct_sessions() {
        let service = service(4);
        let direct = service
            .prepared()
            .session(&["2006", "cimiano", "aifb"], SearchConfig::default())
            .unwrap()
            .into_outcome();
        let tickets: Vec<_> = (0..8)
            .map(|_| {
                service
                    .submit_keywords(&["2006", "cimiano", "aifb"])
                    .unwrap()
            })
            .collect();
        for ticket in tickets {
            let response = ticket.wait();
            let outcome = response.result.expect("the running example matches");
            assert_eq!(outcome.queries.len(), direct.queries.len());
            for (got, want) in outcome.queries.iter().zip(direct.queries.iter()) {
                assert_eq!(got.cost.to_bits(), want.cost.to_bits());
                assert_eq!(got.query.canonicalized(), want.query.canonicalized());
            }
            assert!(response.worker < service.worker_count());
        }
    }

    #[test]
    fn min_answers_requests_carry_an_answer_phase() {
        let service = service(2);
        let response = service
            .submit(SearchRequest::new(["publications"]).with_min_answers(2))
            .unwrap()
            .wait();
        let phase = response.answer_phase.expect("answer phase was requested");
        assert!(phase.total_answers() >= 2, "two publications exist");
        let outcome = response.result.unwrap();
        assert_eq!(outcome.queries.len(), phase.queries_processed);
    }

    #[test]
    fn per_request_config_overrides_the_default() {
        let service = service(2);
        let response = service
            .submit(
                SearchRequest::new(["cimiano", "publication"]).with_config(SearchConfig::with_k(2)),
            )
            .unwrap()
            .wait();
        assert!(response.result.unwrap().queries.len() <= 2);
    }

    #[test]
    fn unmatched_keywords_surface_as_typed_errors() {
        let service = service(1);
        let response = service.submit_keywords(&["xyzzy-unknown"]).unwrap().wait();
        let ServeError::Search(SearchError::AllKeywordsUnmatched { keywords }) =
            response.result.unwrap_err()
        else {
            panic!("expected a search error");
        };
        assert_eq!(keywords.len(), 1);
    }

    #[test]
    fn shutdown_drains_outstanding_requests() {
        let service = service(1);
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit_keywords(&["publications"]).unwrap())
            .collect();
        service.shutdown();
        for ticket in tickets {
            assert!(ticket.wait().result.is_ok());
        }
    }

    #[test]
    fn stats_track_submissions_served_jobs_and_peak_depth() {
        let service = service(1);
        let tickets: Vec<_> = (0..3)
            .map(|_| service.submit_keywords(&["publications"]).unwrap())
            .collect();
        for ticket in tickets {
            let _ = ticket.wait().result.unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.jobs_submitted, 3);
        assert_eq!(stats.jobs_served, 3);
        assert!(
            (1..=3).contains(&stats.peak_queue_depth),
            "peak depth reflects real queueing: {stats:?}"
        );
    }

    #[test]
    fn drop_completes_when_a_worker_panicked_mid_job() {
        // One worker dies on the injected panic; the other keeps serving.
        // Drop must still join both and then re-raise the worker's panic —
        // the hang this guards against is a drop that waits on a thread
        // that will never see the close flag, or that leaks live workers
        // after the first panicked join.
        let service = service(2);
        let poisoned = service
            .submit(SearchRequest::new(["publications"]).with_injected_panic())
            .unwrap();
        let healthy: Vec<_> = (0..4)
            .map(|_| service.submit_keywords(&["publications"]).unwrap())
            .collect();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || service.shutdown()));
        let message = *result
            .expect_err("the worker panic is re-raised from drop")
            .downcast::<&str>()
            .expect("the injected panic carries its message");
        assert_eq!(message, "injected worker panic (test seam)");
        // The panicked job's ticket is dead; the drain guarantee still
        // holds for every job a live worker could reach.
        for ticket in healthy {
            assert!(ticket.wait().result.is_ok());
        }
        assert!(
            poisoned.receiver.recv().is_err(),
            "no reply from a dead worker"
        );
    }

    #[test]
    fn workers_share_the_augmentation_cache() {
        let service = service(4);
        let tickets: Vec<_> = (0..12)
            .map(|_| service.submit_keywords(&["cimiano", "aifb"]).unwrap())
            .collect();
        for ticket in tickets {
            let _ = ticket.wait().result.unwrap();
        }
        let stats = service.prepared().augmentation_cache().stats();
        // 12 identical requests: at least the non-racing majority hit.
        assert!(stats.hits >= 8, "expected shared-cache hits, got {stats:?}");
    }

    #[test]
    fn a_full_queue_rejects_submissions_with_the_typed_error() {
        // Deterministic construction of a stalled pool: the only worker
        // dies on an injected panic, so nothing ever drains the queue and
        // it can be filled to capacity without racing a consumer.
        let engine = KeywordSearchEngine::builder(figure1_graph()).build();
        let service = SearchService::start_with_capacity(
            engine.prepared().clone(),
            SearchConfig::default(),
            1,
            3,
        );
        assert_eq!(service.queue_capacity(), 3);
        let kill = service
            .submit(SearchRequest::new(["publications"]).with_injected_panic())
            .unwrap();
        // Wait until the worker has picked the poison job up (the queue
        // length drops to zero), so capacity is measured on queued jobs
        // only, never on the one in flight.
        while service.pending() > 0 {
            std::thread::yield_now();
        }
        let _parked: Vec<_> = (0..3)
            .map(|_| service.submit_keywords(&["publications"]).unwrap())
            .collect();
        let rejected = service.submit_keywords(&["publications"]);
        assert_eq!(
            rejected.map(|_| ()).unwrap_err(),
            ServeError::Rejected { queue_capacity: 3 }
        );
        assert_eq!(service.stats().jobs_rejected, 1);
        // Shutdown re-raises the injected panic; the parked tickets die
        // with the queue (their jobs were closed out, never served).
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || service.shutdown()));
        assert!(result.is_err(), "the worker panic is re-raised from drop");
        assert!(kill.receiver.recv().is_err(), "no reply from a dead worker");
    }

    #[test]
    fn an_expired_deadline_is_a_typed_error_not_a_truncated_result() {
        let service = service(2);
        let response = service
            .submit(SearchRequest::new(["2006", "cimiano", "aifb"]).with_deadline(Duration::ZERO))
            .unwrap()
            .wait();
        assert_eq!(
            response.result.unwrap_err(),
            ServeError::DeadlineExceeded {
                deadline: Duration::ZERO
            }
        );
        assert!(response.answer_phase.is_none());
        // A request without a deadline on the same service is unaffected.
        let ok = service.submit_keywords(&["publications"]).unwrap().wait();
        assert!(ok.result.is_ok());
    }

    #[test]
    fn batch_submission_is_all_or_nothing() {
        let engine = KeywordSearchEngine::builder(figure1_graph()).build();
        let service = SearchService::start_with_capacity(
            engine.prepared().clone(),
            SearchConfig::default(),
            1,
            2,
        );
        let kill = service
            .submit(SearchRequest::new(["publications"]).with_injected_panic())
            .unwrap();
        while service.pending() > 0 {
            std::thread::yield_now();
        }
        // Three requests against capacity two: the whole batch is refused,
        // and none of it reached the queue.
        let oversized = service.submit_batch((0..3).map(|_| SearchRequest::new(["publications"])));
        assert_eq!(
            oversized.map(|_| ()).unwrap_err(),
            ServeError::Rejected { queue_capacity: 2 }
        );
        assert_eq!(service.pending(), 0, "a rejected batch leaves no residue");
        assert_eq!(service.stats().jobs_rejected, 3);
        // A fitting batch is admitted whole.
        let fits = service
            .submit_batch((0..2).map(|_| SearchRequest::new(["publications"])))
            .unwrap();
        assert_eq!(fits.len(), 2);
        assert_eq!(service.pending(), 2);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || service.shutdown()));
        assert!(result.is_err(), "the worker panic is re-raised from drop");
        assert!(kill.receiver.recv().is_err(), "no reply from a dead worker");
    }
}
