//! Resumable, streaming search sessions.
//!
//! The paper's top-k exploration is an *anytime* algorithm: candidate
//! queries pop off the cursor queue in ascending cost order, so the best
//! query is known long before the k-th. A [`SearchSession`] exposes that
//! property instead of hiding it behind a batch call: it owns the augmented
//! summary graph and the suspended
//! [`ExplorationState`], and hands out
//! ranked queries one at a time, each one *provably* rank-correct the moment
//! it is returned (its cost is at most the cheapest remaining cursor cost —
//! the same certificate the batch top-k termination uses).
//!
//! ```
//! use kwsearch_core::KeywordSearchEngine;
//! use kwsearch_rdf::fixtures::figure1_graph;
//!
//! let engine = KeywordSearchEngine::builder(figure1_graph()).k(5).build();
//! let mut session = engine.session(&["2006", "cimiano", "aifb"]).unwrap();
//! let best = session.next_query().expect("the running example matches");
//! assert_eq!(best.rank, 1);
//! // The rest of the top-k is computed only if somebody asks for it.
//! let outcome = session.into_outcome();
//! assert!(outcome.queries.len() > 1);
//! ```

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use kwsearch_summary::AugmentedSummaryGraph;

use crate::config::SearchConfig;
use crate::engine::{AnswerPhase, KeywordSearchEngine, SearchOutcome};
use crate::error::{KeywordMatch, SearchError};
use crate::exploration::ExplorationState;
use crate::query_map::map_subgraph_to_query;
use crate::result::RankedQuery;

/// A resumable, streaming keyword search over one engine.
///
/// Created by [`KeywordSearchEngine::session`] (or
/// [`KeywordSearchEngine::session_with`] for an explicit configuration).
/// The session runs the keyword-to-element mapping and the summary-graph
/// augmentation eagerly — those are cheap and shared by every result — and
/// then advances the cursor exploration *lazily*:
///
/// * [`Self::next_query`] pops the next ranked query, exploring only as far
///   as needed to certify it,
/// * [`Self::answers_until`] interleaves the streaming answer phase with the
///   exploration: each query is evaluated the moment it is certified,
/// * [`Self::raise_k`] re-arms a (possibly drained) session for more
///   results,
/// * [`Self::into_outcome`] drains the rest and returns the familiar batch
///   [`SearchOutcome`] — [`KeywordSearchEngine::search`] is exactly this.
#[must_use = "a search session does nothing until queries are pulled from it"]
pub struct SearchSession<'e> {
    engine: &'e KeywordSearchEngine,
    config: SearchConfig,
    keywords: Vec<KeywordMatch>,
    augmented: AugmentedSummaryGraph<'e>,
    state: ExplorationState,
    /// Queries emitted so far, in rank order (rank 1 first).
    queries: Vec<RankedQuery>,
    /// Canonical forms of the emitted queries, for deduplication: different
    /// subgraphs can normalise to the same conjunctive query.
    seen: BTreeSet<String>,
    /// Set once the stream is known to be complete for the current `k`.
    drained: bool,
    /// Counters of exploration runs retired by [`Self::raise_k`]: the
    /// session's reported stats cover all the work it performed, matching
    /// the accumulated `exploration_time`.
    prior_stats: crate::exploration::ExplorationStats,
    keyword_mapping_time: Duration,
    /// Accumulated augmentation + exploration + query-mapping time across
    /// all advancing calls (the lazy equivalent of the batch
    /// `exploration_time`).
    exploration_time: Duration,
}

impl<'e> SearchSession<'e> {
    pub(crate) fn start<S: AsRef<str>>(
        engine: &'e KeywordSearchEngine,
        keywords: &[S],
        config: SearchConfig,
    ) -> Result<Self, SearchError> {
        // 1. Keyword-to-element mapping.
        let mapping_start = Instant::now();
        let all_matches = engine.keyword_index().lookup_all(keywords);
        let keyword_mapping_time = mapping_start.elapsed();

        let report: Vec<KeywordMatch> = keywords
            .iter()
            .zip(&all_matches)
            .enumerate()
            .map(|(position, (keyword, matches))| KeywordMatch {
                position,
                keyword: keyword.as_ref().to_string(),
                element_matches: matches.len(),
            })
            .collect();
        if !report.is_empty() && report.iter().all(|k| !k.is_matched()) {
            return Err(SearchError::AllKeywordsUnmatched { keywords: report });
        }
        let matches: Vec<_> = all_matches.into_iter().filter(|m| !m.is_empty()).collect();

        // 2. Augmentation + the seeded exploration state.
        let exploration_start = Instant::now();
        let augmented = AugmentedSummaryGraph::build(engine.graph(), engine.summary(), &matches);
        let state = ExplorationState::new(&augmented, &config);
        let exploration_time = exploration_start.elapsed();

        Ok(Self {
            engine,
            config,
            keywords: report,
            augmented,
            state,
            queries: Vec::new(),
            seen: BTreeSet::new(),
            drained: false,
            prior_stats: crate::exploration::ExplorationStats::default(),
            keyword_mapping_time,
            exploration_time,
        })
    }

    /// The engine this session searches.
    pub fn engine(&self) -> &'e KeywordSearchEngine {
        self.engine
    }

    /// The configuration the session runs with (its `k` bounds the stream).
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The per-keyword match report (one entry per input keyword).
    pub fn keyword_matches(&self) -> &[KeywordMatch] {
        &self.keywords
    }

    /// The keywords that did not match any graph element (and were ignored
    /// by the exploration) — the session-side mirror of
    /// [`SearchOutcome::unmatched_keywords`].
    pub fn unmatched_keywords(&self) -> impl Iterator<Item = &KeywordMatch> {
        self.keywords.iter().filter(|k| !k.is_matched())
    }

    /// The queries emitted so far, in rank order.
    pub fn queries(&self) -> &[RankedQuery] {
        &self.queries
    }

    /// The exploration counters so far, covering *all* the work the session
    /// performed — including runs retired by [`Self::raise_k`] — so they
    /// stay consistent with the accumulated exploration time. After
    /// [`Self::next_query`] returned the rank-1 result, `stats().queue_pops`
    /// is typically a small fraction of what a drained session reports —
    /// that gap is what streaming buys.
    pub fn stats(&self) -> crate::exploration::ExplorationStats {
        let mut stats = self.prior_stats;
        stats.absorb(self.state.stats());
        stats
    }

    /// Advances the stream by one emitted query and returns its index in
    /// `self.queries` — the clone-free core of [`Self::next_query`], also
    /// used by the drain paths ([`Self::into_outcome`],
    /// [`Self::answers_until`]) so batch consumption allocates no copies.
    fn advance(&mut self) -> Option<usize> {
        if self.drained {
            return None;
        }
        let start = Instant::now();
        let result = loop {
            if self.queries.len() >= self.config.k {
                self.drained = true;
                break None;
            }
            let Some(subgraph) = self.state.next_certified(&self.augmented, &self.config) else {
                self.drained = true;
                break None;
            };
            // Query mapping + deduplication: different subgraphs can
            // normalise to the same conjunctive query; only the first
            // (cheapest) occurrence is emitted.
            let query = map_subgraph_to_query(&self.augmented, &subgraph);
            let canonical = query.canonicalized().to_string();
            if !self.seen.insert(canonical) {
                continue;
            }
            self.queries.push(RankedQuery {
                rank: self.queries.len() + 1,
                cost: subgraph.cost,
                query,
                subgraph,
            });
            break Some(self.queries.len() - 1);
        };
        self.exploration_time += start.elapsed();
        result
    }

    /// Pops the next ranked query, advancing the exploration only until the
    /// result is provably rank-correct: its subgraph cost is at most the
    /// cost of the cheapest unexpanded cursor, so no still-undiscovered
    /// subgraph can outrank it. Returns `None` once `k` queries were
    /// emitted or the exploration is exhausted.
    ///
    /// The certificate has one exception, shared with batch `search`: if
    /// the run was truncated by the `max_cursors` safety valve
    /// (`stats().hit_cursor_limit`), the remaining results are the best
    /// found so far, not provably the best overall.
    ///
    /// The returned query is a clone; the session keeps its own copy
    /// (see [`Self::queries`]).
    pub fn next_query(&mut self) -> Option<RankedQuery> {
        self.advance().map(|index| self.queries[index].clone())
    }

    /// Re-arms the session for more results: raises the result bound to
    /// `new_k` so the stream continues past the previous limit, including on
    /// a session that already returned `None`. Values of `new_k` at or below
    /// the current `k` are ignored (already-emitted queries cannot be
    /// taken back).
    ///
    /// The exploration's pruning bounds (candidate-list capacity, the
    /// per-(element, keyword) path cap, the combination limit) all scale
    /// with `k`, so the cursor walk is deterministically re-run at the new
    /// `k` — reusing the keyword mapping and the augmented summary graph.
    /// Already-delivered queries are never re-emitted (the replayed
    /// certified subgraphs map to canonical forms the dedup set already
    /// holds) and keep their ranks, so a session raised from `k` to `k'`
    /// emits exactly what a fresh `k'` session would. The one caveat: on
    /// exact cost ties a candidate the smaller `k`'s tighter pruning had
    /// suppressed can surface *between* already-delivered results in the
    /// fresh-`k'` order; the raised session still emits it — nothing is
    /// dropped — just at a later rank than the fresh session would assign.
    pub fn raise_k(&mut self, new_k: usize) {
        if new_k <= self.config.k {
            return;
        }
        self.config.k = new_k;
        let start = Instant::now();
        self.prior_stats.absorb(self.state.stats());
        self.state = ExplorationState::new(&self.augmented, &self.config);
        self.drained = false;
        self.exploration_time += start.elapsed();
    }

    /// Interleaves the streaming answer phase with the exploration: pops
    /// queries with [`Self::next_query`] and evaluates each one the moment
    /// it is certified, stopping as soon as at least `min_answers` answers
    /// exist (each evaluation is limited to the still-missing count, like
    /// [`KeywordSearchEngine::answer_queries`]). The paper's Fig. 5
    /// interaction, without ever computing queries the answer phase does
    /// not reach.
    ///
    /// Consumes the stream from its current position. The interleaved
    /// exploration slices accrue to the session's exploration time (they
    /// surface in [`Self::into_outcome`]'s `exploration_time`), and the
    /// reported `answer_time` covers only the evaluation side — the two
    /// halves of the Fig. 5 total stay disjoint and summable, exactly like
    /// the batch `search` + [`KeywordSearchEngine::answer_queries`] split.
    /// A `min_answers` of zero returns an empty phase without touching the
    /// stream (the batch loop, by contrast, always probes its first query).
    pub fn answers_until(&mut self, min_answers: usize) -> AnswerPhase {
        let start = Instant::now();
        let exploration_before = self.exploration_time;
        let mut answers = Vec::new();
        let mut total = 0usize;
        let mut queries_processed = 0usize;
        while total < min_answers {
            let Some(index) = self.advance() else {
                break;
            };
            queries_processed += 1;
            let engine = self.engine;
            if let Ok(set) = engine.answers(&self.queries[index].query, Some(min_answers - total)) {
                total += set.len();
                answers.push(set);
            }
        }
        let interleaved = self.exploration_time - exploration_before;
        AnswerPhase {
            answers,
            queries_processed,
            answer_time: start.elapsed().saturating_sub(interleaved),
        }
    }

    /// Drains the remaining queries and returns the batch [`SearchOutcome`]
    /// — the shape the old `search` call produced, including the timing
    /// split and the exploration counters.
    ///
    /// The queries are identical to a full [`Explorer`](crate::Explorer)
    /// run, bit for bit, but the exploration *counters* can come out
    /// slightly lower: the drain stops at the k-th certification
    /// (`cost <= bound`), whereas the batch loop keeps popping until the
    /// strict threshold (`kth cost < bound`) fires, so on cost ties the
    /// drained session skips a few trailing pops (and may report
    /// `terminated_by_threshold = false` where the batch run reports
    /// `true`). Counters are comparable across sessions, not across the
    /// two driving modes.
    pub fn into_outcome(mut self) -> SearchOutcome {
        while self.advance().is_some() {}
        let exploration = self.stats();
        SearchOutcome {
            queries: self.queries,
            keywords: self.keywords,
            exploration,
            augmented_elements: self.augmented.element_count(),
            keyword_mapping_time: self.keyword_mapping_time,
            exploration_time: self.exploration_time,
        }
    }
}

impl std::fmt::Debug for SearchSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchSession")
            .field("config", &self.config)
            .field("keywords", &self.keywords)
            .field("emitted", &self.queries.len())
            .field("drained", &self.drained)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::fixtures::figure1_graph;

    fn engine() -> KeywordSearchEngine {
        KeywordSearchEngine::builder(figure1_graph()).build()
    }

    #[test]
    fn next_query_streams_the_batch_result() {
        let engine = engine();
        let batch = engine.search(&["cimiano", "publication"]).unwrap();
        let mut session = engine.session(&["cimiano", "publication"]).unwrap();
        let mut streamed = Vec::new();
        while let Some(q) = session.next_query() {
            streamed.push(q);
        }
        assert_eq!(streamed.len(), batch.queries.len());
        for (got, want) in streamed.iter().zip(batch.queries.iter()) {
            assert_eq!(got.rank, want.rank);
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            assert_eq!(got.query.canonicalized(), want.query.canonicalized());
        }
        // Drained for good.
        assert!(session.next_query().is_none());
    }

    #[test]
    fn first_query_needs_no_more_pops_than_the_full_run() {
        let engine = engine();
        let mut session = engine.session(&["2006", "cimiano", "aifb"]).unwrap();
        let first = session.next_query().expect("the running example matches");
        assert_eq!(first.rank, 1);
        let first_pops = session.stats().queue_pops;

        let drained = engine
            .session(&["2006", "cimiano", "aifb"])
            .unwrap()
            .into_outcome();
        assert!(
            first_pops <= drained.exploration.queue_pops,
            "certifying rank 1 ({first_pops} pops) must not exceed the drained run ({})",
            drained.exploration.queue_pops
        );
    }

    #[test]
    fn raise_k_after_draining_matches_a_fresh_larger_session() {
        let engine = engine();
        let keywords = ["cimiano", "publication"];

        let mut session = engine
            .session_with(&keywords, SearchConfig::with_k(3))
            .unwrap();
        let mut collected = Vec::new();
        while let Some(q) = session.next_query() {
            collected.push(q);
        }
        assert_eq!(collected.len(), 3);
        session.raise_k(10);
        while let Some(q) = session.next_query() {
            collected.push(q);
        }

        let fresh = engine
            .session_with(&keywords, SearchConfig::with_k(10))
            .unwrap()
            .into_outcome();
        assert_eq!(collected.len(), fresh.queries.len());
        for (got, want) in collected.iter().zip(fresh.queries.iter()) {
            assert_eq!(got.rank, want.rank);
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            assert_eq!(got.query.canonicalized(), want.query.canonicalized());
        }
    }

    #[test]
    fn raise_k_with_smaller_or_equal_k_is_a_no_op() {
        let engine = engine();
        let mut session = engine
            .session_with(&["publications"], SearchConfig::with_k(3))
            .unwrap();
        let first = session.next_query().unwrap();
        session.raise_k(3);
        session.raise_k(1);
        assert_eq!(session.config().k, 3);
        let second = session.next_query().unwrap();
        assert!(first.cost <= second.cost + 1e-12);
    }

    #[test]
    fn answers_until_interleaves_evaluation_with_exploration() {
        let engine = engine();
        let mut session = engine.session(&["publications"]).unwrap();
        let phase = session.answers_until(2);
        assert!(phase.total_answers() >= 2, "two publications exist");
        assert!(phase.queries_processed >= 1);
        // The session kept every emitted query; the stream can continue.
        assert_eq!(session.queries().len(), phase.queries_processed);
        let outcome = session.into_outcome();
        assert!(outcome.queries.len() >= phase.queries_processed);
    }

    #[test]
    fn session_reports_keyword_matches() {
        let engine = engine();
        let session = engine.session(&["cimiano", "xyzzy-unknown"]).unwrap();
        let report = session.keyword_matches();
        assert_eq!(report.len(), 2);
        assert!(report[0].is_matched());
        assert!(!report[1].is_matched());
        assert_eq!(report[1].keyword, "xyzzy-unknown");
    }
}
