//! Resumable, streaming search sessions.
//!
//! The paper's top-k exploration is an *anytime* algorithm: candidate
//! queries pop off the cursor queue in ascending cost order, so the best
//! query is known long before the k-th. A [`SearchSession`] exposes that
//! property instead of hiding it behind a batch call: it owns the augmented
//! summary graph and the suspended
//! [`ExplorationState`], and hands out
//! ranked queries one at a time, each one *provably* rank-correct the moment
//! it is returned (its cost is at most the cheapest remaining cursor cost —
//! the same certificate the batch top-k termination uses).
//!
//! ```
//! use kwsearch_core::KeywordSearchEngine;
//! use kwsearch_rdf::fixtures::figure1_graph;
//!
//! let engine = KeywordSearchEngine::builder(figure1_graph()).k(5).build();
//! let mut session = engine.session(&["2006", "cimiano", "aifb"]).unwrap();
//! let best = session.next_query().expect("the running example matches");
//! assert_eq!(best.rank, 1);
//! // The rest of the top-k is computed only if somebody asks for it.
//! let outcome = session.into_outcome();
//! assert!(outcome.queries.len() > 1);
//! ```

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use kwsearch_summary::AugmentedSummaryGraph;

use crate::cache::{AugmentationKey, CacheProbe, CachedAugmentation};
use crate::config::SearchConfig;
use crate::engine::{AnswerPhase, SearchOutcome};
use crate::error::{KeywordMatch, SearchError};
use crate::exploration::ExplorationState;
use crate::prepared::PreparedGraph;
use crate::query_map::map_subgraph_to_query;
use crate::result::RankedQuery;
use crate::sync::CancelToken;

/// A resumable, streaming keyword search over one engine.
///
/// Created by [`KeywordSearchEngine::session`](crate::KeywordSearchEngine::session) (or
/// [`KeywordSearchEngine::session_with`](crate::KeywordSearchEngine::session_with) for an explicit configuration).
/// The session runs the keyword-to-element mapping and the summary-graph
/// augmentation eagerly — those are cheap and shared by every result — and
/// then advances the cursor exploration *lazily*:
///
/// * [`Self::next_query`] pops the next ranked query, exploring only as far
///   as needed to certify it,
/// * [`Self::answers_until`] interleaves the streaming answer phase with the
///   exploration: each query is evaluated the moment it is certified,
/// * [`Self::raise_k`] re-arms a (possibly drained) session for more
///   results,
/// * [`Self::into_outcome`] drains the rest and returns the familiar batch
///   [`SearchOutcome`] — [`KeywordSearchEngine::search`](crate::KeywordSearchEngine::search) is exactly this.
#[must_use = "a search session does nothing until queries are pulled from it"]
pub struct SearchSession<'e> {
    prepared: &'e PreparedGraph,
    config: SearchConfig,
    keywords: Vec<KeywordMatch>,
    /// The augmented summary graph and the suspended cursor walk over it.
    /// `None` only for a cache hit whose replay log is still serving the
    /// stream — the expensive reconstruction is deferred until something
    /// actually needs to explore ([`Self::materialize`]), which on the hot
    /// serving path is never.
    exploration: Option<(AugmentedSummaryGraph<'e>, ExplorationState)>,
    /// Element count of the (possibly not yet materialized) augmented graph.
    augmented_elements: usize,
    /// Queries emitted so far, in rank order (rank 1 first).
    queries: Vec<RankedQuery>,
    /// Canonical forms of the emitted queries, for deduplication: different
    /// subgraphs can normalise to the same conjunctive query.
    seen: BTreeSet<String>,
    /// Set once the stream is known to be complete for the current `k`.
    drained: bool,
    /// The cache entry this session's key resolved to (hit or fresh
    /// insert); a naturally drained, never-raised session writes its
    /// complete emission log back here so later same-key sessions can skip
    /// the exploration (see [`crate::cache`]).
    cache_entry: Option<crate::sync::Arc<crate::cache::CachedAugmentation>>,
    /// A complete emission log written by an earlier drained session under
    /// the same key, plus the replay position: while set, [`Self::advance`]
    /// emits from the log instead of exploring — bit-identically, since the
    /// exploration is deterministic. Dropped by [`Self::raise_k`], which
    /// falls back to real exploration.
    replay: Option<(crate::sync::Arc<Vec<RankedQuery>>, usize)>,
    /// Whether [`Self::raise_k`] changed the configuration away from the
    /// one the cache key was computed for (disables the write-back).
    raised: bool,
    /// Counters of exploration runs retired by [`Self::raise_k`]: the
    /// session's reported stats cover all the work it performed, matching
    /// the accumulated `exploration_time`.
    prior_stats: crate::exploration::ExplorationStats,
    keyword_mapping_time: Duration,
    /// Accumulated augmentation + exploration + query-mapping time across
    /// all advancing calls (the lazy equivalent of the batch
    /// `exploration_time`).
    exploration_time: Duration,
    /// Deadline/cancellation installed by the serving layer, kept on the
    /// session so a state rebuilt by [`Self::materialize`] or
    /// [`Self::raise_k`] inherits it.
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// debug-invariants: a shadow exploration over the cached snapshot that
    /// cross-checks every replayed emission against honest exploration.
    /// Deliberately separate from `exploration` so a replayed session still
    /// reports zero exploration work in [`Self::stats`] (counters describe
    /// effort; the shadow is a checker, not work the session performed).
    #[cfg(debug_assertions)]
    shadow: Option<(AugmentedSummaryGraph<'e>, ExplorationState)>,
    /// debug-invariants: the shadow's own dedup set, mirroring `seen` for
    /// the honest emission order.
    #[cfg(debug_assertions)]
    shadow_seen: BTreeSet<String>,
}

impl<'e> SearchSession<'e> {
    pub(crate) fn start<S: AsRef<str>>(
        prepared: &'e PreparedGraph,
        keywords: &[S],
        config: SearchConfig,
    ) -> Result<Self, SearchError> {
        // 0. Probe the augmentation cache: the matching and augmentation
        // phases depend only on the immutable indexes, the configuration and
        // the normalized query terms, so a hit replays a previous session
        // start bit for bit (see `crate::cache`). A probe that finds another
        // session computing the same key joins it (request coalescing)
        // instead of duplicating the work.
        let mapping_start = Instant::now();
        let cache = prepared.augmentation_cache();
        let probe = cache.is_enabled().then(|| {
            cache.probe(
                AugmentationKey::new(
                    config.clone(),
                    keywords
                        .iter()
                        .map(|k| prepared.keyword_index().normalized_query_terms(k.as_ref()))
                        .collect(),
                )
                // Live lineages share one cache across snapshots; the epoch
                // keeps every entry pinned to the snapshot it was computed
                // against (frozen preparations stay at epoch 0).
                .with_epoch(prepared.write_epoch()),
            )
        });
        let ticket = match probe {
            Some(CacheProbe::Hit(cached)) => {
                let report: Vec<KeywordMatch> = keywords
                    .iter()
                    .zip(&cached.element_matches)
                    .enumerate()
                    .map(|(position, (keyword, &element_matches))| KeywordMatch {
                        position,
                        keyword: keyword.as_ref().to_string(),
                        element_matches,
                    })
                    .collect();
                // A negative entry: these keywords are known to match
                // nothing at all — re-raise the error without re-matching.
                let Some(snapshot) = cached.snapshot.as_ref() else {
                    return Err(SearchError::AllKeywordsUnmatched { keywords: report });
                };
                let keyword_mapping_time = mapping_start.elapsed();
                let exploration_start = Instant::now();
                let replay = cached.results().map(|log| (log, 0));
                // With a replay log the graph and the cursor state may never
                // be needed (the hot serving path): defer the snapshot
                // reconstruction until something actually explores.
                let exploration = if replay.is_some() {
                    None
                } else {
                    let augmented =
                        AugmentedSummaryGraph::from_snapshot(prepared.graph(), snapshot.clone());
                    let state = ExplorationState::new(&augmented, &config);
                    Some((augmented, state))
                };
                let exploration_time = exploration_start.elapsed();
                let augmented_elements = snapshot.element_count();
                let mut session = Self::assemble(
                    prepared,
                    config,
                    report,
                    exploration,
                    augmented_elements,
                    keyword_mapping_time,
                    exploration_time,
                );
                session.cache_entry = Some(cached);
                session.replay = replay;
                return Ok(session);
            }
            Some(CacheProbe::Compute(ticket)) => Some(ticket),
            None => None,
        };

        // 1. Keyword-to-element mapping.
        let all_matches = prepared.keyword_index().lookup_all(keywords);
        let keyword_mapping_time = mapping_start.elapsed();

        let report: Vec<KeywordMatch> = keywords
            .iter()
            .zip(&all_matches)
            .enumerate()
            .map(|(position, (keyword, matches))| KeywordMatch {
                position,
                keyword: keyword.as_ref().to_string(),
                element_matches: matches.len(),
            })
            .collect();
        if !report.is_empty() && report.iter().all(|k| !k.is_matched()) {
            // Cache the *negative* verdict (snapshot-less entry): repeats of
            // a failing query — and any coalesced waiters parked behind this
            // computation — get the typed error straight from the cache
            // instead of re-running (or serializing on) the matching.
            if let Some(ticket) = ticket {
                let _ = ticket.complete(CachedAugmentation::new(
                    report.iter().map(|k| k.element_matches).collect(),
                    None,
                ));
            }
            return Err(SearchError::AllKeywordsUnmatched { keywords: report });
        }
        let matches: Vec<_> = all_matches.into_iter().filter(|m| !m.is_empty()).collect();

        // 2. Augmentation + the seeded exploration state.
        let exploration_start = Instant::now();
        let augmented =
            AugmentedSummaryGraph::build(prepared.graph(), prepared.summary(), &matches);
        let cache_entry = ticket.map(|ticket| {
            ticket.complete(CachedAugmentation::with_elements(
                report.iter().map(|k| k.element_matches).collect(),
                Some(augmented.to_snapshot()),
                matches
                    .iter()
                    .flat_map(|per_keyword| per_keyword.iter())
                    .map(|m| m.element.element_ref())
                    .collect(),
            ))
        });
        let state = ExplorationState::new(&augmented, &config);
        let exploration_time = exploration_start.elapsed();

        let augmented_elements = augmented.element_count();
        let mut session = Self::assemble(
            prepared,
            config,
            report,
            Some((augmented, state)),
            augmented_elements,
            keyword_mapping_time,
            exploration_time,
        );
        session.cache_entry = cache_entry;
        Ok(session)
    }

    /// Starts a session from an already-merged set of keyword matches,
    /// bypassing the cache and the per-preparation keyword lookup — the
    /// shard-runner entry point (see [`crate::shard`]). The scatter phase
    /// looks keywords up on every shard and merges the per-shard match
    /// lists into the exact global lists; each shard session then augments
    /// its own graph with those *global* matches, which yields the same
    /// augmented summary graph everywhere (the augmentation's structure
    /// depends only on the shared summary and the matches, and shard
    /// graphs retain the full vertex and label tables).
    ///
    /// `matches` must already be filtered of empty per-keyword lists and
    /// `report` must cover the original keyword positions — the caller
    /// owns the `AllKeywordsUnmatched` decision.
    pub(crate) fn start_with_matches(
        prepared: &'e PreparedGraph,
        report: Vec<KeywordMatch>,
        matches: &[Vec<kwsearch_keyword_index::KeywordMatch>],
        config: SearchConfig,
    ) -> Self {
        let exploration_start = Instant::now();
        let augmented = AugmentedSummaryGraph::build(prepared.graph(), prepared.summary(), matches);
        let state = ExplorationState::new(&augmented, &config);
        let exploration_time = exploration_start.elapsed();
        let augmented_elements = augmented.element_count();
        Self::assemble(
            prepared,
            config,
            report,
            Some((augmented, state)),
            augmented_elements,
            Duration::ZERO,
            exploration_time,
        )
    }

    /// A lower bound on the cost of every emission this session can still
    /// produce: no future [`Self::next_query`] result costs less. `None`
    /// means the stream is finished — nothing further will be emitted (an
    /// infinite bound). The sharded coordinator's streaming merge gates on
    /// this to certify cross-shard rank order (see [`crate::shard`]).
    ///
    /// Replay-served sessions conservatively report the last emission's
    /// cost (emissions are non-decreasing within one run); sessions that
    /// never explored report `Some(0.0)` until they start.
    pub fn emission_lower_bound(&self) -> Option<f64> {
        if self.drained || self.queries.len() >= self.config.k {
            return None;
        }
        if let Some((log, position)) = &self.replay {
            if *position >= log.len() {
                return None;
            }
            return Some(self.queries.last().map_or(0.0, |q| q.cost));
        }
        match &self.exploration {
            Some((_, state)) => state.emission_lower_bound(),
            None => Some(0.0),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        prepared: &'e PreparedGraph,
        config: SearchConfig,
        keywords: Vec<KeywordMatch>,
        exploration: Option<(AugmentedSummaryGraph<'e>, ExplorationState)>,
        augmented_elements: usize,
        keyword_mapping_time: Duration,
        exploration_time: Duration,
    ) -> Self {
        Self {
            prepared,
            config,
            keywords,
            exploration,
            augmented_elements,
            queries: Vec::new(),
            seen: BTreeSet::new(),
            drained: false,
            cache_entry: None,
            replay: None,
            raised: false,
            prior_stats: crate::exploration::ExplorationStats::default(),
            keyword_mapping_time,
            exploration_time,
            deadline: None,
            cancel: None,
            #[cfg(debug_assertions)]
            shadow: None,
            #[cfg(debug_assertions)]
            shadow_seen: BTreeSet::new(),
        }
    }

    /// Reconstructs the augmented graph and the seeded cursor state from the
    /// cache entry's snapshot — the deferred half of a replay-served cache
    /// hit, needed only when the session has to explore for real (log
    /// exhausted prematurely is impossible — logs are complete — so this
    /// fires only on [`Self::raise_k`]).
    fn materialize(&mut self) {
        if self.exploration.is_some() {
            return;
        }
        let prepared: &'e PreparedGraph = self.prepared;
        let entry = self
            .cache_entry
            .as_ref()
            // lint: allow(no-unwrap, reason = "structural invariant: only cache-hit sessions leave the exploration unmaterialized, and those always hold their entry")
            .expect("only cache-hit sessions defer materialization");
        let snapshot = entry
            .snapshot
            .as_ref()
            // lint: allow(no-unwrap, reason = "structural invariant: a negative (snapshot-less) entry errors out in start() before a session exists")
            .expect("negative entries never produce a session")
            .clone();
        let augmented = AugmentedSummaryGraph::from_snapshot(prepared.graph(), snapshot);
        let mut state = ExplorationState::new(&augmented, &self.config);
        state.set_deadline(self.deadline);
        if let Some(cancel) = &self.cancel {
            state.set_cancel(cancel.clone());
        }
        self.exploration = Some((augmented, state));
    }

    /// The prepared graph this session searches.
    pub fn prepared(&self) -> &'e PreparedGraph {
        self.prepared
    }

    /// Installs an absolute wall-clock deadline on the exploration: once it
    /// passes, the cursor walk aborts at its next deadline poll and the
    /// stream ends early with [`Self::aborted`] set. Queries already emitted
    /// stand; nothing further is certified or flushed. Applies to real
    /// exploration only — a cache-replay stream is O(results) and finishes
    /// ahead of any meaningful deadline.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        if let Some((_, state)) = self.exploration.as_mut() {
            state.set_deadline(deadline);
        }
    }

    /// Installs a shared cooperative-cancellation token (see
    /// [`CancelToken`]): the serving layer cancels it on shutdown or when a
    /// request's deadline fires while the job is queued.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        if let Some((_, state)) = self.exploration.as_mut() {
            state.set_cancel(cancel.clone());
        }
        self.cancel = Some(cancel);
    }

    /// Whether the exploration was cut short by the deadline or the cancel
    /// token. An aborted session's emitted prefix is still certified; the
    /// stream simply ends without a completeness claim.
    pub fn aborted(&self) -> bool {
        self.exploration
            .as_ref()
            .is_some_and(|(_, state)| state.is_aborted())
    }

    /// The configuration the session runs with (its `k` bounds the stream).
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The per-keyword match report (one entry per input keyword).
    pub fn keyword_matches(&self) -> &[KeywordMatch] {
        &self.keywords
    }

    /// The keywords that did not match any graph element (and were ignored
    /// by the exploration) — the session-side mirror of
    /// [`SearchOutcome::unmatched_keywords`].
    pub fn unmatched_keywords(&self) -> impl Iterator<Item = &KeywordMatch> {
        self.keywords.iter().filter(|k| !k.is_matched())
    }

    /// The queries emitted so far, in rank order.
    pub fn queries(&self) -> &[RankedQuery] {
        &self.queries
    }

    /// The exploration counters so far, covering *all* the work the session
    /// performed — including runs retired by [`Self::raise_k`] — so they
    /// stay consistent with the accumulated exploration time. After
    /// [`Self::next_query`] returned the rank-1 result, `stats().queue_pops`
    /// is typically a small fraction of what a drained session reports —
    /// that gap is what streaming buys. A session served from the cache's
    /// replay log reports only the (near-zero) work it actually did;
    /// counters describe effort, never results.
    pub fn stats(&self) -> crate::exploration::ExplorationStats {
        let mut stats = self.prior_stats;
        if let Some((_, state)) = &self.exploration {
            stats.absorb(state.stats());
        }
        stats
    }

    /// Advances the stream by one emitted query and returns its index in
    /// `self.queries` — the clone-free core of [`Self::next_query`], also
    /// used by the drain paths ([`Self::into_outcome`],
    /// [`Self::answers_until`]) so batch consumption allocates no copies.
    fn advance(&mut self) -> Option<usize> {
        if self.drained {
            return None;
        }
        let start = Instant::now();
        let result = loop {
            if self.queries.len() >= self.config.k {
                self.drain_complete();
                break None;
            }
            // Replay: an earlier drained session under the same cache key
            // recorded its complete emission log; the exploration is
            // deterministic, so emitting from the log is bit-identical to
            // re-exploring (the canonical set still grows so a later
            // `raise_k` can fast-forward past the replayed prefix).
            if let Some((log, position)) = &mut self.replay {
                if let Some(ranked) = log.get(*position) {
                    let ranked = ranked.clone();
                    *position += 1;
                    self.seen.insert(ranked.query.canonicalized().to_string());
                    debug_assert_eq!(ranked.rank, self.queries.len() + 1);
                    #[cfg(debug_assertions)]
                    self.check_replayed_emission(&ranked);
                    self.queries.push(ranked);
                    break Some(self.queries.len() - 1);
                }
                self.drained = true; // the log is complete — nothing follows
                break None;
            }
            self.materialize();
            let Some((augmented, state)) = self.exploration.as_mut() else {
                unreachable!("materialize() always fills the exploration")
            };
            let Some(subgraph) = state.next_certified(augmented, &self.config) else {
                self.drain_complete();
                break None;
            };
            // debug-invariants: the Theorem-1 rank certificate — an emitted
            // subgraph costs at most the cheapest still-pending cursor (no
            // undiscovered subgraph can outrank it), and within one
            // exploration run the emission costs are non-decreasing. Both
            // are void when the `max_cursors` safety valve truncated the run
            // (results are explicitly uncertified then).
            #[cfg(debug_assertions)]
            if crate::invariants::enabled() && !state.stats().hit_cursor_limit {
                if let Some(bound) = state.cheapest_pending_cost() {
                    assert!(
                        subgraph.cost <= bound,
                        "certificate violated: emitting cost {} above the cheapest \
                         pending cursor cost {bound}",
                        subgraph.cost
                    );
                }
                if !self.raised {
                    if let Some(last) = self.queries.last() {
                        assert!(
                            subgraph.cost >= last.cost,
                            "emission monotonicity violated: cost {} after {}",
                            subgraph.cost,
                            last.cost
                        );
                    }
                }
            }
            // Query mapping + deduplication: different subgraphs can
            // normalise to the same conjunctive query; only the first
            // (cheapest) occurrence is emitted.
            let query = map_subgraph_to_query(augmented, &subgraph);
            let canonical = query.canonicalized().to_string();
            if !self.seen.insert(canonical) {
                continue;
            }
            self.queries.push(RankedQuery {
                rank: self.queries.len() + 1,
                cost: subgraph.cost,
                query,
                subgraph,
            });
            break Some(self.queries.len() - 1);
        };
        self.exploration_time += start.elapsed();
        result
    }

    /// debug-invariants: cross-checks one replayed emission against a shadow
    /// exploration running honestly over the cached snapshot. The shadow is
    /// built lazily on the first replayed emission (so replay stays free when
    /// the sanitizer is off) and advanced in lockstep: every replayed query
    /// must match the shadow's next deduplicated emission bit for bit.
    #[cfg(debug_assertions)]
    fn check_replayed_emission(&mut self, replayed: &RankedQuery) {
        if !crate::invariants::enabled() {
            return;
        }
        if self.shadow.is_none() {
            let Some(snapshot) = self
                .cache_entry
                .as_ref()
                .and_then(|entry| entry.snapshot.as_ref())
            else {
                return; // nothing to shadow (cannot happen for replay hits)
            };
            let augmented =
                AugmentedSummaryGraph::from_snapshot(self.prepared.graph(), snapshot.clone());
            let state = ExplorationState::new(&augmented, &self.config);
            self.shadow = Some((augmented, state));
        }
        let Some((augmented, state)) = self.shadow.as_mut() else {
            return;
        };
        loop {
            let Some(subgraph) = state.next_certified(augmented, &self.config) else {
                panic!(
                    "replay-log equality violated: the log emits rank {} but the \
                     shadow exploration is exhausted",
                    replayed.rank
                );
            };
            let query = map_subgraph_to_query(augmented, &subgraph);
            let canonical = query.canonicalized().to_string();
            if !self.shadow_seen.insert(canonical.clone()) {
                continue; // the honest stream dedups identically
            }
            assert_eq!(
                replayed.cost.to_bits(),
                subgraph.cost.to_bits(),
                "replay-log equality violated: rank {} cost differs from honest \
                 exploration",
                replayed.rank
            );
            assert_eq!(
                replayed.query.canonicalized().to_string(),
                canonical,
                "replay-log equality violated: rank {} query differs from honest \
                 exploration",
                replayed.rank
            );
            return;
        }
    }

    /// Marks the stream drained and, when this session explored under an
    /// unraised cache key, writes its complete emission log back to the
    /// cache entry so later same-key sessions replay instead of exploring.
    fn drain_complete(&mut self) {
        self.drained = true;
        if self.raised || self.replay.is_some() {
            return;
        }
        // A run truncated by the `max_cursors` safety valve yields
        // best-effort results whose lack of certification is only visible
        // through `stats().hit_cursor_limit` — and a replayed session
        // reports its own (clean) stats. Never cache such a log: repeats
        // must re-explore so the flag reaches the caller every time.
        if self.stats().hit_cursor_limit {
            return;
        }
        // An aborted (deadline/cancel) drain is a truncated prefix, not the
        // complete stream — caching it would serve short results forever.
        if self.aborted() {
            return;
        }
        if let Some(entry) = &self.cache_entry {
            entry.store_results(&self.queries);
        }
    }

    /// Pops the next ranked query, advancing the exploration only until the
    /// result is provably rank-correct: its subgraph cost is at most the
    /// cost of the cheapest unexpanded cursor, so no still-undiscovered
    /// subgraph can outrank it. Returns `None` once `k` queries were
    /// emitted or the exploration is exhausted.
    ///
    /// The certificate has one exception, shared with batch `search`: if
    /// the run was truncated by the `max_cursors` safety valve
    /// (`stats().hit_cursor_limit`), the remaining results are the best
    /// found so far, not provably the best overall.
    ///
    /// The returned query is a clone; the session keeps its own copy
    /// (see [`Self::queries`]).
    pub fn next_query(&mut self) -> Option<RankedQuery> {
        self.advance().map(|index| self.queries[index].clone())
    }

    /// Re-arms the session for more results: raises the result bound to
    /// `new_k` so the stream continues past the previous limit, including on
    /// a session that already returned `None`. Values of `new_k` at or below
    /// the current `k` are ignored (already-emitted queries cannot be
    /// taken back).
    ///
    /// The exploration's pruning bounds (candidate-list capacity, the
    /// per-(element, keyword) path cap, the combination limit) all scale
    /// with `k`, so the cursor walk is deterministically re-run at the new
    /// `k` — reusing the keyword mapping and the augmented summary graph.
    /// Already-delivered queries are never re-emitted (the replayed
    /// certified subgraphs map to canonical forms the dedup set already
    /// holds) and keep their ranks, so a session raised from `k` to `k'`
    /// emits exactly what a fresh `k'` session would. The one caveat: on
    /// exact cost ties a candidate the smaller `k`'s tighter pruning had
    /// suppressed can surface *between* already-delivered results in the
    /// fresh-`k'` order; the raised session still emits it — nothing is
    /// dropped — just at a later rank than the fresh session would assign.
    pub fn raise_k(&mut self, new_k: usize) {
        if new_k <= self.config.k {
            return;
        }
        self.config.k = new_k;
        let start = Instant::now();
        // The session's configuration now differs from the one its cache key
        // was computed for: stop replaying (the log covers the old `k` only)
        // and never write this session's log back under the stale key. The
        // re-exploration below fast-forwards past everything already emitted
        // — replayed or explored — via the canonical dedup set.
        self.raised = true;
        self.replay = None;
        if let Some((augmented, state)) = self.exploration.as_mut() {
            self.prior_stats.absorb(state.stats());
            *state = ExplorationState::new(augmented, &self.config);
            state.set_deadline(self.deadline);
            if let Some(cancel) = &self.cancel {
                state.set_cancel(cancel.clone());
            }
        } else {
            // A replay-served session that never explored: reconstruct the
            // graph and seed the walk under the raised configuration.
            self.materialize();
        }
        self.drained = false;
        self.exploration_time += start.elapsed();
    }

    /// Interleaves the streaming answer phase with the exploration: pops
    /// queries with [`Self::next_query`] and evaluates each one the moment
    /// it is certified, stopping as soon as at least `min_answers` answers
    /// exist (each evaluation is limited to the still-missing count, like
    /// [`KeywordSearchEngine::answer_queries`](crate::KeywordSearchEngine::answer_queries)). The paper's Fig. 5
    /// interaction, without ever computing queries the answer phase does
    /// not reach.
    ///
    /// Consumes the stream from its current position. The interleaved
    /// exploration slices accrue to the session's exploration time (they
    /// surface in [`Self::into_outcome`]'s `exploration_time`), and the
    /// reported `answer_time` covers only the evaluation side — the two
    /// halves of the Fig. 5 total stay disjoint and summable, exactly like
    /// the batch `search` + [`KeywordSearchEngine::answer_queries`](crate::KeywordSearchEngine::answer_queries) split.
    /// A `min_answers` of zero returns an empty phase without touching the
    /// stream (the batch loop, by contrast, always probes its first query).
    pub fn answers_until(&mut self, min_answers: usize) -> AnswerPhase {
        let start = Instant::now();
        let exploration_before = self.exploration_time;
        let mut answers = Vec::new();
        let mut total = 0usize;
        let mut queries_processed = 0usize;
        while total < min_answers {
            let Some(index) = self.advance() else {
                break;
            };
            queries_processed += 1;
            let prepared = self.prepared;
            if let Ok(set) = prepared.answers(&self.queries[index].query, Some(min_answers - total))
            {
                total += set.len();
                answers.push(set);
            }
        }
        let interleaved = self.exploration_time - exploration_before;
        AnswerPhase {
            answers,
            queries_processed,
            answer_time: start.elapsed().saturating_sub(interleaved),
            truncated: self.aborted(),
        }
    }

    /// Drains the remaining queries and returns the batch [`SearchOutcome`]
    /// — the shape the old `search` call produced, including the timing
    /// split and the exploration counters.
    ///
    /// The queries are identical to a full [`Explorer`](crate::Explorer)
    /// run, bit for bit, but the exploration *counters* can come out
    /// slightly lower: the drain stops at the k-th certification
    /// (`cost <= bound`), whereas the batch loop keeps popping until the
    /// strict threshold (`kth cost < bound`) fires, so on cost ties the
    /// drained session skips a few trailing pops (and may report
    /// `terminated_by_threshold = false` where the batch run reports
    /// `true`). Counters are comparable across sessions, not across the
    /// two driving modes.
    pub fn into_outcome(mut self) -> SearchOutcome {
        while self.advance().is_some() {}
        self.into_partial_outcome()
    }

    /// Returns the batch [`SearchOutcome`] over the queries emitted *so
    /// far*, without draining the rest of the stream — the terminal form of
    /// an anytime consumer (e.g. a serving worker that ran
    /// [`Self::answers_until`] and has no use for queries the answer phase
    /// never reached). [`Self::into_outcome`] is `advance`-to-exhaustion
    /// followed by this.
    pub fn into_partial_outcome(self) -> SearchOutcome {
        let exploration = self.stats();
        SearchOutcome {
            queries: self.queries,
            keywords: self.keywords,
            exploration,
            augmented_elements: self.augmented_elements,
            keyword_mapping_time: self.keyword_mapping_time,
            exploration_time: self.exploration_time,
        }
    }
}

impl std::fmt::Debug for SearchSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchSession")
            .field("config", &self.config)
            .field("keywords", &self.keywords)
            .field("emitted", &self.queries.len())
            .field("drained", &self.drained)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeywordSearchEngine;
    use kwsearch_rdf::fixtures::figure1_graph;

    fn engine() -> KeywordSearchEngine {
        KeywordSearchEngine::builder(figure1_graph()).build()
    }

    #[test]
    fn next_query_streams_the_batch_result() {
        let engine = engine();
        let batch = engine.search(&["cimiano", "publication"]).unwrap();
        let mut session = engine.session(&["cimiano", "publication"]).unwrap();
        let mut streamed = Vec::new();
        while let Some(q) = session.next_query() {
            streamed.push(q);
        }
        assert_eq!(streamed.len(), batch.queries.len());
        for (got, want) in streamed.iter().zip(batch.queries.iter()) {
            assert_eq!(got.rank, want.rank);
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            assert_eq!(got.query.canonicalized(), want.query.canonicalized());
        }
        // Drained for good.
        assert!(session.next_query().is_none());
    }

    #[test]
    fn first_query_needs_no_more_pops_than_the_full_run() {
        let engine = engine();
        let mut session = engine.session(&["2006", "cimiano", "aifb"]).unwrap();
        let first = session.next_query().expect("the running example matches");
        assert_eq!(first.rank, 1);
        let first_pops = session.stats().queue_pops;

        let drained = engine
            .session(&["2006", "cimiano", "aifb"])
            .unwrap()
            .into_outcome();
        assert!(
            first_pops <= drained.exploration.queue_pops,
            "certifying rank 1 ({first_pops} pops) must not exceed the drained run ({})",
            drained.exploration.queue_pops
        );
    }

    #[test]
    fn raise_k_after_draining_matches_a_fresh_larger_session() {
        let engine = engine();
        let keywords = ["cimiano", "publication"];

        let mut session = engine
            .session_with(&keywords, SearchConfig::with_k(3))
            .unwrap();
        let mut collected = Vec::new();
        while let Some(q) = session.next_query() {
            collected.push(q);
        }
        assert_eq!(collected.len(), 3);
        session.raise_k(10);
        while let Some(q) = session.next_query() {
            collected.push(q);
        }

        let fresh = engine
            .session_with(&keywords, SearchConfig::with_k(10))
            .unwrap()
            .into_outcome();
        assert_eq!(collected.len(), fresh.queries.len());
        for (got, want) in collected.iter().zip(fresh.queries.iter()) {
            assert_eq!(got.rank, want.rank);
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            assert_eq!(got.query.canonicalized(), want.query.canonicalized());
        }
    }

    #[test]
    fn raise_k_with_smaller_or_equal_k_is_a_no_op() {
        let engine = engine();
        let mut session = engine
            .session_with(&["publications"], SearchConfig::with_k(3))
            .unwrap();
        let first = session.next_query().unwrap();
        session.raise_k(3);
        session.raise_k(1);
        assert_eq!(session.config().k, 3);
        let second = session.next_query().unwrap();
        assert!(first.cost <= second.cost + 1e-12);
    }

    #[test]
    fn replayed_sessions_match_and_raise_k_falls_back_to_exploration() {
        let keywords = ["cimiano", "publication"];
        // Honest reference: a cache-disabled engine, drained at k=3 and then
        // raised to 10.
        let mut honest_engine = KeywordSearchEngine::builder(figure1_graph())
            .cache_capacity(0)
            .build();
        honest_engine.set_config(SearchConfig::with_k(3));
        let mut honest = honest_engine.session(&keywords).unwrap();
        let mut want = Vec::new();
        while let Some(q) = honest.next_query() {
            want.push(q);
        }
        honest.raise_k(10);
        while let Some(q) = honest.next_query() {
            want.push(q);
        }

        let engine = engine();
        // First drain populates the augmentation entry and its replay log.
        let first = engine
            .session_with(&keywords, SearchConfig::with_k(3))
            .unwrap()
            .into_outcome();
        assert!(first.exploration.queue_pops > 0);

        // Second session replays the log (no exploration work) and then
        // falls back to honest exploration when raised.
        let mut replayed = engine
            .session_with(&keywords, SearchConfig::with_k(3))
            .unwrap();
        let mut got = Vec::new();
        while let Some(q) = replayed.next_query() {
            got.push(q);
        }
        assert_eq!(
            replayed.stats().queue_pops,
            0,
            "a replayed drain pops nothing off the cursor queue"
        );
        replayed.raise_k(10);
        while let Some(q) = replayed.next_query() {
            got.push(q);
        }

        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.rank, w.rank);
            assert_eq!(g.cost.to_bits(), w.cost.to_bits());
            assert_eq!(g.query.canonicalized(), w.query.canonicalized());
        }
    }

    #[test]
    fn truncated_runs_are_not_replayed_so_the_limit_flag_survives_repeats() {
        // A max_cursors small enough to trip the safety valve but large
        // enough to certify at least one result on the running example.
        let config = SearchConfig {
            max_cursors: 40,
            ..SearchConfig::default()
        };
        let engine = engine();
        let first = engine
            .session_with(&["2006", "cimiano", "aifb"], config.clone())
            .unwrap()
            .into_outcome();
        assert!(
            first.exploration.hit_cursor_limit,
            "the config must trip the safety valve for this test to bite"
        );
        // The repeat must re-explore (no replay log was written), so the
        // caller sees the uncertified-results flag again.
        let second = engine
            .session_with(&["2006", "cimiano", "aifb"], config)
            .unwrap()
            .into_outcome();
        assert!(
            second.exploration.hit_cursor_limit,
            "a replayed truncated run would report clean stats and claim \
             certification the results do not have"
        );
        assert_eq!(first.queries.len(), second.queries.len());
        for (a, b) in first.queries.iter().zip(second.queries.iter()) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }

    #[test]
    fn answers_until_interleaves_evaluation_with_exploration() {
        let engine = engine();
        let mut session = engine.session(&["publications"]).unwrap();
        let phase = session.answers_until(2);
        assert!(phase.total_answers() >= 2, "two publications exist");
        assert!(phase.queries_processed >= 1);
        // The session kept every emitted query; the stream can continue.
        assert_eq!(session.queries().len(), phase.queries_processed);
        let outcome = session.into_outcome();
        assert!(outcome.queries.len() >= phase.queries_processed);
    }

    #[test]
    fn aborted_sessions_truncate_and_never_cache_their_log() {
        let engine = engine();
        let keywords = ["2006", "cimiano", "aifb"];
        let mut session = engine.session(&keywords).unwrap();
        let token = CancelToken::new();
        session.set_cancel(token.clone());
        let first = session.next_query();
        assert!(first.is_some(), "the stream starts before the cancel");
        assert!(!session.aborted());
        token.cancel();
        assert!(session.next_query().is_none());
        assert!(session.aborted());
        drop(session);
        // The truncated prefix must not have been cached as a replay log: a
        // fresh same-key session re-explores (pops > 0) instead of replaying
        // a stream that would be short forever.
        let full = engine.session(&keywords).unwrap().into_outcome();
        assert!(
            full.exploration.queue_pops > 0,
            "a truncated log must never be replayed"
        );
        assert!(!full.queries.is_empty());
    }

    #[test]
    fn an_expired_deadline_ends_the_stream_early() {
        let engine = engine();
        let mut session = engine.session(&["2006", "cimiano", "aifb"]).unwrap();
        session.set_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert!(session.next_query().is_none());
        assert!(session.aborted());
    }

    #[test]
    fn session_reports_keyword_matches() {
        let engine = engine();
        let session = engine.session(&["cimiano", "xyzzy-unknown"]).unwrap();
        let report = session.keyword_matches();
        assert_eq!(report.len(), 2);
        assert!(report[0].is_matched());
        assert!(!report[1].is_matched());
        assert_eq!(report[1].keyword, "xyzzy-unknown");
    }
}
