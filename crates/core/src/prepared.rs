//! The immutable, shareable read path of the engine.
//!
//! The paper's pipeline — keyword matching, summary-graph augmentation,
//! top-k exploration, query evaluation — is read-only over structures built
//! once per data graph. [`PreparedGraph`] bundles exactly those structures
//! (data graph, keyword index, summary graph, triple store, plus the
//! [`AugmentationCache`]) behind a `Send + Sync` value, so one preparation
//! can be wrapped in an [`Arc`](std::sync::Arc) and served from any number
//! of worker threads concurrently (see [`crate::serve`]): every
//! [`SearchSession`] borrows the prepared graph immutably and keeps its own
//! per-request state.
//!
//! [`KeywordSearchEngine`](crate::KeywordSearchEngine) is a thin facade over
//! `Arc<PreparedGraph>` + a default [`SearchConfig`]; single-threaded users
//! never need to name this type.

use std::time::{Duration, Instant};

use kwsearch_keyword_index::{KeywordIndex, KeywordIndexConfig};
use kwsearch_query::{AnswerSet, ConjunctiveQuery, EvalError, Evaluator};
use kwsearch_rdf::{DataGraph, GraphStats, TripleStore};
use kwsearch_summary::SummaryGraph;

use crate::cache::AugmentationCache;
use crate::config::SearchConfig;
use crate::engine::AnswerPhase;
use crate::error::SearchError;
use crate::result::RankedQuery;
use crate::session::SearchSession;

/// The immutable artifacts of the off-line preprocessing: everything the
/// on-line phases read, and nothing they write.
///
/// A `PreparedGraph` is `Send + Sync` (a compile-time test pins this), so
/// the canonical sharing pattern is:
///
/// ```
/// use std::sync::Arc;
/// use kwsearch_core::{PreparedGraph, SearchConfig};
/// use kwsearch_rdf::fixtures::figure1_graph;
///
/// let prepared = Arc::new(PreparedGraph::index(figure1_graph()));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let prepared = Arc::clone(&prepared);
///         std::thread::spawn(move || {
///             let session = prepared
///                 .session(&["2006", "cimiano", "aifb"], SearchConfig::default())
///                 .unwrap();
///             session.into_outcome().queries.len()
///         })
///     })
///     .collect();
/// for handle in handles {
///     assert!(handle.join().unwrap() > 0);
/// }
/// ```
///
/// The augmentation cache is the only interior-mutable part; it is
/// internally synchronized and its hits are bit-identical to fresh runs (see
/// [`crate::cache`]), so sharing never changes results.
#[derive(Debug)]
pub struct PreparedGraph {
    graph: DataGraph,
    keyword_index: KeywordIndex,
    summary: SummaryGraph,
    store: TripleStore,
    /// Shared with every other snapshot of the same [`crate::live::LiveGraph`]
    /// (frozen preparations own theirs exclusively); entries are kept
    /// epoch-correct via the write epoch folded into every cache key.
    cache: crate::sync::Arc<AugmentationCache>,
    /// Monotone write epoch of the live lineage this preparation belongs
    /// to; 0 for frozen preparations. Folded into every augmentation cache
    /// key (see [`crate::cache::AugmentationKey`]).
    write_epoch: u64,
    index_build_time: Duration,
}

impl PreparedGraph {
    /// Runs the off-line preprocessing with default configurations.
    pub fn index(graph: DataGraph) -> Self {
        Self::index_with(
            graph,
            KeywordIndexConfig::default(),
            AugmentationCache::DEFAULT_CAPACITY,
        )
    }

    /// Runs the off-line preprocessing with an explicit keyword-index
    /// configuration and augmentation-cache capacity (0 disables caching).
    pub fn index_with(
        graph: DataGraph,
        keyword_config: KeywordIndexConfig,
        cache_capacity: usize,
    ) -> Self {
        let start = Instant::now();
        let keyword_index = KeywordIndex::build_with(
            &graph,
            kwsearch_keyword_index::Analyzer::new(),
            kwsearch_keyword_index::Thesaurus::builtin(),
            keyword_config,
        );
        let summary = SummaryGraph::build(&graph);
        let store = TripleStore::build(&graph);
        let index_build_time = start.elapsed();
        Self {
            graph,
            keyword_index,
            summary,
            store,
            cache: crate::sync::Arc::new(AugmentationCache::new(cache_capacity)),
            write_epoch: 0,
            index_build_time,
        }
    }

    /// Assembles a prepared graph from already-built parts — the snapshot
    /// load path ([`crate::persist`]). `index_build_time` carries the
    /// original build cost recorded in the snapshot.
    pub(crate) fn from_parts(
        graph: DataGraph,
        keyword_index: KeywordIndex,
        summary: SummaryGraph,
        store: TripleStore,
        cache_capacity: usize,
        index_build_time: Duration,
    ) -> Self {
        Self::from_shared_parts(
            graph,
            keyword_index,
            summary,
            store,
            crate::sync::Arc::new(AugmentationCache::new(cache_capacity)),
            0,
            index_build_time,
        )
    }

    /// Assembles a prepared graph around an already-shared augmentation
    /// cache at an explicit write epoch — the [`crate::live`] path, where a
    /// succession of snapshots shares one cache and distinguishes entries
    /// by epoch.
    pub(crate) fn from_shared_parts(
        graph: DataGraph,
        keyword_index: KeywordIndex,
        summary: SummaryGraph,
        store: TripleStore,
        cache: crate::sync::Arc<AugmentationCache>,
        write_epoch: u64,
        index_build_time: Duration,
    ) -> Self {
        Self {
            graph,
            keyword_index,
            summary,
            store,
            cache,
            write_epoch,
            index_build_time,
        }
    }

    /// Disassembles the preparation into its component structures — the
    /// compaction path, which reloads a freshly-written snapshot and
    /// re-wraps its parts around the live lineage's shared cache.
    pub(crate) fn into_parts(self) -> (DataGraph, KeywordIndex, SummaryGraph, TripleStore) {
        (self.graph, self.keyword_index, self.summary, self.store)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The indexed data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The keyword index.
    pub fn keyword_index(&self) -> &KeywordIndex {
        &self.keyword_index
    }

    /// The summary graph (graph index).
    pub fn summary(&self) -> &SummaryGraph {
        &self.summary
    }

    /// The triple store used for query processing.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The augmentation cache (stats, clearing; see [`crate::cache`]).
    pub fn augmentation_cache(&self) -> &AugmentationCache {
        &self.cache
    }

    /// The shared cache handle — cloned into every successor snapshot of a
    /// live lineage (see [`crate::live`]).
    pub(crate) fn shared_cache(&self) -> crate::sync::Arc<AugmentationCache> {
        crate::sync::Arc::clone(&self.cache)
    }

    /// The monotone write epoch this preparation was assembled at (0 for
    /// frozen preparations). Folded into every augmentation cache key so
    /// entries computed before a live write are never served after it.
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// How long the off-line preprocessing took.
    pub fn index_build_time(&self) -> Duration {
        self.index_build_time
    }

    /// Structural statistics of the indexed data graph.
    pub fn graph_stats(&self) -> GraphStats {
        GraphStats::compute(&self.graph)
    }

    // ------------------------------------------------------------------
    // Query computation and processing
    // ------------------------------------------------------------------

    /// Opens a resumable, streaming [`SearchSession`] against this prepared
    /// graph — the thread-safe core behind
    /// [`KeywordSearchEngine::session`](crate::KeywordSearchEngine::session).
    ///
    /// Fails with [`SearchError::AllKeywordsUnmatched`] when a non-empty
    /// query matches nothing at all.
    pub fn session<S: AsRef<str>>(
        &self,
        keywords: &[S],
        config: SearchConfig,
    ) -> Result<SearchSession<'_>, SearchError> {
        SearchSession::start(self, keywords, config)
    }

    /// Evaluates a conjunctive query on the data graph, optionally stopping
    /// after `limit` answers.
    pub fn answers(
        &self,
        query: &ConjunctiveQuery,
        limit: Option<usize>,
    ) -> Result<AnswerSet, EvalError> {
        Evaluator::with_borrowed_store(&self.graph, &self.store).evaluate_with_limit(query, limit)
    }

    /// Processes already-computed ranked queries in rank order until at
    /// least `min_answers` answers have been retrieved (the paper's Fig. 5
    /// answer phase; each evaluation is limited to the still-missing count).
    pub fn answer_queries(&self, queries: &[RankedQuery], min_answers: usize) -> AnswerPhase {
        let start = Instant::now();
        let mut answers = Vec::new();
        let mut total = 0usize;
        let mut queries_processed = 0usize;
        for ranked in queries {
            queries_processed += 1;
            if let Ok(set) = self.answers(&ranked.query, Some(min_answers.saturating_sub(total))) {
                total += set.len();
                answers.push(set);
            }
            if total >= min_answers {
                break;
            }
        }
        AnswerPhase {
            answers,
            queries_processed,
            answer_time: start.elapsed(),
            truncated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_rdf::fixtures::figure1_graph;
    use std::sync::Arc;

    #[test]
    fn prepared_graph_is_shareable_across_threads() {
        let prepared = Arc::new(PreparedGraph::index(figure1_graph()));
        let baseline = prepared
            .session(&["2006", "cimiano", "aifb"], SearchConfig::default())
            .unwrap()
            .into_outcome();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let prepared = Arc::clone(&prepared);
                std::thread::spawn(move || {
                    prepared
                        .session(&["2006", "cimiano", "aifb"], SearchConfig::default())
                        .unwrap()
                        .into_outcome()
                })
            })
            .collect();
        for handle in handles {
            let outcome = handle.join().unwrap();
            assert_eq!(outcome.queries.len(), baseline.queries.len());
            for (got, want) in outcome.queries.iter().zip(baseline.queries.iter()) {
                assert_eq!(got.cost.to_bits(), want.cost.to_bits());
                assert_eq!(got.query.canonicalized(), want.query.canonicalized());
            }
        }
    }

    #[test]
    fn unmatched_queries_are_negatively_cached() {
        let prepared = PreparedGraph::index(figure1_graph());
        for _ in 0..2 {
            let error = prepared
                .session(&["xyzzy-unknown"], SearchConfig::default())
                .unwrap_err();
            let SearchError::AllKeywordsUnmatched { keywords } = error;
            assert_eq!(keywords.len(), 1);
            assert_eq!(keywords[0].keyword, "xyzzy-unknown");
            assert!(!keywords[0].is_matched());
        }
        let stats = prepared.augmentation_cache().stats();
        assert_eq!(
            stats.hits, 1,
            "the repeated failure is served from the negative entry: {stats:?}"
        );
    }

    #[test]
    fn repeated_sessions_hit_the_augmentation_cache() {
        let prepared = PreparedGraph::index(figure1_graph());
        let first = prepared
            .session(&["cimiano", "aifb"], SearchConfig::default())
            .unwrap()
            .into_outcome();
        let second = prepared
            .session(&["Cimiano", "AIFB"], SearchConfig::default())
            .unwrap()
            .into_outcome();
        let stats = prepared.augmentation_cache().stats();
        assert_eq!(stats.hits, 1, "normalized repeat must hit: {stats:?}");
        assert_eq!(first.queries.len(), second.queries.len());
        for (got, want) in first.queries.iter().zip(second.queries.iter()) {
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            assert_eq!(got.query.canonicalized(), want.query.canonicalized());
        }
    }
}
