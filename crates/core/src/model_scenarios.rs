//! Model-checked concurrency scenarios for the serving stack.
//!
//! Compiled only under `--cfg kwsearch_model`, where the [`crate::sync`]
//! facade resolves to the `kwsearch-modelcheck` shims: every scenario here
//! is a closed 2–3-thread program over the *real* cache / job-queue code,
//! handed to [`kwsearch_modelcheck::explore`] so the DFS scheduler
//! exhaustively enumerates its interleavings up to the configured
//! preemption bound.
//!
//! The functions return the explorer's [`Report`] rather than asserting, so
//! the integration tests (`tests/model_cache.rs`, `tests/model_serve.rs`,
//! `tests/model_sync.rs`) can assert a pass *and* the seeded-mutation tests
//! (`tests/model_mutations.rs`, under the additional
//! `kwsearch_model_mutation` cfg) can assert the exact failure the checker
//! must report against the sabotaged build.
//!
//! Scenario code panics on violated expectations — inside an exploration
//! the shims convert a model-thread panic into a
//! [`FailureKind::Panic`](kwsearch_modelcheck::FailureKind::Panic) report
//! with the schedule that provoked it, which is exactly the signal we want.
// lint: allow-file(no-unwrap, reason = "scenario assertions: a panic inside a model thread is the checker's failure signal, reported with the replayable schedule that provoked it")

use std::time::Duration;

use kwsearch_keyword_index::ElementRef;
use kwsearch_modelcheck::{explore, thread, Config, Report};
use kwsearch_rdf::VertexId;

use crate::cache::{AugmentationCache, AugmentationKey, CacheProbe, CachedAugmentation};
use crate::serve::{Job, JobQueue, SearchRequest, ServeError};
use crate::shard::coordinator::{GatherState, ShardJob, ShardQueue};
use crate::subgraph::{MatchingSubgraph, SubgraphPath};
use crate::sync::{lock_unpoisoned, Arc, CancelToken, Mutex};
use crate::{RankedQuery, SearchConfig};

/// A distinct cache key per scenario role (the config is shared; the terms
/// disambiguate).
fn key(term: &str) -> AugmentationKey {
    AugmentationKey::new(SearchConfig::default(), vec![vec![term.to_string()]])
}

/// A minimal payload: one matched keyword, no snapshot (the cache treats
/// the snapshot as opaque bytes, so its absence changes nothing the
/// scenarios observe), no replay log yet.
fn payload() -> CachedAugmentation {
    CachedAugmentation::new(vec![1], None)
}

/// A queue job carrying a fresh reply channel (the channel is a per-request
/// rendezvous; the scenarios never block on it).
fn job() -> Job {
    // lint: allow(no-raw-sync, reason = "per-job rendezvous channel, same as serve.rs; the scenarios never block on it, so it needs no model shim")
    let (reply, _rx) = std::sync::mpsc::channel();
    Job {
        request: SearchRequest::new(["model"]),
        reply,
        deadline: None,
    }
}

/// **Single-flight coalescing.** Two threads probe the same missing key:
/// exactly one becomes the owner and computes; the other joins the owner's
/// in-flight slot and comes back with a [`CacheProbe::Hit`]. In *every*
/// interleaving the cache ends with `misses == 1 && hits == 1` — the
/// augmentation ran once, never twice.
///
/// Under seeded mutation (a) — the dropped `notify_all` in
/// `InFlight::finish` — any interleaving where the waiter blocks before the
/// owner publishes hangs forever, which the checker reports as a lost
/// wakeup.
pub fn cache_single_flight_coalescing(config: Config) -> Report {
    explore(config, cache_single_flight_body)
}

/// The closed program behind [`cache_single_flight_coalescing`], exposed so
/// the seeded-mutation tests can [`kwsearch_modelcheck::replay`] a failing
/// schedule against the identical body.
pub fn cache_single_flight_body() {
    let cache = Arc::new(AugmentationCache::new(4));
    let worker = {
        let cache = Arc::clone(&cache);
        thread::spawn(move || resolve(&cache))
    };
    resolve(&cache);
    worker.join().unwrap();
    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "exactly one probe may own the computation");
    assert_eq!(stats.hits, 1, "the other probe must coalesce onto it");
    assert_eq!(stats.insertions, 1, "the augmentation ran exactly once");
}

/// Probes `key("shared")` and fulfils the single-flight contract: owners
/// complete, waiters accept the published entry.
fn resolve(cache: &AugmentationCache) {
    match cache.probe(key("shared")) {
        CacheProbe::Hit(entry) => assert_eq!(entry.element_matches, vec![1]),
        CacheProbe::Compute(ticket) => {
            let entry = ticket.complete(payload());
            assert_eq!(entry.element_matches, vec![1]);
        }
    }
}

/// **Owner abandonment.** The first thread to own the key *drops* its
/// ticket (modelling an error or panic on the computing path) before
/// retrying; the release must wake the coalesced waiter empty-handed so it
/// retries, and whichever thread re-probes first becomes the new owner. In
/// every interleaving both threads end with the published entry and the
/// cache holds exactly one resident copy.
pub fn cache_owner_abandons_waiters_retry(config: Config) -> Report {
    explore(config, || {
        let cache = Arc::new(AugmentationCache::new(4));
        let abandoned = Arc::new(Mutex::new(false));
        let worker = {
            let cache = Arc::clone(&cache);
            let abandoned = Arc::clone(&abandoned);
            thread::spawn(move || resolve_after_one_abandon(&cache, &abandoned))
        };
        resolve_after_one_abandon(&cache, &abandoned);
        worker.join().unwrap();
        let stats = cache.stats();
        assert_eq!(stats.len, 1, "retry must converge on one resident entry");
        assert_eq!(stats.insertions, 1, "only the second owner publishes");
        assert_eq!(
            stats.misses, 2,
            "the abandoned ownership and its replacement"
        );
    })
}

/// First ownership across both threads is abandoned; every later probe
/// follows the normal contract. Loops because an abandoning owner must
/// retry its own probe too.
fn resolve_after_one_abandon(cache: &AugmentationCache, abandoned: &Mutex<bool>) {
    loop {
        match cache.probe(key("shared")) {
            CacheProbe::Hit(entry) => {
                assert_eq!(entry.element_matches, vec![1]);
                return;
            }
            CacheProbe::Compute(ticket) => {
                let mut flag = lock_unpoisoned(abandoned);
                if *flag {
                    drop(flag);
                    ticket.complete(payload());
                    return;
                }
                *flag = true;
                drop(flag);
                drop(ticket); // abandon: waiters must retry, not hang
            }
        }
    }
}

/// **Negative entries don't serialize waiters.** The owner publishes a
/// *negative* entry (`snapshot: None` — the keywords failed to match).
/// The verdict must be cached like any other payload: the concurrent probe
/// either coalesces onto the in-flight owner or hits the resident entry,
/// but in no interleaving does it recompute or block behind a second
/// matching run (`misses` stays 1).
pub fn cache_negative_entry_is_cached(config: Config) -> Report {
    explore(config, || {
        let cache = Arc::new(AugmentationCache::new(4));
        let prober = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || match cache.probe(key("unmatched")) {
                CacheProbe::Hit(entry) => assert!(entry.snapshot.is_none()),
                CacheProbe::Compute(ticket) => {
                    ticket.complete(CachedAugmentation::new(vec![0], None));
                }
            })
        };
        match cache.probe(key("unmatched")) {
            CacheProbe::Hit(entry) => assert!(entry.snapshot.is_none()),
            CacheProbe::Compute(ticket) => {
                ticket.complete(CachedAugmentation::new(vec![0], None));
            }
        }
        prober.join().unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "the failing match must not re-run");
        assert_eq!(stats.hits, 1, "the negative verdict serves the other probe");
    })
}

/// **Replay-log write-back vs. concurrent eviction.** A capacity-1 cache:
/// thread 0 holds the `Arc` of the first resident entry and writes its
/// replay log back while thread 1 inserts a second key, evicting the first.
/// The write-back targets the *entry* (not the cache slot), so it must
/// succeed and stay readable through the held `Arc` in every interleaving —
/// eviction only drops the cache's reference.
pub fn cache_store_results_vs_eviction(config: Config) -> Report {
    explore(config, || {
        let cache = Arc::new(AugmentationCache::new(1));
        let first = match cache.probe(key("first")) {
            CacheProbe::Compute(ticket) => ticket.complete(payload()),
            CacheProbe::Hit(_) => unreachable!("fresh cache cannot hit"),
        };
        let evictor = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || match cache.probe(key("second")) {
                CacheProbe::Compute(ticket) => {
                    ticket.complete(payload());
                }
                CacheProbe::Hit(_) => unreachable!("distinct key cannot hit"),
            })
        };
        first.store_results(&[]);
        assert_eq!(
            first.results().map(|log| log.len()),
            Some(0),
            "the replay log outlives eviction through the held Arc"
        );
        evictor.join().unwrap();
        let stats = cache.stats();
        assert_eq!(stats.len, 1, "capacity 1 holds exactly one entry");
        assert_eq!(stats.evictions, 1, "the first entry was evicted");
    })
}

/// **`clear()` orphans in-flight write-backs.** An owner takes its miss,
/// then a concurrent thread clears the cache while the owner's computation
/// is still in flight. The clear's contract is that *nothing computed
/// before it survives it*: whichever side wins the race — write-back lands
/// first and the clear wipes it, or the clear's generation bump orphans the
/// write-back — the cache ends empty and the next probe is a genuine miss.
/// The owner itself always gets its computed payload back, resident or
/// orphaned.
///
/// Under seeded mutation (d) — the skipped generation check in
/// `AugmentationCache::insert_resolved` — the interleaving where the clear
/// runs between the miss and the write-back resurrects the stale entry,
/// which the final probe observes as a hit and the checker reports as a
/// panic with the provoking schedule.
pub fn cache_clear_orphans_inflight_writeback(config: Config) -> Report {
    explore(config, cache_clear_orphans_inflight_writeback_body)
}

/// The closed program behind [`cache_clear_orphans_inflight_writeback`],
/// exposed so the seeded-mutation tests can [`kwsearch_modelcheck::replay`]
/// a failing schedule against the identical body.
pub fn cache_clear_orphans_inflight_writeback_body() {
    let cache = Arc::new(AugmentationCache::new(4));
    // The ownership is taken *before* the clearing thread exists, so every
    // interleaving races the same in-flight write-back against the clear.
    let ticket = match cache.probe(key("live")) {
        CacheProbe::Compute(ticket) => ticket,
        CacheProbe::Hit(_) => unreachable!("fresh cache cannot hit"),
    };
    let clearer = {
        let cache = Arc::clone(&cache);
        thread::spawn(move || cache.clear())
    };
    let finished = ticket.complete(payload());
    assert_eq!(
        finished.element_matches,
        vec![1],
        "the owner keeps its computed payload, resident or orphaned"
    );
    clearer.join().unwrap();
    let stats = cache.stats();
    assert_eq!(
        stats.len, 0,
        "nothing computed before the clear may survive it"
    );
    match cache.probe(key("live")) {
        CacheProbe::Compute(ticket) => drop(ticket),
        CacheProbe::Hit(_) => panic!("orphaned write-back resurrected a cleared entry"),
    };
}

/// A cache key pinned to a write epoch, as the live write path mints them.
fn epoch_key(term: &str, epoch: u64) -> AugmentationKey {
    key(term).with_epoch(epoch)
}

/// Seeds one resident epoch-0 entry whose matched-element set is the single
/// V-vertex `element`, returning the resident `Arc` so scenarios can prove
/// promotion shares the payload rather than copying it.
fn seed_epoch0(cache: &AugmentationCache, term: &str, element: u32) -> Arc<CachedAugmentation> {
    match cache.probe(epoch_key(term, 0)) {
        CacheProbe::Compute(ticket) => ticket.complete(CachedAugmentation::with_elements(
            vec![element as usize],
            None,
            vec![ElementRef::Value(VertexId::from_index(element))],
        )),
        CacheProbe::Hit(_) => unreachable!("fresh cache cannot hit"),
    }
}

/// **Epoch advance vs. in-flight write-back** — the write/invalidate/replay
/// race behind [`crate::LiveGraph`]'s keyed invalidation. An owner takes an
/// epoch-0 miss whose augmentation matches element `V3`; concurrently a
/// write touching `V3` advances the cache from epoch 0 to epoch 1 (with
/// promotion). In every interleaving:
///
/// * the advanced epoch starts clean of the touched entry — if the
///   write-back landed first, keyed invalidation dropped it; if the advance
///   ran first, the write-back lands keyed at epoch 0, unreachable from
///   epoch-1 readers (epoch-0 readers still hold the old snapshot, for
///   which the entry remains correct);
/// * the untouched resident entry crosses over to epoch 1 as the *same*
///   `Arc` — promotion shares the payload (and its replay log), never
///   copies it.
pub fn cache_epoch_advance_races_inflight_writeback(config: Config) -> Report {
    explore(config, || {
        let cache = Arc::new(AugmentationCache::new(8));
        let stable = seed_epoch0(&cache, "stable", 7);
        let ticket = match cache.probe(epoch_key("hot", 0)) {
            CacheProbe::Compute(ticket) => ticket,
            CacheProbe::Hit(_) => unreachable!("fresh key cannot hit"),
        };
        let writer = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                cache.advance_epoch(0, 1, &[ElementRef::Value(VertexId::from_index(3))], true);
            })
        };
        ticket.complete(CachedAugmentation::with_elements(
            vec![3],
            None,
            vec![ElementRef::Value(VertexId::from_index(3))],
        ));
        writer.join().unwrap();
        match cache.probe(epoch_key("hot", 1)) {
            CacheProbe::Compute(ticket) => drop(ticket),
            CacheProbe::Hit(_) => panic!("stale augmentation served at the advanced epoch"),
        };
        match cache.probe(epoch_key("stable", 1)) {
            CacheProbe::Hit(entry) => assert!(
                Arc::ptr_eq(&entry, &stable),
                "promotion must share the seeded payload Arc, not copy it"
            ),
            CacheProbe::Compute(_) => panic!("untouched entry lost its promotion"),
        };
    })
}

/// **Queue drains exactly what was submitted.** One submitter pushes two
/// jobs and closes; one worker pops until the queue reports closed-empty.
/// Every interleaving drains exactly two jobs — whether the worker races
/// ahead (blocking on the condvar between pushes) or lags behind (draining
/// after close) — and the metrics agree with the queue they describe.
///
/// Under seeded mutation (b) — `pop` acquiring `metrics` before `state` —
/// the interleaving where the worker blocks first and the submitter then
/// pushes is an AB-BA lock cycle, which the checker reports as a deadlock.
pub fn service_queue_submit_drain(config: Config) -> Report {
    explore(config, service_queue_submit_drain_body)
}

/// The closed program behind [`service_queue_submit_drain`], exposed so
/// the seeded-mutation tests can [`kwsearch_modelcheck::replay`] a failing
/// schedule against the identical body.
pub fn service_queue_submit_drain_body() {
    let queue = Arc::new(JobQueue::new(8));
    let worker = {
        let queue = Arc::clone(&queue);
        thread::spawn(move || {
            let mut drained = 0u64;
            while queue.pop().is_some() {
                drained += 1;
            }
            drained
        })
    };
    queue.push(job()).unwrap();
    queue.push(job()).unwrap();
    queue.close();
    let drained = worker.join().unwrap();
    assert_eq!(drained, 2, "the worker must see both jobs, then the close");
    let stats = queue.stats();
    assert_eq!(stats.jobs_submitted, 2);
    assert_eq!(stats.jobs_served, 2);
    assert!(
        (1..=2).contains(&stats.peak_queue_depth),
        "peak depth reflects how far the submitter outran the worker"
    );
}

/// **Shutdown with nothing queued.** Close racing an idle worker: the
/// worker either finds the queue already closed or blocks and is woken by
/// `close`'s `notify_all`. No interleaving may strand it.
pub fn service_queue_close_wakes_idle_worker(config: Config) -> Report {
    explore(config, || {
        let queue = Arc::new(JobQueue::new(8));
        let worker = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop())
        };
        queue.close();
        assert!(
            worker.join().unwrap().is_none(),
            "an empty closed queue pops None"
        );
    })
}

/// A minimal ranked emission for the gather scenarios: the merge inspects
/// only `rank` and `cost`, so a one-path subgraph over any summary element
/// is enough.
fn ranked(rank: usize, cost: f64) -> RankedQuery {
    use kwsearch_rdf::fixtures::figure1_graph;
    use kwsearch_summary::{SummaryElement, SummaryGraph};
    let graph = figure1_graph();
    let summary = SummaryGraph::build(&graph);
    let element = SummaryElement::Node(summary.nodes().next().unwrap());
    RankedQuery {
        rank,
        cost,
        query: kwsearch_query::QueryBuilder::new()
            .class_pattern("x", "Publication")
            .distinguished(["x"])
            .build(),
        subgraph: MatchingSubgraph::new(
            element,
            vec![SubgraphPath {
                keyword: 0,
                elements: vec![element],
                cost,
            }],
        ),
    }
}

/// **Scatter-gather rendezvous.** Two shard workers feed one
/// [`GatherState`]: shard 0 owns the global rank-1 emission, shard 1 owns
/// rank 2, and each publishes its emission lower bound exactly as
/// `run_shard_job` would (the bound after an owned push is the next
/// emission's cost; after the unowned pop it is `None`, i.e. drained). The
/// coordinator's merge must release `[rank 1, rank 2]` — dense, costs
/// bit-identical — in *every* interleaving: whether the merge races ahead
/// (blocking on `progress` while the gate is closed) or both workers finish
/// before it even looks.
///
/// Under seeded mutation (c) — the dropped `notify_one` in
/// [`GatherState::finish`] — any interleaving where the merge has drained
/// both buffers and blocks waiting for the last shard's completion hangs
/// forever, which the checker reports as a lost wakeup.
pub fn shard_scatter_gather_rendezvous(config: Config) -> Report {
    explore(config, shard_scatter_gather_rendezvous_body)
}

/// The closed program behind [`shard_scatter_gather_rendezvous`], exposed
/// so the seeded-mutation tests can [`kwsearch_modelcheck::replay`] a
/// failing schedule against the identical body.
pub fn shard_scatter_gather_rendezvous_body() {
    let gather = Arc::new(GatherState::new(2, 8));
    let shard0 = {
        let gather = Arc::clone(&gather);
        thread::spawn(move || {
            // Owns rank 1; the session's next certified cost is 2.0 (the
            // unowned rank 2), then the session drains.
            assert!(gather.push_emission(0, ranked(1, 1.0), Some(2.0)));
            assert!(gather.update_bound(0, None));
            gather.finish(0, false);
        })
    };
    let shard1 = {
        let gather = Arc::clone(&gather);
        thread::spawn(move || {
            // Pops the unowned rank 1 first (bound rises to 2.0), then
            // owns and pushes rank 2, then drains.
            assert!(gather.update_bound(1, Some(2.0)));
            assert!(gather.push_emission(1, ranked(2, 2.0), None));
            gather.finish(1, false);
        })
    };
    let mut merged = Vec::new();
    let early = gather
        .merge_certified(10, None, Duration::ZERO, &mut merged)
        .unwrap();
    shard0.join().unwrap();
    shard1.join().unwrap();
    let ranks: Vec<usize> = merged.iter().map(|q| q.rank).collect();
    assert_eq!(ranks, vec![1, 2], "the merge must release the dense order");
    assert_eq!(merged[0].cost.to_bits(), 1.0f64.to_bits());
    assert_eq!(merged[1].cost.to_bits(), 2.0f64.to_bits());
    assert!(early <= 2, "early emissions never exceed the merged stream");
}

/// **Backpressure with full one-slot buffers on both shards.** A
/// `pending_limit` of 1: each worker buffers one owned emission, blocks on
/// `space` pushing its second, and the merge must keep the pipeline moving.
/// Shard 0 owns global ranks 1 (cost 1.0) and 3 (cost 2.0); shard 1 owns
/// ranks 2 (cost 2.0) and 4 (cost 3.0). Every interleaving must merge the
/// dense `[1, 2, 3, 4]`.
///
/// This is the regression harness for the merge's `space` broadcast: the
/// waiters have *distinct* predicates (each watches its own shard's
/// buffer), so a pop that signalled with `notify_one` could wake the
/// still-full shard's worker (which re-waits) while the freed shard's
/// worker sleeps forever — its stale bound (2.0, not *strictly* greater
/// than the 2.0 candidate) then keeps the gate shut and the merge blocks
/// on `progress` with every thread asleep. The checker convicts exactly
/// that interleaving as a lost wakeup if the `notify_all` ever regresses.
pub fn shard_backpressure_full_buffers(config: Config) -> Report {
    explore(config, shard_backpressure_full_buffers_body)
}

/// The closed program behind [`shard_backpressure_full_buffers`], exposed
/// so a failing schedule can be [`kwsearch_modelcheck::replay`]ed against
/// the identical body.
pub fn shard_backpressure_full_buffers_body() {
    let gather = Arc::new(GatherState::new(2, 1));
    let shard0 = {
        let gather = Arc::clone(&gather);
        thread::spawn(move || {
            // Owns ranks 1 and 3; after rank 1 the cheapest it can still
            // emit is rank 3's cost 2.0, and after rank 3 it is drained.
            assert!(gather.push_emission(0, ranked(1, 1.0), Some(2.0)));
            assert!(gather.push_emission(0, ranked(3, 2.0), None));
            gather.finish(0, false);
        })
    };
    let shard1 = {
        let gather = Arc::clone(&gather);
        thread::spawn(move || {
            // Owns ranks 2 and 4.
            assert!(gather.push_emission(1, ranked(2, 2.0), Some(3.0)));
            assert!(gather.push_emission(1, ranked(4, 3.0), None));
            gather.finish(1, false);
        })
    };
    let mut merged = Vec::new();
    let early = gather
        .merge_certified(10, None, Duration::ZERO, &mut merged)
        .unwrap();
    shard0.join().unwrap();
    shard1.join().unwrap();
    let ranks: Vec<usize> = merged.iter().map(|q| q.rank).collect();
    assert_eq!(
        ranks,
        vec![1, 2, 3, 4],
        "the dense order must survive backpressure"
    );
    assert_eq!(merged[1].cost.to_bits(), 2.0f64.to_bits());
    assert!(early <= 4, "early emissions never exceed the merged stream");
}

/// **Deadline fires during the merge.** Shard 0 delivers its owned rank-1
/// emission and drains normally, but shard 1's worker picks its job up
/// past the deadline and reports an *aborted* finish. The merge gate can
/// never certify rank 1 (shard 1's published bound stays at 0.0 until the
/// abort lands, and an aborted shard fails the request before the gate is
/// consulted), so **every** interleaving must return
/// [`ServeError::DeadlineExceeded`] with an empty merged stream — a
/// deadline can never leak a partial, uncertified prefix.
pub fn shard_deadline_fires_during_merge(config: Config) -> Report {
    explore(config, shard_deadline_fires_during_merge_body)
}

/// The closed program behind [`shard_deadline_fires_during_merge`],
/// exposed so the seeded-mutation tests can
/// [`kwsearch_modelcheck::replay`] a failing schedule against the
/// identical body.
pub fn shard_deadline_fires_during_merge_body() {
    let gather = Arc::new(GatherState::new(2, 8));
    let healthy = {
        let gather = Arc::clone(&gather);
        thread::spawn(move || {
            // The merge may already have cancelled the gather (the abort
            // landed first), so the push may correctly report `false`.
            let _ = gather.push_emission(0, ranked(1, 1.0), Some(2.0));
            gather.finish(0, false);
        })
    };
    let expired = {
        let gather = Arc::clone(&gather);
        thread::spawn(move || gather.finish(1, true))
    };
    let mut merged = Vec::new();
    let deadline = Duration::from_millis(7);
    // The absolute deadline stays `None`: model time never advances, so the
    // scenario's expiry is the shard-side abort, not the merge's timed wait.
    let err = gather
        .merge_certified(10, None, deadline, &mut merged)
        .expect_err("an aborted shard must fail the whole request");
    assert!(
        matches!(err, ServeError::DeadlineExceeded { deadline: d } if d == deadline),
        "the error must carry the request's deadline: {err:?}"
    );
    assert!(
        merged.is_empty(),
        "no uncertified prefix may leak past a deadline"
    );
    healthy.join().unwrap();
    expired.join().unwrap();
}

/// **Shutdown with an in-flight shard job.** A submitter pushes one shard
/// job and immediately closes the queue (the coordinator's `Drop` path);
/// the worker either pops the job before observing the close or drains it
/// from the closed queue — in every interleaving the job is served exactly
/// once, the worker then sees `None` and exits, and the submitter's merge
/// completes with an empty stream instead of hanging on the never-finished
/// shard.
pub fn shard_shutdown_with_inflight(config: Config) -> Report {
    explore(config, || {
        let queue = Arc::new(ShardQueue::new());
        let gather = Arc::new(GatherState::new(1, 8));
        let worker = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut served = 0usize;
                while let Some(job) = queue.pop() {
                    job.gather.finish(job.shard_id, false);
                    served += 1;
                }
                served
            })
        };
        queue.push(ShardJob {
            gather: Arc::clone(&gather),
            shard_id: 0,
            shard_count: 1,
            matches: Arc::new(Vec::new()),
            report: Vec::new(),
            config: SearchConfig::default(),
            deadline: None,
            cancel: CancelToken::new(),
        });
        queue.close();
        let mut merged = Vec::new();
        let early = gather
            .merge_certified(10, None, Duration::ZERO, &mut merged)
            .unwrap();
        assert_eq!(early, 0, "nothing was emitted, so nothing was early");
        assert!(merged.is_empty(), "an empty job merges an empty stream");
        assert_eq!(
            worker.join().unwrap(),
            1,
            "the queued job drains exactly once before shutdown completes"
        );
    })
}

/// **Poisoning recovery under exploration.** A model thread panics with
/// the guard held (poisoning the mutex); the surviving thread's
/// [`lock_unpoisoned`] must recover the guard and read the last write in
/// every interleaving — the serving stack's workers share this contract
/// (metrics and cache maps stay usable after a worker dies).
pub fn sync_lock_unpoisoned_recovery(config: Config) -> Report {
    explore(config, || {
        let value = Arc::new(Mutex::new(0u32));
        let poisoner = {
            let value = Arc::clone(&value);
            thread::spawn(move || {
                let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut guard = lock_unpoisoned(&value);
                    *guard = 7;
                    panic!("poison the guard");
                }));
                assert!(panicked.is_err());
            })
        };
        assert!(
            matches!(*lock_unpoisoned(&value), 0 | 7),
            "recovery reads a coherent value"
        );
        poisoner.join().unwrap();
        assert_eq!(*lock_unpoisoned(&value), 7, "the poisoned write persists");
        assert!(value.is_poisoned(), "the panic left its mark");
    })
}
