//! Disk-backed snapshots of a [`PreparedGraph`]: O(bytes) cold start.
//!
//! Rebuilding the keyword index, summary graph and triple store from source
//! triples is the dominant cold-start cost at the paper's evaluation scale
//! (10⁶–10⁷ triples). A snapshot sidesteps it: every index structure is
//! written as flat, length-prefixed little-endian buffers inside the
//! checksummed section container of [`kwsearch_rdf::snapshot`], and loading
//! is a sequence of bulk reads into the same dense-id structures the engine
//! searches — no re-parsing, no re-hashing of interned strings, no
//! re-sorting of triple permutations.
//!
//! The container layout (magic, format version, checksummed section table)
//! is documented in [`kwsearch_rdf::snapshot`]. This module assigns one
//! section per component:
//!
//! | id | section | content |
//! |----|---------|---------|
//! | 1  | meta    | original index-build time, sanity counts |
//! | 2  | graph   | interner, vertex/edge columns, CSR adjacency |
//! | 3  | store   | the three sorted triple permutations |
//! | 4  | keyword | analyzer + config + thesaurus + frozen posting lists |
//! | 5  | summary | summary-graph node/edge columns + totals |
//!
//! Every load path validates checksums before parsing and structural
//! invariants during parsing; corrupt or version-mismatched input yields a
//! typed [`SnapshotError`], never a panic or a partially-initialised graph.
//! Search results over a loaded graph are bit-identical to results over the
//! originally built graph (pinned by `tests/snapshot_roundtrip.rs` and the
//! cross-thread determinism suite).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::time::Duration;

use kwsearch_keyword_index::KeywordIndex;
use kwsearch_rdf::snapshot::{
    parallel_load, SectionEncoder, SnapshotError, SnapshotReader, SnapshotWriter,
};
use kwsearch_rdf::{DataGraph, TripleStore};
use kwsearch_summary::SummaryGraph;

use crate::cache::AugmentationCache;
use crate::prepared::PreparedGraph;

/// Joins a section-decoding thread, propagating its typed error and
/// re-raising its panic (decoders are panic-free on arbitrary input; a
/// panic here is a bug worth surfacing, not swallowing).
fn join_section<T>(
    handle: std::thread::ScopedJoinHandle<'_, Result<T, SnapshotError>>,
) -> Result<T, SnapshotError> {
    match handle.join() {
        Ok(result) => result,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// Section id of the metadata section (build time + sanity counts).
pub const SECTION_META: u32 = 1;
/// Section id of the data graph.
pub const SECTION_GRAPH: u32 = 2;
/// Section id of the triple store.
pub const SECTION_STORE: u32 = 3;
/// Section id of the keyword index.
pub const SECTION_KEYWORD: u32 = 4;
/// Section id of the summary graph.
pub const SECTION_SUMMARY: u32 = 5;

impl PreparedGraph {
    /// Serialises the complete prepared graph into `writer`.
    ///
    /// Equal prepared graphs produce byte-identical snapshots (all hash-map
    /// iteration is sorted or avoided on the write path), so snapshots can
    /// be diffed and content-addressed.
    pub fn save<W: Write>(&self, writer: &mut W) -> Result<(), SnapshotError> {
        // Live-update deltas of the graph and the store flatten on write
        // (their snapshots merge base and overlay), but the keyword index's
        // delta vocabulary has no frozen representation — refuse with a
        // typed error before its snapshot writer asserts.
        if self.keyword_index().has_delta() {
            return Err(SnapshotError::Corrupt {
                section: SECTION_KEYWORD,
                detail: "keyword index carries a live-update delta; \
                         compact the LiveGraph before saving"
                    .into(),
            });
        }
        let mut snapshot = SnapshotWriter::new();

        let mut meta = SectionEncoder::new();
        meta.put_u64(self.index_build_time().as_nanos() as u64);
        meta.put_u64(self.graph().vertex_count() as u64);
        meta.put_u64(self.graph().edge_count() as u64);
        snapshot.add_section(SECTION_META, meta);

        let mut graph = SectionEncoder::new();
        self.graph().write_snapshot(&mut graph);
        snapshot.add_section(SECTION_GRAPH, graph);

        let mut store = SectionEncoder::new();
        self.store().write_snapshot(&mut store);
        snapshot.add_section(SECTION_STORE, store);

        let mut keyword = SectionEncoder::new();
        self.keyword_index().write_snapshot(&mut keyword);
        snapshot.add_section(SECTION_KEYWORD, keyword);

        let mut summary = SectionEncoder::new();
        self.summary().write_snapshot(&mut summary);
        snapshot.add_section(SECTION_SUMMARY, summary);

        snapshot.write_to(writer)
    }

    /// [`Self::save`] into a buffered file at `path` (created or truncated).
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let file = File::create(path)?;
        let mut writer = BufWriter::new(file);
        self.save(&mut writer)?;
        writer.flush()?;
        Ok(())
    }

    /// Loads a prepared graph saved by [`Self::save`], with the default
    /// augmentation-cache capacity.
    pub fn load<R: Read>(reader: R) -> Result<Self, SnapshotError> {
        Self::load_with(reader, AugmentationCache::DEFAULT_CAPACITY)
    }

    /// Loads a prepared graph with an explicit augmentation-cache capacity
    /// (0 disables caching). The cache always starts empty — cache hits are
    /// proven bit-identical to misses, so this cannot change results.
    pub fn load_with<R: Read>(reader: R, cache_capacity: usize) -> Result<Self, SnapshotError> {
        let snapshot = SnapshotReader::read_from(reader)?;

        let mut meta = snapshot.section(SECTION_META)?;
        let index_build_time = Duration::from_nanos(meta.get_u64()?);
        let vertex_count = meta.get_u64()?;
        let edge_count = meta.get_u64()?;
        meta.finish()?;

        // The four component sections only read their own payload, so on a
        // multicore host they decode on parallel scoped threads — the
        // cold-start wall time is the *largest* section (the graph) instead
        // of the sum. On a single-core host the serial twin below is used
        // instead (see [`kwsearch_rdf::snapshot::parallel_load`]). Assembly
        // is unchanged either way, so both paths build identical graphs.
        let (graph, store, keyword_index, summary) = if parallel_load() {
            std::thread::scope(|scope| {
                let store_thread = scope.spawn(|| {
                    let mut dec = snapshot.section(SECTION_STORE)?;
                    let store = TripleStore::read_snapshot(&mut dec)?;
                    dec.finish()?;
                    Ok::<_, SnapshotError>(store)
                });
                let keyword_thread = scope.spawn(|| {
                    let mut dec = snapshot.section(SECTION_KEYWORD)?;
                    let keyword_index = KeywordIndex::read_snapshot(&mut dec)?;
                    dec.finish()?;
                    Ok::<_, SnapshotError>(keyword_index)
                });
                let summary_thread = scope.spawn(|| {
                    let mut dec = snapshot.section(SECTION_SUMMARY)?;
                    let summary = SummaryGraph::read_snapshot(&mut dec)?;
                    dec.finish()?;
                    Ok::<_, SnapshotError>(summary)
                });

                let mut dec = snapshot.section(SECTION_GRAPH)?;
                let graph = DataGraph::read_snapshot(&mut dec)?;
                dec.finish()?;

                Ok::<_, SnapshotError>((
                    graph,
                    join_section(store_thread)?,
                    join_section(keyword_thread)?,
                    join_section(summary_thread)?,
                ))
            })?
        } else {
            let mut dec = snapshot.section(SECTION_GRAPH)?;
            let graph = DataGraph::read_snapshot(&mut dec)?;
            dec.finish()?;
            let mut dec = snapshot.section(SECTION_STORE)?;
            let store = TripleStore::read_snapshot(&mut dec)?;
            dec.finish()?;
            let mut dec = snapshot.section(SECTION_KEYWORD)?;
            let keyword_index = KeywordIndex::read_snapshot(&mut dec)?;
            dec.finish()?;
            let mut dec = snapshot.section(SECTION_SUMMARY)?;
            let summary = SummaryGraph::read_snapshot(&mut dec)?;
            dec.finish()?;
            (graph, store, keyword_index, summary)
        };

        if graph.vertex_count() as u64 != vertex_count || graph.edge_count() as u64 != edge_count {
            return Err(SnapshotError::Corrupt {
                section: SECTION_META,
                detail: "graph counts disagree with the metadata section".to_string(),
            });
        }

        Ok(Self::from_parts(
            graph,
            keyword_index,
            summary,
            store,
            cache_capacity,
            index_build_time,
        ))
    }

    /// [`Self::load`] from a buffered file at `path`.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let file = File::open(path)?;
        Self::load(BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchConfig;
    use kwsearch_rdf::fixtures::figure1_graph;

    fn saved_bytes(prepared: &PreparedGraph) -> Vec<u8> {
        let mut bytes = Vec::new();
        prepared.save(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn save_load_round_trip_preserves_search_results() {
        let prepared = PreparedGraph::index(figure1_graph());
        let bytes = saved_bytes(&prepared);
        let loaded = PreparedGraph::load(bytes.as_slice()).unwrap();

        assert_eq!(loaded.index_build_time(), prepared.index_build_time());
        assert_eq!(
            loaded.graph().vertex_count(),
            prepared.graph().vertex_count()
        );
        assert_eq!(loaded.graph().edge_count(), prepared.graph().edge_count());

        let reference = prepared
            .session(&["2006", "cimiano", "aifb"], SearchConfig::default())
            .unwrap()
            .into_outcome();
        let from_snapshot = loaded
            .session(&["2006", "cimiano", "aifb"], SearchConfig::default())
            .unwrap()
            .into_outcome();
        assert_eq!(from_snapshot.queries.len(), reference.queries.len());
        for (got, want) in from_snapshot.queries.iter().zip(reference.queries.iter()) {
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            assert_eq!(got.query.canonicalized(), want.query.canonicalized());
        }
    }

    #[test]
    fn snapshots_are_deterministic() {
        let prepared = PreparedGraph::index(figure1_graph());
        let bytes = saved_bytes(&prepared);
        let reloaded = PreparedGraph::load(bytes.as_slice()).unwrap();
        assert_eq!(saved_bytes(&reloaded), bytes);
    }

    #[test]
    fn save_to_path_and_load_from_path_round_trip() {
        let prepared = PreparedGraph::index(figure1_graph());
        let path =
            std::env::temp_dir().join(format!("kwsearch-persist-test-{}.snap", std::process::id()));
        prepared.save_to_path(&path).unwrap();
        let loaded = PreparedGraph::load_from_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.graph().edge_count(), prepared.graph().edge_count());
    }

    #[test]
    fn metadata_count_mismatch_is_rejected() {
        let prepared = PreparedGraph::index(figure1_graph());
        // Re-author the snapshot with a lying metadata section.
        let mut snapshot = SnapshotWriter::new();
        let mut meta = SectionEncoder::new();
        meta.put_u64(prepared.index_build_time().as_nanos() as u64);
        meta.put_u64(prepared.graph().vertex_count() as u64 + 1);
        meta.put_u64(prepared.graph().edge_count() as u64);
        snapshot.add_section(SECTION_META, meta);
        for (id, write) in [
            (SECTION_GRAPH, true),
            (SECTION_STORE, false),
            (SECTION_KEYWORD, false),
            (SECTION_SUMMARY, false),
        ] {
            let mut enc = SectionEncoder::new();
            if write {
                prepared.graph().write_snapshot(&mut enc);
            } else if id == SECTION_STORE {
                prepared.store().write_snapshot(&mut enc);
            } else if id == SECTION_KEYWORD {
                prepared.keyword_index().write_snapshot(&mut enc);
            } else {
                prepared.summary().write_snapshot(&mut enc);
            }
            snapshot.add_section(id, enc);
        }
        let mut bytes = Vec::new();
        snapshot.write_to(&mut bytes).unwrap();
        assert!(matches!(
            PreparedGraph::load(bytes.as_slice()),
            Err(SnapshotError::Corrupt { section, .. }) if section == SECTION_META
        ));
    }
}
