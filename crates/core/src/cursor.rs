//! Cursors: the unit of exploration in Algorithm 1.
//!
//! A cursor `c(n, k, p, d, w)` records that the exploration reached graph
//! element `n`, starting from a keyword element of keyword `k`, by extending
//! the parent cursor `p`, after `d` steps and with accumulated path cost
//! `w`. The path represented by a cursor is recovered by walking the parent
//! chain; cursors are stored in an arena so parent links are cheap indices.

use kwsearch_summary::SummaryElement;

/// Index of a cursor in a [`CursorArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CursorId(u32);

impl CursorId {
    /// Dense index of the cursor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One exploration cursor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cursor {
    /// The element the cursor currently visits (`n`).
    pub element: SummaryElement,
    /// Index of the keyword whose keyword element the path originates from
    /// (`k`).
    pub keyword: usize,
    /// The parent cursor (`p`), `None` for the cursor created on the keyword
    /// element itself.
    pub parent: Option<CursorId>,
    /// The path length so far (`d`).
    pub distance: u32,
    /// The accumulated path cost (`w`).
    pub cost: f64,
}

/// Arena of all cursors created during one exploration.
#[derive(Debug, Default, Clone)]
pub struct CursorArena {
    cursors: Vec<Cursor>,
}

impl CursorArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new cursor and returns its id.
    pub fn push(&mut self, cursor: Cursor) -> CursorId {
        let id = CursorId(self.cursors.len() as u32);
        self.cursors.push(cursor);
        id
    }

    /// The cursor record.
    pub fn get(&self, id: CursorId) -> Cursor {
        self.cursors[id.index()]
    }

    /// Number of cursors allocated so far.
    pub fn len(&self) -> usize {
        self.cursors.len()
    }

    /// Whether no cursor has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.cursors.is_empty()
    }

    /// The path represented by a cursor, from the keyword element (origin)
    /// to the element currently visited. The cursor's `distance` gives the
    /// exact path length, so the output is allocated once at final size and
    /// filled back-to-front while walking the parent chain — no push-grow,
    /// no reverse.
    pub fn path(&self, id: CursorId) -> Vec<SummaryElement> {
        let tip = self.get(id);
        let len = tip.distance as usize + 1;
        let mut elements = vec![tip.element; len];
        let mut current = tip.parent;
        let mut slot = len - 1;
        while let Some(c) = current {
            let cursor = self.get(c);
            slot -= 1;
            elements[slot] = cursor.element;
            current = cursor.parent;
        }
        debug_assert_eq!(slot, 0, "distance must equal the parent-chain length");
        elements
    }

    /// Whether `element` already occurs on the path of `id`. Used to prevent
    /// cyclic cursor expansions (Algorithm 1, line 17).
    pub fn path_contains(&self, id: CursorId, element: SummaryElement) -> bool {
        let mut current = Some(id);
        while let Some(c) = current {
            let cursor = self.get(c);
            if cursor.element == element {
                return true;
            }
            current = cursor.parent;
        }
        false
    }

    /// The element visited by the parent of `id`, if any. Expansion skips
    /// this element (Algorithm 1, line 13: "all neighbors except parent
    /// element").
    pub fn parent_element(&self, id: CursorId) -> Option<SummaryElement> {
        self.get(id).parent.map(|p| self.get(p).element)
    }
}

/// An entry of the explorer's single global priority queue, keyed by
/// `(cost, keyword, cursor)`: lower cost first, ties broken
/// deterministically by the cursor id (cursor ids are globally unique and
/// allocated in creation order, so the tie-break also reproduces the pop
/// order of the former per-keyword queues). The keyword rides along as
/// payload so expansion does not re-derive it.
#[derive(Debug, Clone, Copy)]
pub struct QueueEntry {
    /// The accumulated path cost to order by.
    pub cost: f64,
    /// The keyword whose exploration this cursor belongs to.
    pub keyword: u32,
    /// The cursor this entry refers to.
    pub cursor: CursorId,
}

// Equality mirrors `Ord` exactly (cost and cursor; the keyword is payload),
// keeping the `a == b ⇔ a.cmp(&b) == Equal` contract intact.
impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost.total_cmp(&other.cost).is_eq() && self.cursor == other.cursor
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the cheapest on top.
        // The cursor id alone breaks ties (ids are unique), keeping the
        // order independent of the keyword payload.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.cursor.cmp(&self.cursor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwsearch_summary::{SummaryEdgeId, SummaryNodeId};
    use std::collections::BinaryHeap;

    fn node(i: u32) -> SummaryElement {
        // Safe constructor detour: SummaryNodeId fields are crate-private, so
        // build elements through the public enum.
        SummaryElement::Node(node_id(i))
    }

    fn node_id(i: u32) -> SummaryNodeId {
        // The only way to obtain ids outside the summary crate is from a
        // graph; for the arena tests we only need distinct opaque values, so
        // we transmute-free fake them via a tiny helper graph.
        fixture_ids()[i as usize]
    }

    fn fixture_ids() -> Vec<SummaryNodeId> {
        use kwsearch_rdf::fixtures::figure1_graph;
        use kwsearch_summary::SummaryGraph;
        let g = figure1_graph();
        let s = SummaryGraph::build(&g);
        s.nodes().collect()
    }

    fn edge_ids() -> Vec<SummaryEdgeId> {
        use kwsearch_rdf::fixtures::figure1_graph;
        use kwsearch_summary::SummaryGraph;
        let g = figure1_graph();
        let s = SummaryGraph::build(&g);
        s.edges().collect()
    }

    #[test]
    fn paths_are_recovered_through_parent_links() {
        let mut arena = CursorArena::new();
        let edges = edge_ids();
        let origin = arena.push(Cursor {
            element: node(0),
            keyword: 0,
            parent: None,
            distance: 0,
            cost: 1.0,
        });
        let middle = arena.push(Cursor {
            element: SummaryElement::Edge(edges[0]),
            keyword: 0,
            parent: Some(origin),
            distance: 1,
            cost: 1.5,
        });
        let tip = arena.push(Cursor {
            element: node(1),
            keyword: 0,
            parent: Some(middle),
            distance: 2,
            cost: 2.5,
        });
        let path = arena.path(tip);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], node(0));
        assert_eq!(path[2], node(1));
        assert_eq!(
            arena.parent_element(tip),
            Some(SummaryElement::Edge(edges[0]))
        );
        assert_eq!(arena.parent_element(origin), None);
    }

    #[test]
    fn cycle_detection_checks_the_whole_path() {
        let mut arena = CursorArena::new();
        let origin = arena.push(Cursor {
            element: node(0),
            keyword: 0,
            parent: None,
            distance: 0,
            cost: 0.5,
        });
        let tip = arena.push(Cursor {
            element: node(1),
            keyword: 0,
            parent: Some(origin),
            distance: 1,
            cost: 1.0,
        });
        assert!(arena.path_contains(tip, node(0)));
        assert!(arena.path_contains(tip, node(1)));
        assert!(!arena.path_contains(tip, node(2)));
    }

    #[test]
    fn arena_bookkeeping() {
        let mut arena = CursorArena::new();
        assert!(arena.is_empty());
        let id = arena.push(Cursor {
            element: node(0),
            keyword: 3,
            parent: None,
            distance: 0,
            cost: 0.25,
        });
        assert_eq!(arena.len(), 1);
        let cursor = arena.get(id);
        assert_eq!(cursor.keyword, 3);
        assert_eq!(cursor.cost, 0.25);
    }

    #[test]
    fn cost_ordering_puts_cheapest_on_top_of_the_heap() {
        let mut arena = CursorArena::new();
        let a = arena.push(Cursor {
            element: node(0),
            keyword: 0,
            parent: None,
            distance: 0,
            cost: 2.0,
        });
        let b = arena.push(Cursor {
            element: node(1),
            keyword: 0,
            parent: None,
            distance: 0,
            cost: 0.5,
        });
        let c = arena.push(Cursor {
            element: node(2),
            keyword: 0,
            parent: None,
            distance: 0,
            cost: 1.0,
        });
        let mut heap = BinaryHeap::new();
        for &(id, cost) in &[(a, 2.0), (b, 0.5), (c, 1.0)] {
            heap.push(QueueEntry {
                cost,
                keyword: 0,
                cursor: id,
            });
        }
        assert_eq!(heap.pop().unwrap().cursor, b);
        assert_eq!(heap.pop().unwrap().cursor, c);
        assert_eq!(heap.pop().unwrap().cursor, a);
    }

    #[test]
    fn cost_ordering_breaks_ties_deterministically() {
        let x = QueueEntry {
            cost: 1.0,
            keyword: 7,
            cursor: CursorId(0),
        };
        let y = QueueEntry {
            cost: 1.0,
            keyword: 0,
            cursor: CursorId(1),
        };
        // Lower id wins the tie (is "greater" in max-heap terms) regardless
        // of the keyword payload.
        assert!(x > y);
    }
}
